"""Shared fixtures for the per-figure benchmark suite.

Every module in this directory regenerates one table or figure of the
paper: a pytest-benchmark case times the figure's central computation, and
a ``test_report_*`` case prints the same rows/series the paper plots
(visible with ``pytest benchmarks/ -s`` and in captured output otherwise).
"""

from __future__ import annotations

import pytest

from repro.datasets import load_all
from repro.graph.compact import CompactAdjacency
from repro.core.index import KPIndex


@pytest.fixture(scope="session")
def graphs():
    """All eight dataset stand-ins, generated once per session."""
    return load_all()


@pytest.fixture(scope="session")
def snapshots(graphs):
    """Compact snapshots, shared by the computation-time figures."""
    return {name: CompactAdjacency(g) for name, g in graphs.items()}


@pytest.fixture(scope="session")
def indexes(graphs):
    """Pre-built KP-Indexes for the query benchmarks."""
    return {name: KPIndex.build(g) for name, g in graphs.items()}
