"""Fig. 9 — DBLP case studies (component reports and departure cascades)."""

from repro.analysis.casestudy import case_study
from repro.bench.experiments import fig9_reports
from repro.bench.reporting import print_table
from repro.datasets.dblp import default_corpus
from repro.kcore.decomposition import core_decomposition


def test_case_study_computation(benchmark):
    graph = default_corpus().graph(min_papers=10)
    k = min(5, core_decomposition(graph).degeneracy)
    report = benchmark.pedantic(
        case_study, args=(graph, k, 0.4), rounds=3, iterations=1
    )
    assert report.members


def test_report_fig9(benchmark):
    reports = benchmark.pedantic(fig9_reports, rounds=1, iterations=1)
    rows = []
    for label, report in reports:
        print(f"\n=== Fig. 9 case study: {label} ===")
        print(report.summary())
        rows.append(
            (
                label,
                len(report.members),
                len(report.kp_members),
                len(report.trimmed),
                str(report.min_fraction_vertex),
                len(report.cascade),
            )
        )
    print_table(
        ("case", "k-core comp.", "(k,p) survivors", "trimmed",
         "weakest author", "cascade size"),
        rows,
        title="Fig. 9 summary",
    )
    # the DBLP-10 study mirrors the paper's narrative: one author's leave
    # drags a group out while most of the component survives
    dblp10 = dict((label.split()[0], report) for label, report in reports)
    report = dblp10["DBLP-10"]
    assert len(report.cascade) >= 2
    assert len(report.kp_members) > len(report.members) / 2
