"""Fig. 16 — scalability of KP-Index maintenance over graph samples."""

import random

import pytest

from repro.bench.experiments import fig16_rows
from repro.bench.reporting import print_table
from repro.core.maintenance import KPIndexMaintainer
from repro.graph.views import sample_vertices


@pytest.mark.parametrize("ratio", (0.2, 0.6, 1.0))
def test_maintenance_on_samples(benchmark, graphs, ratio):
    sampled = sample_vertices(graphs["orkut"], ratio, seed=19)
    maintainer = KPIndexMaintainer(sampled)
    edges = random.Random(7).sample(
        list(maintainer.graph.edges()), min(20, maintainer.graph.num_edges)
    )
    cursor = {"i": 0}

    def cycle():
        u, v = edges[cursor["i"] % len(edges)]
        cursor["i"] += 1
        maintainer.delete_edge(u, v)
        maintainer.insert_edge(u, v)

    benchmark.pedantic(cycle, rounds=5, iterations=1)


def test_report_fig16(benchmark):
    headers, rows = benchmark.pedantic(
        fig16_rows, kwargs={"dataset": "orkut", "batch": 12}, rounds=1, iterations=1
    )
    print_table(
        headers, rows,
        title="Fig. 16: scalability of KP-Index maintenance (orkut, batch=12)",
    )
    # maintenance cost grows with the sample, but no faster than rebuild
    # does — per-edge updates stay a bounded fraction of a rebuild
    for mode in ("vertex", "edge"):
        series = [row for row in rows if row[0] == mode]
        first, last = series[0], series[-1]
        assert last[3] >= first[3] * 0.5  # insert time roughly grows
        assert last[5] > first[5]  # rebuild clearly grows
