"""Fig. 15 — KP-Index update time vs rebuilding from scratch.

The paper removes 500 random edges and re-inserts them, reporting average
per-edge time for kpIndexInsert / kpIndexDelete against a baseline that
runs kpCoreDecomp after every update.  The stand-ins are roughly three
orders of magnitude smaller, so the batch scales down accordingly (the
shape statement is about the per-edge/rebuild *ratio*).
"""

import random

import pytest

from repro.bench.experiments import fig15_rows
from repro.bench.reporting import print_table
from repro.core.index import KPIndex
from repro.core.maintenance import KPIndexMaintainer


@pytest.mark.parametrize("name", ("brightkite", "gowalla", "orkut"))
def test_maintenance_cycle(benchmark, graphs, name):
    """One delete+insert cycle of a random existing edge."""
    maintainer = KPIndexMaintainer(graphs[name].copy())
    edges = random.Random(5).sample(list(maintainer.graph.edges()), 30)
    cursor = {"i": 0}

    def cycle():
        u, v = edges[cursor["i"] % len(edges)]
        cursor["i"] += 1
        maintainer.delete_edge(u, v)
        maintainer.insert_edge(u, v)

    benchmark.pedantic(cycle, rounds=10, iterations=1)


def test_rebuild_baseline(benchmark, graphs):
    benchmark.pedantic(
        KPIndex.build, args=(graphs["gowalla"],), rounds=3, iterations=1
    )


def test_report_fig15(benchmark):
    headers, rows = benchmark.pedantic(fig15_rows, kwargs={"batch": 25}, rounds=1, iterations=1)
    print_table(
        headers, rows, title="Fig. 15: KP-Index update vs rebuild (batch=25)"
    )
    # Direction of the paper's claim at laptop scale: maintenance is
    # cheaper than rebuilding on the clear majority of datasets.  (The
    # magnitude of the gap grows with graph size; see EXPERIMENTS.md.)
    faster = sum(1 for row in rows if row[4] >= 1.0 and row[5] >= 0.8)
    assert faster >= 5, rows
