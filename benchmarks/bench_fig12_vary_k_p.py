"""Fig. 12 — effect of k and p on the Orkut stand-in."""

import pytest

from repro.bench.experiments import DEFAULT_K, DEFAULT_P, fig12_rows
from repro.bench.reporting import print_table
from repro.core.kpcore import kp_core_vertices_compact


K_GRID = (12, 24, 36, 48, 58)  # ~20%..100% of the stand-in's degeneracy
P_GRID = (0.2, 0.4, 0.6, 0.8)


@pytest.mark.parametrize("k", K_GRID)
def test_kpcore_comp_vary_k(benchmark, snapshots, k):
    survivors = benchmark(
        kp_core_vertices_compact, snapshots["orkut"], k, DEFAULT_P
    )
    assert isinstance(survivors, list)


@pytest.mark.parametrize("p", P_GRID)
def test_kpcore_comp_vary_p(benchmark, snapshots, p):
    survivors = benchmark(
        kp_core_vertices_compact, snapshots["orkut"], DEFAULT_K, p
    )
    assert isinstance(survivors, list)


def test_report_fig12(benchmark):
    headers, rows = benchmark.pedantic(fig12_rows, rounds=1, iterations=1)
    print_table(headers, rows, title="Fig. 12: effect of k and p (orkut)")
    # query time stays roughly flat and far below computation across
    # the whole sweep (the paper's headline observation)
    for sweep, value, t_kcore, t_kpcore, t_query in rows:
        assert t_query * 10 < max(t_kpcore, 1e-6), (sweep, value)
