"""Fig. 6 — |k-core| vs |(k,p)-core| on all datasets (k=10, p=0.6)."""

from repro.analysis.comparison import compare_cores
from repro.bench.experiments import DEFAULT_K, DEFAULT_P, fig6_rows
from repro.bench.reporting import print_table


def test_compare_cores_on_largest_dataset(benchmark, graphs):
    comparison = benchmark.pedantic(
        compare_cores,
        args=(graphs["orkut"], DEFAULT_K, DEFAULT_P),
        kwargs={"name": "orkut"},
        rounds=1,
        iterations=1,
    )
    assert comparison.kcore_vertices > 0


def test_report_fig6(benchmark, graphs):
    headers, rows = benchmark.pedantic(fig6_rows, rounds=1, iterations=1)
    print_table(headers, rows, title="Fig. 6: core size, k=10, p=0.6")
    by_name = {row[0]: row for row in rows}
    # paper shape: kp-core much smaller except on facebook/orkut
    for name in ("brightkite", "gowalla", "youtube", "pokec", "dblp",
                 "livejournal"):
        assert by_name[name][1] > by_name[name][2] > 0, name
    for name in ("facebook", "orkut"):
        assert by_name[name][2] >= 0.7 * by_name[name][1], name
