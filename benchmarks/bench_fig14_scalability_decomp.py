"""Fig. 14 — scalability of the decompositions over vertex/edge samples."""

import pytest

from repro.bench.experiments import fig14_rows
from repro.bench.reporting import print_table
from repro.core.decomposition import kp_core_decomposition
from repro.graph.views import sample_edges, sample_vertices


@pytest.mark.parametrize("ratio", (0.2, 0.6, 1.0))
def test_kpcore_decomp_on_vertex_samples(benchmark, graphs, ratio):
    sampled = sample_vertices(graphs["orkut"], ratio, seed=17)
    benchmark.pedantic(
        kp_core_decomposition, args=(sampled,), rounds=1, iterations=1
    )


@pytest.mark.parametrize("ratio", (0.2, 0.6, 1.0))
def test_kpcore_decomp_on_edge_samples(benchmark, graphs, ratio):
    sampled = sample_edges(graphs["orkut"], ratio, seed=17)
    benchmark.pedantic(
        kp_core_decomposition, args=(sampled,), rounds=1, iterations=1
    )


@pytest.mark.parametrize("workers", (1, 4))
def test_kpcore_decomp_worker_scaling(benchmark, graphs, workers):
    graph = graphs["orkut"]
    decomposition = benchmark.pedantic(
        kp_core_decomposition,
        args=(graph,),
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
    )
    assert decomposition.degeneracy >= 10


def test_report_fig14(benchmark):
    headers, rows = benchmark.pedantic(
        fig14_rows, kwargs={"workers": (1, 4)}, rounds=1, iterations=1
    )
    print_table(
        headers, rows, title="Fig. 14: scalability of decomposition (orkut)"
    )
    # both decompositions get monotonically more expensive with sample size
    # (compare at a fixed worker count)
    for mode in ("vertex", "edge"):
        times = [row[6] for row in rows if row[0] == mode and row[4] == 1]
        assert times[0] < times[-1]
