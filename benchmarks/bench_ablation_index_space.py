"""Ablation — KP-Index layout vs a materialized-cores baseline.

Sec. V's discussion asks whether a simpler index could match the KP-Index.
The obvious baseline materializes each (k, level)-core's vertex set: same
output-optimal queries, but every vertex is stored once per level at or
below its own p-number instead of exactly once per array.  This module
quantifies the space gap (Lemma 1's point) and shows query times stay
comparable.
"""

from repro.bench.reporting import print_table
from repro.core.baseline_index import MaterializedIndex
from repro.core.index import KPIndex
from repro.datasets import dataset_names, load


def test_materialized_build(benchmark, graphs):
    baseline = benchmark.pedantic(
        MaterializedIndex.build, args=(graphs["gowalla"],), rounds=1, iterations=1
    )
    assert baseline.degeneracy >= 10


def test_materialized_query(benchmark, graphs):
    baseline = MaterializedIndex.build(graphs["gowalla"])
    answer = benchmark(baseline.query, 10, 0.6)
    assert isinstance(answer, list)


def test_report_index_space(benchmark):
    def build_rows():
        rows = []
        for name in dataset_names():
            graph = load(name)
            index = KPIndex.build(graph)
            baseline = MaterializedIndex.build(graph)
            kp_entries = index.space_stats().vertex_entries
            mat_entries = baseline.vertex_entries()
            rows.append(
                (
                    name,
                    kp_entries,
                    2 * graph.num_edges,
                    mat_entries,
                    round(mat_entries / kp_entries, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        ("dataset", "KP-Index entries", "Lemma 1 bound 2m",
         "materialized entries", "blowup"),
        rows,
        title="Ablation: index space (KP-Index vs materialized cores)",
    )
    for name, kp_entries, bound, mat_entries, _ in rows:
        assert kp_entries <= bound, name  # Lemma 1
        assert mat_entries >= kp_entries, name
    # on the level-rich datasets the baseline blows up severely
    assert max(row[4] for row in rows) > 3.0
