"""Ablation — traversal vs order-based core-number maintenance.

The paper adopts the order-based algorithm [30] over traversal [18] because
it evaluates fewer candidate vertices per insertion: only the forward chain
in the k-order, instead of the whole connected subcore.  This bench runs
the identical update stream through both backends and reports wall time
plus the number of candidates whose promotion/demotion was evaluated.

Expected outcome (and what it teaches): the order walk *does* evaluate
fewer candidates, but our simplified implementation rebuilds the affected
levels' internal order after every change instead of repairing it in
place, and that bookkeeping dominates wall time at this scale.  The full
ICDE'17 machinery (O(1) order-maintenance structure, in-place repairs)
exists precisely to eliminate that cost — this ablation makes the reason
for its complexity measurable.
"""

import random

from repro.bench.reporting import print_table
from repro.bench.timing import measure
from repro.datasets import load
from repro.kcore.maintenance import CoreMaintainer
from repro.kcore.order_maintenance import OrderBasedCoreMaintainer


def _run_stream(maintainer, edges, inserts):
    for u, v in edges:
        maintainer.delete_edge(u, v)
    for u, v in inserts:
        maintainer.insert_edge(u, v)


def _workload(graph, batch=60, seed=13):
    rng = random.Random(seed)
    deletions = rng.sample(list(graph.edges()), batch)
    vertices = list(graph.vertices())
    inserts = []
    working = graph.copy()
    for u, v in deletions:
        working.remove_edge(u, v)
    while len(inserts) < batch:
        u, v = rng.sample(vertices, 2)
        if working.has_edge(u, v):
            continue
        working.add_edge(u, v)
        inserts.append((u, v))
    return deletions, inserts


def test_traversal_backend(benchmark, graphs):
    graph = graphs["gowalla"]
    deletions, inserts = _workload(graph)

    def run():
        maintainer = CoreMaintainer(graph.copy())
        _run_stream(maintainer, deletions, inserts)
        return maintainer

    maintainer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert maintainer.candidates_evaluated > 0


def test_order_backend(benchmark, graphs):
    graph = graphs["gowalla"]
    deletions, inserts = _workload(graph)

    def run():
        maintainer = OrderBasedCoreMaintainer(graph.copy())
        _run_stream(maintainer, deletions, inserts)
        return maintainer

    maintainer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert maintainer.candidates_evaluated > 0


def test_report_core_backend_ablation(benchmark):
    def build_rows():
        rows = []
        for name in ("brightkite", "gowalla", "pokec"):
            graph = load(name)
            deletions, inserts = _workload(graph)
            results = {}
            for label, cls in (
                ("traversal", CoreMaintainer),
                ("order", OrderBasedCoreMaintainer),
            ):
                maintainer = cls(graph.copy())
                seconds = measure(
                    lambda m=maintainer: _run_stream(m, deletions, inserts)
                ).seconds
                results[label] = (seconds, maintainer.candidates_evaluated)
                # both backends must agree exactly
                if "reference" in results:
                    assert maintainer.core_numbers() == results["reference"]
                results.setdefault("reference", maintainer.core_numbers())
            t_trav, c_trav = results["traversal"]
            t_ord, c_ord = results["order"]
            rows.append(
                (
                    name,
                    round(t_trav, 4),
                    c_trav,
                    round(t_ord, 4),
                    c_ord,
                    round(c_trav / max(1, c_ord), 2),
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        ("dataset", "traversal_s", "traversal_cands",
         "order_s", "order_cands", "cand_ratio"),
        rows,
        title="Ablation: core-maintenance backends (120 updates each)",
    )
    # the order-based walks never evaluate more candidates than the
    # traversal subcores (deletion candidate sets are identical by
    # construction; insertions are where the walks win)
    assert all(row[5] >= 1.0 for row in rows), rows
