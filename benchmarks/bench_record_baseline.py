"""Record the decomposition performance baseline into ``BENCH_decomp.json``.

Standalone script (not a pytest-benchmark case): it times the full
Algorithm 2 decomposition on one builtin dataset across every peel engine
and a worker-count sweep, and writes the committed baseline file that
future performance PRs compare against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_record_baseline.py

Each configuration reports the min and median of ``--repeat`` runs (min
for "what the machine can do", median for robustness against noise).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Sequence

from repro.bench.provenance import run_provenance
from repro.bench.timing import measure
from repro.core.decomposition import kp_core_decomposition
from repro.core.peel_engines import DEFAULT_ENGINE, available_engines
from repro.datasets import load

__all__ = ["main", "record_baseline"]


def record_baseline(
    dataset: str = "orkut",
    repeat: int = 3,
    worker_counts: Sequence[int] = (1, 4),
) -> dict[str, object]:
    """Time every engine (serial) and worker count (default engine)."""
    graph = load(dataset)
    entries: list[dict[str, object]] = []
    for engine in available_engines():
        timing = measure(
            lambda: kp_core_decomposition(graph, engine=engine), repeat
        )
        entries.append(
            {
                "engine": engine,
                "workers": 1,
                "min_s": round(timing.seconds, 4),
                "median_s": round(timing.median_seconds, 4),
            }
        )
    for workers in worker_counts:
        if workers == 1:
            continue  # covered by the engine sweep above
        timing = measure(
            lambda: kp_core_decomposition(graph, workers=workers), repeat
        )
        entries.append(
            {
                "engine": DEFAULT_ENGINE,
                "workers": workers,
                "min_s": round(timing.seconds, 4),
                "median_s": round(timing.median_seconds, 4),
            }
        )
    return {
        "dataset": dataset,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "repeat": repeat,
        "python": platform.python_version(),
        # Worker scaling only pays off when this is > 1; on a single-CPU
        # machine the workers>1 rows measure pure pool overhead.
        "cpus": os.cpu_count() or 1,
        "provenance": run_provenance(),
        "entries": entries,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="orkut")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 4], metavar="N"
    )
    parser.add_argument("-o", "--output", default="BENCH_decomp.json")
    args = parser.parse_args(argv)
    baseline = record_baseline(args.dataset, args.repeat, args.workers)
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    for entry in baseline["entries"]:
        print(
            f"{baseline['dataset']}: engine={entry['engine']} "
            f"workers={entry['workers']} min={entry['min_s']}s "
            f"median={entry['median_s']}s"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
