"""Record the decomposition performance baseline into ``BENCH_decomp.json``.

Standalone script (not a pytest-benchmark case): it times the full
Algorithm 2 decomposition on one builtin dataset across every peel engine
and a worker-count sweep, and writes the committed baseline file that
future performance PRs compare against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_record_baseline.py

Each configuration reports the min and median of ``--repeat`` runs (min
for "what the machine can do", median for robustness against noise).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from statistics import median
from typing import Sequence

from repro.bench.provenance import run_provenance
from repro.core.decomposition import kp_core_decomposition
from repro.core.peel_engines import DEFAULT_ENGINE, available_engines
from repro.datasets import load

__all__ = ["main", "record_baseline"]


def record_baseline(
    dataset: str = "orkut",
    repeat: int = 3,
    worker_counts: Sequence[int] = (1, 4),
) -> dict[str, object]:
    """Time every engine (serial) and worker count (default engine).

    Repeats are **interleaved across configurations** — round-robin, one
    timed run of every configuration per round — rather than run
    back-to-back per configuration.  The baseline's primary consumers
    compare rows against each other (is flat 3x bucket? does workers=4
    beat workers=1?), and on a noisy host consecutive repeats let one
    slow scheduling window land entirely on one row and skew every
    ratio; interleaving spreads the noise over all rows evenly.
    """
    graph = load(dataset)
    configs: list[tuple[str, int]] = [
        (engine, 1) for engine in available_engines()
    ] + [(DEFAULT_ENGINE, w) for w in worker_counts if w != 1]
    times: dict[tuple[str, int], list[float]] = {c: [] for c in configs}
    for _ in range(repeat):
        for engine, workers in configs:
            start = time.perf_counter()
            kp_core_decomposition(graph, engine=engine, workers=workers)
            times[(engine, workers)].append(time.perf_counter() - start)
    entries: list[dict[str, object]] = [
        {
            "engine": engine,
            "workers": workers,
            "min_s": round(min(samples), 4),
            "median_s": round(median(samples), 4),
        }
        for (engine, workers), samples in times.items()
    ]
    cpus = os.cpu_count() or 1
    payload: dict[str, object] = {
        "dataset": dataset,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "repeat": repeat,
        "python": platform.python_version(),
        # Worker scaling only pays off when this is > 1; on a single-CPU
        # machine the workers>1 rows measure pure pool overhead.
        "cpus": cpus,
        "provenance": run_provenance(),
        "entries": entries,
    }
    if cpus == 1 and any(w > 1 for w in worker_counts):
        payload["worker_scaling_caveat"] = (
            "recorded on a 1-CPU host: workers>1 rows measure pool "
            "overhead, not scaling — compare them only against baselines "
            "from multi-CPU hosts"
        )
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="orkut")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 4], metavar="N"
    )
    parser.add_argument("-o", "--output", default="BENCH_decomp.json")
    args = parser.parse_args(argv)
    baseline = record_baseline(args.dataset, args.repeat, args.workers)
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    for entry in baseline["entries"]:
        print(
            f"{baseline['dataset']}: engine={entry['engine']} "
            f"workers={entry['workers']} min={entry['min_s']}s "
            f"median={entry['median_s']}s"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
