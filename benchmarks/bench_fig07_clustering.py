"""Fig. 7 — global clustering coefficient of k-core vs (k,p)-core."""

from repro.bench.experiments import fig7_rows
from repro.bench.reporting import print_table
from repro.graph.metrics import global_clustering_coefficient
from repro.kcore.compute import k_core


def test_clustering_coefficient_computation(benchmark, graphs):
    core = k_core(graphs["livejournal"], 10)
    value = benchmark.pedantic(
        global_clustering_coefficient, args=(core,), rounds=1, iterations=1
    )
    assert 0.0 <= value <= 1.0


def test_report_fig7(benchmark, graphs):
    headers, rows = benchmark.pedantic(fig7_rows, rounds=1, iterations=1)
    print_table(
        headers, rows, title="Fig. 7: global clustering coefficient, k=10, p=0.6"
    )
    # paper shape: the (k,p)-core is at least as clustered everywhere
    for name, cc_kcore, cc_kpcore in rows:
        assert cc_kpcore >= cc_kcore - 1e-9, name
