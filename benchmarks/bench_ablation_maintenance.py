"""Ablation — what each maintenance ingredient buys.

Not a figure in the paper, but the design discussion of Sec. VI implies
it: compare the full window machinery (``RANGE``: Theorems 3-9 bounds,
Theorem 6 skips, early stop) against ``FULL_K`` (Theorem 2/7 skip rules
only) and against rebuild-per-update, on one heavy-tailed dataset.
"""

import random

from repro.bench.experiments import ablation_rows
from repro.bench.reporting import print_table
from repro.core.maintenance import KPIndexMaintainer, MaintenanceMode


def _cycle_factory(maintainer, edges):
    cursor = {"i": 0}

    def cycle():
        u, v = edges[cursor["i"] % len(edges)]
        cursor["i"] += 1
        maintainer.delete_edge(u, v)
        maintainer.insert_edge(u, v)

    return cycle


def test_range_mode(benchmark, graphs):
    maintainer = KPIndexMaintainer(
        graphs["gowalla"].copy(), mode=MaintenanceMode.RANGE
    )
    edges = random.Random(9).sample(list(maintainer.graph.edges()), 20)
    benchmark.pedantic(_cycle_factory(maintainer, edges), rounds=10, iterations=1)


def test_full_k_mode(benchmark, graphs):
    maintainer = KPIndexMaintainer(
        graphs["gowalla"].copy(), mode=MaintenanceMode.FULL_K
    )
    edges = random.Random(9).sample(list(maintainer.graph.edges()), 20)
    benchmark.pedantic(_cycle_factory(maintainer, edges), rounds=10, iterations=1)


def test_report_ablation(benchmark):
    headers, rows = benchmark.pedantic(
        ablation_rows, kwargs={"dataset": "gowalla", "batch": 25}, rounds=1, iterations=1
    )
    print_table(headers, rows, title="Ablation: maintenance ingredients (gowalla)")
    by_mode = {row[0]: row for row in rows}
    # the window bounds re-peel strictly fewer vertices and enable skips
    assert by_mode["range"][4] < by_mode["full-k"][4]
    assert by_mode["range"][5] > 0  # Theorem 6 fires
    assert by_mode["range"][6] > 0  # early stops fire
    assert by_mode["full-k"][5] == 0
