"""Fig. 8 — graph density of k-core vs (k,p)-core."""

from repro.bench.experiments import fig8_rows
from repro.bench.reporting import print_table
from repro.graph.metrics import density
from repro.kcore.compute import k_core


def test_density_computation(benchmark, graphs):
    core = k_core(graphs["gowalla"], 10)
    value = benchmark.pedantic(density, args=(core,), rounds=3, iterations=1)
    assert 0.0 <= value <= 1.0


def test_report_fig8(benchmark, graphs):
    headers, rows = benchmark.pedantic(fig8_rows, rounds=1, iterations=1)
    print_table(headers, rows, title="Fig. 8: graph density, k=10, p=0.6")
    # paper shape: density is higher on *most* datasets
    denser = sum(1 for _, rho_k, rho_kp in rows if rho_kp >= rho_k)
    assert denser >= 6
