"""Table II — dataset statistics (stand-in vs paper originals)."""

from repro.bench.experiments import table2_rows
from repro.bench.reporting import print_table
from repro.datasets import spec


def test_generate_all_datasets(benchmark):
    """Time a full cold regeneration of the suite."""

    def rebuild():
        return [spec(name).build() for name in (
            "facebook", "brightkite", "gowalla", "youtube",
            "pokec", "dblp", "livejournal", "orkut",
        )]

    graphs = benchmark.pedantic(rebuild, rounds=1, iterations=1)
    assert len(graphs) == 8


def test_report_table2(benchmark, graphs):
    headers, rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print_table(headers, rows, title="Table II: statistics of datasets")
    assert len(rows) == 8
    # edge ordering matches the paper's table up to its own inversion
    sizes = [row[2] for row in rows]
    inversions = sum(1 for a, b in zip(sizes, sizes[1:]) if a > b)
    assert inversions <= 1
