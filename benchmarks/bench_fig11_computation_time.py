"""Fig. 11 — computation time of kCoreComp / kpCoreComp / kpCoreQuery.

The pytest-benchmark entries time the three algorithms on every dataset at
the defaults (k=10, p=0.6); the report test prints the paper-style rows.
"""

import pytest

from repro.bench.experiments import DEFAULT_K, DEFAULT_P, fig11_rows
from repro.bench.reporting import print_table
from repro.core.kpcore import kp_core_vertices_compact
from repro.datasets import dataset_names
from repro.kcore.compute import k_core_vertices_compact


@pytest.mark.parametrize("name", dataset_names())
def test_kcore_comp(benchmark, snapshots, name):
    survivors = benchmark(k_core_vertices_compact, snapshots[name], DEFAULT_K)
    assert isinstance(survivors, list)


@pytest.mark.parametrize("name", dataset_names())
def test_kpcore_comp(benchmark, snapshots, name):
    survivors = benchmark(
        kp_core_vertices_compact, snapshots[name], DEFAULT_K, DEFAULT_P
    )
    assert isinstance(survivors, list)


@pytest.mark.parametrize("name", dataset_names())
def test_kpcore_query(benchmark, indexes, name):
    answer = benchmark(indexes[name].query, DEFAULT_K, DEFAULT_P)
    assert isinstance(answer, list)


def test_report_fig11(benchmark):
    headers, rows = benchmark.pedantic(fig11_rows, rounds=1, iterations=1)
    print_table(headers, rows, title="Fig. 11: computation time, k=10, p=0.6")
    for name, t_kcore, t_kpcore, t_query, _ in rows:
        # paper shape: kpCoreComp is close to kCoreComp (same peel), and
        # kpCoreQuery beats both by >= an order of magnitude
        assert t_kpcore < 20 * max(t_kcore, 1e-6), name
        assert t_query * 10 < max(t_kpcore, 1e-6), name
