"""Record the serving baseline into ``BENCH_serve.json``.

Standalone script (not a pytest-benchmark case): it runs the seeded
serve-bench workload across uniform/zipf query skew, cache-on/cache-off,
and a thread sweep (median of ``--repeat`` runs per configuration, by
``query_qps``), plus the sequential differential audit per spec (every
answer set compared against the naive fixpoint on a mirror graph), and
writes the committed baseline file future serving PRs compare against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py

The committed file must show ``"stale_serves": 0`` in every audit entry
(including the batched write-heavy audits), a cache hit-rate > 0 on
every cached read-heavy run, and — on the single-reader rows, where
steady-phase walls resolve the per-query marginal — cache-on
``query_qps`` beating cache-off on the zipf spec and at least holding
parity (within ``PARITY_SLACK``) on the uniform spec.  It must also
show the write-heavy pair (``WRITE_HEAVY_SPECS``: the same
update-dominated stream applied one edge at a time vs through
``apply_batch`` in groups of ``WRITE_BATCH``) with the batched row
strictly ahead on ``ops_per_s``.  That is the acceptance bar of the
serving layer (see docs/serving.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
from typing import Sequence

from repro.bench.provenance import run_provenance
from repro.bench.serving import run_differential_probes, run_serve_bench
from repro.obs.quantiles import LATENCY_METHOD
from repro.service.workload import WorkloadSpec

__all__ = ["main", "record_serving_baseline"]

#: Mixed read-heavy workload: most updates hit low-core endpoints of a
#: sparse random graph, so Thms. 2/6/7 leave most A_k versions alone and
#: the cache keeps serving across them.
UNIFORM_SPEC = (
    "ops=600,query=8,insert=1,delete=1,vertices=60,kmax=6,plevels=10,prefill=90"
)

#: Zipf exponent of the skewed row: rank-r grid cell gets weight 1/r^s.
ZIPF_S = 1.2

#: Same shape, zipf-skewed queries — identical update stream per seed
#: (query draws use a dedicated RNG), so the pair isolates query
#: locality.  Real traffic is skewed; the uniform spec structurally
#: cannot reward any cache.
ZIPF_SPEC = UNIFORM_SPEC + f",skew={ZIPF_S}"

DEFAULT_SPEC = UNIFORM_SPEC

#: Update-dominated workload for the batched-maintenance rows: ~9 of 10
#: ops are edge updates, so the cost under test is maintenance, not
#: query service.  Recorded twice — sequential (``batch=1``, the
#: default) and through ``apply_batch`` in groups of 8 — at threads=1;
#: the batched row must beat the sequential one on ``ops_per_s`` (the
#: amortization claim: one re-peel per affected A_k per batch, one
#: journal fsync per batch).
WRITE_HEAVY_BASE = (
    "ops=400,query=1,insert=6,delete=3,vertices=40,kmax=6,plevels=10,prefill=120"
)
WRITE_BATCH = 8
WRITE_HEAVY_SPECS = (WRITE_HEAVY_BASE, WRITE_HEAVY_BASE + f",batch={WRITE_BATCH}")

#: Uniform cache-on may not win much (one steady pass repeats only a
#: handful of keys), but it must not collapse vs cache-off: this is a
#: guardrail against the old hit-path pathology (hits costing more than
#: rebuilds), not a tight parity claim — host drift alone moves single
#: medians ~10%.
PARITY_SLACK = 0.25


def _one_run(spec: str, seed: int, threads: int, cache: bool) -> dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        return run_serve_bench(
            os.path.join(tmp, "state"),
            spec=spec,
            seed=seed,
            threads=threads,
            cache=cache,
        )


def record_serving_baseline(
    specs: Sequence[str] = (UNIFORM_SPEC, ZIPF_SPEC),
    seed: int = 7,
    thread_counts: Sequence[int] = (1, 2, 4),
    repeat: int = 3,
    write_specs: Sequence[str] = WRITE_HEAVY_SPECS,
) -> dict[str, object]:
    """Throughput entries per (spec, cache, threads) plus the audits.

    Repeats are interleaved round-robin across configurations (pass 1
    runs every config once, then pass 2, ...) rather than run as
    per-config blocks, so slow host drift lands on cache-on and
    cache-off alike instead of biasing whichever block ran during the
    slow minute.  Each entry is the median of its ``repeat`` runs —
    by ``query_qps`` for the read-heavy rows, by ``ops_per_s`` for the
    write-heavy ones (``write_specs``, cache-on/threads=1 only, where
    the measured cost is maintenance rather than query service).
    """
    configs = [
        (spec, cache, threads)
        for spec in specs
        for cache in (True, False)
        for threads in thread_counts
    ] + [(spec, True, 1) for spec in write_specs]
    write_set = set(write_specs)
    runs: dict[tuple[str, bool, int], list[dict[str, object]]] = {
        config: [] for config in configs
    }
    for _ in range(repeat):
        for spec, cache, threads in configs:
            runs[(spec, cache, threads)].append(
                _one_run(spec, seed, threads, cache)
            )
    entries: list[dict[str, object]] = []
    for config in configs:
        metric = "ops_per_s" if config[0] in write_set else "query_qps"
        ordered = sorted(
            runs[config],
            key=lambda run: float(run[metric]),  # type: ignore[arg-type]
        )
        chosen = ordered[len(ordered) // 2]
        chosen["repeat"] = repeat
        entries.append(chosen)
    audits = [
        run_differential_probes(spec=spec, seed=seed, cache=cache, probe_every=1)
        for spec in specs
        for cache in (True, False)
    ] + [
        # The write-heavy pair is audited too: the batched apply path
        # must serve zero stale answers, same bar as the sequential one.
        run_differential_probes(spec=spec, seed=seed, probe_every=1)
        for spec in write_specs
    ]
    return {
        "specs": list(specs),
        "seed": seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "latency_method": LATENCY_METHOD,
        "provenance": run_provenance(),
        "entries": entries,
        "audits": audits,
    }


def _write_heavy_canonical() -> tuple[str, str]:
    """Canonical (sequential, batched) spec strings of the write rows.

    Entries record ``WorkloadSpec.to_string()`` (every field rendered),
    not the short string the config was launched with, so the gates
    match on the canonical form.
    """
    seq, batched = WRITE_HEAVY_SPECS
    return (
        WorkloadSpec.parse(seq).to_string(),
        WorkloadSpec.parse(batched).to_string(),
    )


def _gate_batch_wins(entries: Sequence[dict[str, object]]) -> list[str]:
    """The batched write-heavy row must beat the sequential one.

    This is the amortization claim made concrete: on an update-dominated
    stream, ``apply_batch`` (one re-peel per affected A_k per group, one
    fsync per group) must deliver strictly higher ``ops_per_s`` than
    feeding the identical stream one edge at a time.  Gated at
    threads=1 where the wall measures maintenance, not contention.
    """
    seq_spec, batched_spec = _write_heavy_canonical()
    seq = batched = None
    for entry in entries:
        if int(entry["threads"]) != 1:  # type: ignore[arg-type]
            continue
        if entry["spec"] == seq_spec:
            seq = float(entry["ops_per_s"])  # type: ignore[arg-type]
        elif entry["spec"] == batched_spec:
            batched = float(entry["ops_per_s"])  # type: ignore[arg-type]
    if seq is None or batched is None:
        return ["write-heavy rows missing from entries (expected both)"]
    if batched <= seq:
        return [
            f"write-heavy batch={WRITE_BATCH} ops_per_s {batched} "
            f"<= sequential {seq}"
        ]
    return []


def _gate_cache_wins(entries: Sequence[dict[str, object]]) -> list[str]:
    """Spec-level cache-on vs cache-off checks; returns failure strings.

    Gated at ``threads == 1`` only: the single-reader steady phase is
    where the per-query marginal (cache probe vs slice rebuild) is
    actually resolvable.  Multi-thread rows measure GIL scheduling as
    much as query cost (observed spreads of 2-3x between repeats on a
    shared host), so they are recorded for scaling context but not
    gated.
    """
    failures: list[str] = []
    by_key: dict[tuple[str, int, bool], float] = {}
    for entry in entries:
        key = (str(entry["spec"]), int(entry["threads"]), bool(entry["cache"]))  # type: ignore[arg-type]
        by_key[key] = float(entry["query_qps"])  # type: ignore[arg-type]
    for (spec, threads, cache), qps in sorted(by_key.items()):
        if not cache or threads != 1:
            continue
        off = by_key.get((spec, threads, False))
        if off is None:
            continue
        zipf = "skew=" in spec and "skew=0," not in spec
        if zipf and qps <= off:
            failures.append(
                f"zipf spec threads={threads}: cache-on query_qps {qps} "
                f"<= cache-off {off}"
            )
        if not zipf and qps < off * (1.0 - PARITY_SLACK):
            failures.append(
                f"uniform spec threads={threads}: cache-on query_qps {qps} "
                f"more than {PARITY_SLACK:.0%} below cache-off {off}"
            )
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec", nargs="+", default=[UNIFORM_SPEC, ZIPF_SPEC],
        metavar="SPEC",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4], metavar="N"
    )
    parser.add_argument("--repeat", type=int, default=3, metavar="N")
    parser.add_argument("--out", default="BENCH_serve.json", metavar="FILE")
    args = parser.parse_args(argv)
    baseline = record_serving_baseline(
        specs=args.spec,
        seed=args.seed,
        thread_counts=args.threads,
        repeat=args.repeat,
    )
    stale = sum(int(audit["stale_serves"]) for audit in baseline["audits"])
    entries = baseline["entries"]
    write_canon = set(_write_heavy_canonical())
    # Write-heavy rows run ~40 queries total (query weight 1/10): a near-
    # zero hit rate there is workload shape, not a cache pathology, so
    # the hit-rate gate covers the read-heavy rows only.
    cached_entries = [
        entry
        for entry in entries
        if entry["cache"] and entry["spec"] not in write_canon
    ]
    hit_rates = [
        entry["cache_stats"]["hit_rate"] for entry in cached_entries
    ]
    failures = _gate_cache_wins(entries) + _gate_batch_wins(entries)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(f"stale_serves total: {stale} (must be 0)")
    print(f"cache hit rates (threaded runs): {hit_rates}")
    for entry in entries:
        print(
            f"  spec={entry['spec']!s:.40}…  threads={entry['threads']}  "
            f"cache={'on' if entry['cache'] else 'off'}  "
            f"query_qps={entry['query_qps']}  ops_per_s={entry['ops_per_s']}"
        )
    if stale:
        return 1
    if not all(rate > 0 for rate in hit_rates):
        print("error: a cached run recorded hit-rate 0")
        return 1
    for failure in failures:
        print(f"error: {failure}")
    if failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
