"""Record the serving baseline into ``BENCH_serve.json``.

Standalone script (not a pytest-benchmark case): it runs the seeded
serve-bench workload across cache-on/cache-off and a thread sweep, plus
the sequential differential audit (every answer set compared against the
naive fixpoint on a mirror graph), and writes the committed baseline
file future serving PRs compare against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py

The committed file must show ``"stale_serves": 0`` in every audit entry
and a cache hit-rate > 0 on the default workload — the acceptance bar of
the serving layer (see docs/serving.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
from typing import Sequence

from repro.bench.provenance import run_provenance
from repro.bench.serving import run_differential_probes, run_serve_bench
from repro.obs.quantiles import LATENCY_METHOD

__all__ = ["main", "record_serving_baseline"]

#: Mixed read-heavy workload: most updates hit low-core endpoints of a
#: sparse random graph, so Thms. 2/6/7 leave most A_k versions alone and
#: the cache keeps serving across them.
DEFAULT_SPEC = (
    "ops=600,query=8,insert=1,delete=1,vertices=60,kmax=6,plevels=10,prefill=90"
)


def record_serving_baseline(
    spec: str = DEFAULT_SPEC,
    seed: int = 7,
    thread_counts: Sequence[int] = (1, 2, 4),
) -> dict[str, object]:
    """Throughput entries per (cache, threads) plus the audit entries."""
    entries: list[dict[str, object]] = []
    for cache in (True, False):
        for threads in thread_counts:
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                entries.append(
                    run_serve_bench(
                        os.path.join(tmp, "state"),
                        spec=spec,
                        seed=seed,
                        threads=threads,
                        cache=cache,
                    )
                )
    audits = [
        run_differential_probes(spec=spec, seed=seed, cache=cache, probe_every=1)
        for cache in (True, False)
    ]
    return {
        "spec": spec,
        "seed": seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "latency_method": LATENCY_METHOD,
        "provenance": run_provenance(),
        "entries": entries,
        "audits": audits,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default=DEFAULT_SPEC)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4], metavar="N"
    )
    parser.add_argument("--out", default="BENCH_serve.json", metavar="FILE")
    args = parser.parse_args(argv)
    baseline = record_serving_baseline(
        spec=args.spec, seed=args.seed, thread_counts=args.threads
    )
    stale = sum(int(audit["stale_serves"]) for audit in baseline["audits"])
    cached_entries = [
        entry for entry in baseline["entries"] if entry["cache"]
    ]
    hit_rates = [
        entry["cache_stats"]["hit_rate"] for entry in cached_entries
    ]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(f"stale_serves total: {stale} (must be 0)")
    print(f"cache hit rates (threaded runs): {hit_rates}")
    if stale:
        return 1
    if not any(rate > 0 for rate in hit_rates):
        print("error: cache hit-rate is 0 on every cached run")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
