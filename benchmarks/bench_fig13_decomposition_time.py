"""Fig. 13 — decomposition time of kcoreDecomp vs kpCoreDecomp."""

import pytest

from repro.bench.experiments import fig13_rows
from repro.bench.reporting import print_table
from repro.core.decomposition import kp_core_decomposition
from repro.core.peel_engines import available_engines
from repro.datasets import dataset_names
from repro.graph.compact import CompactAdjacency
from repro.kcore.decomposition import core_numbers_compact


@pytest.mark.parametrize("name", dataset_names())
def test_kcore_decomp(benchmark, graphs, name):
    graph = graphs[name]
    core, _ = benchmark.pedantic(
        lambda: core_numbers_compact(CompactAdjacency(graph)),
        rounds=3,
        iterations=1,
    )
    assert len(core) == graph.num_vertices


@pytest.mark.parametrize("engine", available_engines())
@pytest.mark.parametrize("name", dataset_names())
def test_kpcore_decomp(benchmark, graphs, name, engine):
    graph = graphs[name]
    decomposition = benchmark.pedantic(
        kp_core_decomposition,
        args=(graph,),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    assert decomposition.degeneracy >= 10


def test_report_fig13(benchmark):
    headers, rows = benchmark.pedantic(
        fig13_rows,
        kwargs={"engines": available_engines()},
        rounds=1,
        iterations=1,
    )
    print_table(headers, rows, title="Fig. 13: decomposition time")
    for name, engine, t_core, t_kp, *_ in rows:
        # kpCoreDecomp repeats the peel per k: slower, by roughly d(G)-ish
        assert t_kp > t_core, (name, engine)
