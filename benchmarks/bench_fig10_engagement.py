"""Fig. 10 — check-ins vs core number / (k,p) stratum / onion layer."""

from repro.analysis.engagement import engagement_by_kp_stratum
from repro.bench.experiments import fig10_series
from repro.bench.reporting import print_table
from repro.core.decomposition import kp_core_decomposition
from repro.datasets import simulate_checkins


def test_stratum_aggregation(benchmark, graphs):
    graph = graphs["gowalla"]
    decomposition = kp_core_decomposition(graph)
    checkins = simulate_checkins(graph, decomposition=decomposition)
    points = benchmark.pedantic(
        engagement_by_kp_stratum,
        args=(graph, checkins, decomposition),
        rounds=3,
        iterations=1,
    )
    assert points


def test_report_fig10(benchmark):
    series = benchmark.pedantic(fig10_series, rounds=1, iterations=1)

    def rows_of(points, limit=15):
        return [
            (round(p.x, 3), round(p.average, 1), p.count)
            for p in points[:limit]
        ]

    print_table(
        ("k", "avg check-ins", "users"),
        rows_of(series["core_number"], limit=30),
        title="Fig. 10(a): k-core decomposition",
    )
    populated = [p for p in series["kp_stratum"] if p.count >= 5]
    print_table(
        ("k + p - 0.5", "avg check-ins", "users"),
        rows_of(populated, limit=30),
        title="Fig. 10(a): (k,p)-core decomposition (populated strata)",
    )
    print_table(
        ("onion layer", "avg check-ins", "users"),
        rows_of(series["onion_layer"], limit=30),
        title="Fig. 10(b): onion layers",
    )

    core_points = series["core_number"]
    # check-ins rise with core number overall (compare top vs bottom third)
    third = max(1, len(core_points) // 3)
    low = sum(p.average * p.count for p in core_points[:third]) / sum(
        p.count for p in core_points[:third]
    )
    high = sum(p.average * p.count for p in core_points[-third:]) / sum(
        p.count for p in core_points[-third:]
    )
    assert high > low
    # the (k,p) decomposition is strictly finer
    assert len(series["kp_stratum"]) > len(core_points)
