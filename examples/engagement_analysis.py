"""User-engagement analysis on a location-based social network (Fig. 10).

The paper's Gowalla case study asks: does the (k,p)-core decomposition
track *user activity* better than the classical k-core decomposition and
its onion layers?  This example reproduces the analysis end to end on the
Gowalla stand-in:

1. simulate per-user check-in counts (the real log is offline-unavailable;
   the model and its justification live in ``repro.datasets.checkins``),
2. decompose the friendship graph with both models,
3. print the three Fig. 10 series — average check-ins per core number,
   per (k, p-number) stratum at ``x = k + p - 0.5``, and per onion layer —
   plus the separation statistic that summarizes the claim.

Run:  python examples/engagement_analysis.py
"""

from repro.analysis.engagement import (
    engagement_by_core_number,
    engagement_by_kp_stratum,
    engagement_by_onion_layer,
    stratum_spread,
)
from repro.bench.reporting import print_table
from repro.core.decomposition import kp_core_decomposition
from repro.datasets import load, simulate_checkins


def main() -> None:
    graph = load("gowalla")
    print(f"gowalla stand-in: {graph.num_vertices} users, "
          f"{graph.num_edges} friendships")

    decomposition = kp_core_decomposition(graph)
    checkins = simulate_checkins(graph, decomposition=decomposition)
    print(f"simulated {sum(checkins.values())} check-ins "
          f"across {len(checkins)} users")

    by_core = engagement_by_core_number(graph, checkins, decomposition)
    by_stratum = engagement_by_kp_stratum(graph, checkins, decomposition)
    by_onion = engagement_by_onion_layer(graph, checkins)

    print_table(
        ("core number k", "avg check-ins", "users"),
        [(int(p.x), round(p.average, 1), p.count) for p in by_core],
        title="Fig. 10(a) baseline: k-core decomposition",
    )

    sample = [p for p in by_stratum if p.count >= 5]
    print_table(
        ("x = k + p - 0.5", "avg check-ins", "users"),
        [(round(p.x, 3), round(p.average, 1), p.count) for p in sample],
        title="Fig. 10(a): (k,p)-core strata (populated strata only)",
    )

    print_table(
        ("onion layer", "avg check-ins", "users"),
        [(int(p.x), round(p.average, 1), p.count) for p in by_onion],
        title="Fig. 10(b) comparison: onion layers",
    )

    print("\nHow well does each decomposition separate activity levels?")
    print(f"  strata: core numbers {len(by_core)}, "
          f"(k,p) strata {len(by_stratum)}, onion layers {len(by_onion)}")
    print(f"  max/min average spread across core numbers: "
          f"{stratum_spread(by_core):.1f}x")

    # Fig. 10(b)'s claim is about users with the SAME core number: within
    # one shell, do p-numbers (resp. onion layers) separate the active
    # from the inactive?  Compare the above/below-median activity gap.
    from repro.kcore.onion import onion_decomposition

    core_numbers = decomposition.core_numbers
    # pick a populous shell whose members span many distinct p-numbers
    # (a shell that collapses at a single level has nothing to separate)
    def shell_score(c: int) -> tuple[int, int]:
        members = [v for v, cn in core_numbers.items() if cn == c]
        if len(members) < 30 or c < 1:
            return (0, 0)
        pn = decomposition.arrays[c].pn_map()
        return (len({pn[v] for v in members}), len(members))

    shell_k = max(set(core_numbers.values()), key=shell_score)
    shell = [v for v, c in core_numbers.items() if c == shell_k]
    pn_at_shell = decomposition.arrays[shell_k].pn_map()
    onion_layers = onion_decomposition(graph).layers

    def median_split_gap(score) -> float:
        ranked = sorted(shell, key=score)
        half = len(ranked) // 2
        low = sum(checkins[v] for v in ranked[:half]) / max(1, half)
        high_members = ranked[half:]
        high = sum(checkins[v] for v in high_members) / len(high_members)
        return high / low if low > 0 else float("inf")

    kp_gap = median_split_gap(lambda v: pn_at_shell[v])
    onion_gap = median_split_gap(lambda v: onion_layers[v])
    print(f"\nwithin core number k = {shell_k} ({len(shell)} users):")
    print(f"  high- vs low-p-number users check in {kp_gap:.2f}x more")
    print(f"  high- vs low-onion-layer users check in {onion_gap:.2f}x more")
    print("\nThe p-number separates engaged from disengaged users *within* "
          "a core level; onion layers cannot (the paper's Fig. 10(b) "
          "conclusion).")


if __name__ == "__main__":
    main()
