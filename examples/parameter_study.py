"""Choosing (k, p): a parameter study over the community structure.

The containment property (Sec. IV) makes the (k,p)-core family a 2-D
hierarchy: raising ``k`` demands more friends in absolute terms, raising
``p`` demands a larger *share* of one's friendships.  This example sweeps
a parameter grid over a dataset and shows how the cores fragment into
communities and finally vanish — the exploration an analyst runs before
settling on parameters, powered by the KP-Index so the sweep costs one
decomposition plus output-sized queries.

It also answers per-user questions: each showcased user's strongest
community parameters (their core number paired with their p-number there)
and the community those parameters select.

Run:  python examples/parameter_study.py
"""

from repro.bench.reporting import print_table
from repro.core.communities import (
    kp_communities,
    parameter_grid,
    strongest_community_parameters,
)
from repro.core.decomposition import kp_core_decomposition
from repro.datasets import load


def main() -> None:
    graph = load("pokec")
    print(f"pokec stand-in: {graph.num_vertices} users, "
          f"{graph.num_edges} friendships")

    ks = (2, 5, 10, 15)
    ps = (0.2, 0.4, 0.6, 0.8)
    cells = parameter_grid(graph, ks, ps)
    print_table(
        ("k", "p", "core size", "communities", "largest"),
        [
            (c.k, c.p, c.core_size, c.num_communities, c.largest_community)
            for c in cells
        ],
        title="Community structure across the (k, p) grid",
    )

    # zoom into one interesting cell: where the core fragments
    fragmented = [c for c in cells if c.num_communities >= 2]
    if fragmented:
        cell = max(fragmented, key=lambda c: c.num_communities)
        communities = kp_communities(graph, cell.k, cell.p)
        print(f"\nat (k={cell.k}, p={cell.p}) the core splits into "
              f"{len(communities)} communities of sizes "
              f"{[len(c) for c in communities]}")

    # per-user strongest parameters
    decomposition = kp_core_decomposition(graph)
    showcase = sorted(
        graph.vertices(), key=graph.degree, reverse=True
    )[:5]
    rows = []
    for v in showcase:
        strongest = strongest_community_parameters(graph, v, decomposition)
        assert strongest is not None
        k, p = strongest
        rows.append((str(v), graph.degree(v), k, round(p, 3)))
    print_table(
        ("user", "degree", "strongest k", "p-number there"),
        rows,
        title="Strongest community parameters of the top-degree users",
    )
    print("\nNote how high degree does not imply a high p-number: hubs "
          "spread their friendships too thin — the finding that motivates "
          "the fraction constraint in the first place.")


if __name__ == "__main__":
    main()
