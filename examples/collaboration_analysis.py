"""Collaboration-network case study on DBLP-style data (Fig. 9).

The paper builds DBLP graphs at several co-authorship thresholds and shows
how the (k,p)-core refines the k-core: the author with the smallest
fraction of collaborators inside the core leaves first, dragging a group of
co-authors out with them.

This example runs the full pipeline on the synthetic corpus:

1. generate a publication corpus (power-law productivity, research fields,
   repeat teams, supervision papers, lab consortia),
2. derive the DBLP-1 / DBLP-3 / DBLP-10 graphs,
3. report, per threshold, the k-core vs (k,p)-core and the departure
   cascade of the minimum-fraction author.

Run:  python examples/collaboration_analysis.py
"""

from repro.analysis.casestudy import case_study
from repro.bench.reporting import print_table
from repro.datasets.dblp import default_corpus
from repro.kcore.decomposition import core_decomposition


def pick_parameters(graph, wanted_k: int) -> int:
    """Degrade the paper's k to the scaled graph's degeneracy if needed."""
    return min(wanted_k, core_decomposition(graph).degeneracy)


def main() -> None:
    corpus = default_corpus()
    print(f"corpus: {corpus.num_publications} publications")

    rows = []
    for threshold in (1, 3, 10):
        g = corpus.graph(min_papers=threshold)
        rows.append((f"DBLP-{threshold}", g.num_vertices, g.num_edges))
    print_table(("graph", "authors", "edges"), rows,
                title="Thresholded co-authorship graphs")

    # paper parameters: DBLP-3 with (k=15, p=0.5); DBLP-10 with (k=5, p=0.4)
    for threshold, wanted_k, p in ((3, 15, 0.5), (10, 5, 0.4)):
        g = corpus.graph(min_papers=threshold)
        k = pick_parameters(g, wanted_k)
        report = case_study(g, k, p, component_rank=0)
        print(f"\n--- DBLP-{threshold}, ({k},{p})-core case study ---")
        print(report.summary())
        weakest = report.min_fraction_vertex
        print(f"weakest member: {weakest} "
              f"(fraction {report.fractions[weakest]:.3f})")
        if report.cascade:
            dragged = [str(step.vertex) for step in report.cascade[1:6]]
            if dragged:
                print(f"their departure drags out: {', '.join(dragged)}"
                      + (" ..." if len(report.cascade) > 6 else ""))
        survivors = sorted(str(v) for v in report.kp_members)[:8]
        print(f"(k,p)-core survivors in this component: {len(report.kp_members)}"
              + (f" (e.g. {', '.join(survivors)})" if survivors else ""))


if __name__ == "__main__":
    main()
