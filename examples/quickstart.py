"""Quickstart: the (k,p)-core model in five minutes.

Builds the small social network from the paper's motivation (a dense
friend group plus loosely attached outsiders), then walks through each
public capability:

1. kpCore        — compute one (k,p)-core (Algorithm 1),
2. kpCoreDecom   — p-numbers for every k (Algorithm 2),
3. KP-Index      — build once, answer any query in output time (Alg. 3),
4. maintenance   — keep the index exact while edges come and go (Algs. 4-5).

Run:  python examples/quickstart.py
"""

from repro import Graph, KPIndex, KPIndexMaintainer, kp_core_vertices
from repro.core import kp_core_decomposition


def build_network() -> Graph:
    """A tight clique of five friends, a ring of acquaintances around it,
    and a few peripheral users — the Fig. 1 situation."""
    g = Graph()
    clique = [f"core{i}" for i in range(5)]
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            g.add_edge(u, v)
    ring = [f"ring{i}" for i in range(4)]
    for i, u in enumerate(ring):
        g.add_edge(u, ring[(i + 1) % 4])
        g.add_edge(u, clique[i])
    for i in range(3):
        g.add_edge(f"guest{i}", clique[0])
        g.add_edge(f"guest{i}", ring[i])
    return g


def main() -> None:
    g = build_network()
    print(f"network: {g.num_vertices} users, {g.num_edges} friendships")

    # -- 1. one (k,p)-core -------------------------------------------------
    k, p = 3, 0.6
    members = kp_core_vertices(g, k, p)
    print(f"\n({k},{p})-core: every member keeps >= {k} friends and >= "
          f"{p:.0%} of their friendships inside")
    print("  members:", ", ".join(sorted(members)))

    # -- 2. the full decomposition ------------------------------------------
    decomposition = kp_core_decomposition(g)
    print(f"\ndegeneracy d(G) = {decomposition.degeneracy}")
    pn3 = decomposition.arrays[3].pn_map()
    for v in sorted(pn3):
        print(f"  pn({v}, k=3) = {pn3[v]:.3f}")

    # -- 3. the KP-Index ------------------------------------------------------
    index = KPIndex.build(g)
    stats = index.space_stats()
    print(f"\nKP-Index: {stats.vertex_entries} vertex entries "
          f"(Lemma 1 bound 2m = {stats.two_m})")
    for query_p in (0.4, 0.6, 0.8):
        answer = index.query(3, query_p)
        print(f"  query(k=3, p={query_p}): {len(answer)} vertices")

    # -- 4. dynamic maintenance ----------------------------------------------
    maintainer = KPIndexMaintainer(g)
    print("\ninserting edge (guest0, guest1) and querying again...")
    maintainer.insert_edge("guest0", "guest1")
    answer = maintainer.query(2, 0.8)
    print(f"  (2,0.8)-core now has {len(answer)} vertices")
    maintainer.delete_edge("guest0", "guest1")
    restored = maintainer.query(2, 0.8)
    print(f"  after deleting it again: {len(restored)} vertices")
    print("\nindex stayed exact through both updates "
          f"(arrays touched: {maintainer.stats.arrays_updated})")


if __name__ == "__main__":
    main()
