"""Serving (k,p)-core queries over a dynamic social network (Sec. VI).

A community-detection service must answer (k,p)-core queries continuously
while friendships are created and dropped.  Rebuilding the KP-Index from
scratch on every change costs a full O(d·m) decomposition; the maintenance
algorithms repair only the affected slice.

This example replays a day of simulated edge events against the Brightkite
stand-in and reports:

* per-event maintenance cost vs. the from-scratch alternative,
* how much of the index each event actually touched (the maintainer's
  work counters), and
* a correctness spot-check against a fresh decomposition at the end.

Run:  python examples/dynamic_social_network.py
"""

import random

from repro import KPIndex, KPIndexMaintainer
from repro.bench.reporting import format_seconds, print_table
from repro.bench.timing import measure
from repro.datasets import load


def main() -> None:
    graph = load("brightkite").copy()
    print(f"brightkite stand-in: {graph.num_vertices} users, "
          f"{graph.num_edges} friendships")

    maintainer = KPIndexMaintainer(graph)
    rng = random.Random(2020)

    # a day of churn: 40 friendships dissolve, 40 new ones form
    dropped = rng.sample(list(maintainer.graph.edges()), 40)
    event_log: list[tuple[str, float]] = []
    for u, v in dropped:
        timing = measure(lambda: maintainer.delete_edge(u, v))
        event_log.append(("unfriend", timing.seconds))
    created = []
    vertices = list(maintainer.graph.vertices())
    while len(created) < 40:
        u, v = rng.sample(vertices, 2)
        if maintainer.graph.has_edge(u, v):
            continue
        timing = measure(lambda u=u, v=v: maintainer.insert_edge(u, v))
        event_log.append(("friend", timing.seconds))
        created.append((u, v))

    rebuild = measure(lambda: KPIndex.build(maintainer.graph))
    per_event = sum(t for _, t in event_log) / len(event_log)

    print_table(
        ("metric", "value"),
        [
            ("events processed", len(event_log)),
            ("avg maintenance / event", format_seconds(per_event)),
            ("slowest event", format_seconds(max(t for _, t in event_log))),
            ("from-scratch rebuild", format_seconds(rebuild.seconds)),
            ("rebuild / maintenance", f"{rebuild.seconds / per_event:.1f}x"),
        ],
        title="Cost of staying fresh",
    )

    stats = maintainer.stats.snapshot()
    print_table(
        ("counter", "value"),
        sorted(stats.items()),
        title="Where the work went",
    )

    # correctness spot-check: the served index equals a fresh one
    fresh = rebuild.result
    assert maintainer.index.semantically_equal(fresh)
    answer = maintainer.query(10, 0.6)
    print(f"\nspot-check passed; current (10,0.6)-core has {len(answer)} users")


if __name__ == "__main__":
    main()
