"""Subgraph sampling used by the scalability experiments (Figs. 14 and 16).

The paper scales Orkut by "randomly sampling nodes (resp. edges) from 20%
to 100%" and running on the induced subgraphs.  Both samplers are
deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["sample_vertices", "sample_edges", "sample_ratios"]

#: The sampling grid the paper uses on the x-axis of Figs. 14 and 16.
sample_ratios: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)


def _check_ratio(ratio: float) -> None:
    if not 0.0 < ratio <= 1.0:
        raise ParameterError(f"sample ratio must be in (0, 1], got {ratio}")


def sample_vertices(graph: Graph, ratio: float, seed: int = 0) -> Graph:
    """Induced subgraph on a uniform ``ratio`` fraction of the vertices.

    ``ratio=1.0`` returns a copy of the full graph so that callers can
    treat all grid points uniformly.
    """
    _check_ratio(ratio)
    if ratio == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    keep_count = max(1, round(ratio * len(vertices)))
    keep = rng.sample(vertices, keep_count)
    return graph.induced_subgraph(keep)


def sample_edges(graph: Graph, ratio: float, seed: int = 0) -> Graph:
    """Subgraph spanned by a uniform ``ratio`` fraction of the edges.

    Vertices that lose all incident edges are dropped, matching the
    "induced subgraph of the sampled edge set" construction in the paper.
    """
    _check_ratio(ratio)
    if ratio == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    edges = list(graph.edges())
    keep_count = max(1, round(ratio * len(edges)))
    keep = rng.sample(edges, keep_count)
    return Graph(keep)
