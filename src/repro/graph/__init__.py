"""Graph substrate: structures, I/O, metrics, traversal, and generators.

This package is self-contained (no third-party graph library) and provides
everything the (k,p)-core algorithms stand on:

* :class:`~repro.graph.adjacency.Graph` — dynamic adjacency-set graph,
* :class:`~repro.graph.compact.CompactAdjacency` — frozen CSR snapshot for
  the batch peeling algorithms,
* :mod:`~repro.graph.io` — SNAP-style edge-list reader/writer,
* :mod:`~repro.graph.metrics` — density, clustering coefficient, degrees,
* :mod:`~repro.graph.traversal` — BFS and connected components,
* :mod:`~repro.graph.views` — vertex/edge sampling for the scalability
  experiments,
* :mod:`~repro.graph.generators` — seeded random-graph generators.
"""

from repro.graph.adjacency import Edge, Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.graph.fingerprint import (
    GraphFingerprint,
    edge_multiset_hash,
    graph_fingerprint,
)
from repro.graph.io import iter_edge_list, parse_edge_list, read_edge_list, write_edge_list
from repro.graph.metrics import (
    GraphSummary,
    average_degree,
    density,
    global_clustering_coefficient,
    max_degree,
    summarize,
    triangle_count,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    component_of,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph.views import sample_edges, sample_ratios, sample_vertices

__all__ = [
    "Graph",
    "Vertex",
    "Edge",
    "CompactAdjacency",
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "parse_edge_list",
    "GraphFingerprint",
    "graph_fingerprint",
    "edge_multiset_hash",
    "density",
    "average_degree",
    "max_degree",
    "triangle_count",
    "global_clustering_coefficient",
    "GraphSummary",
    "summarize",
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "component_of",
    "is_connected",
    "largest_component",
    "sample_vertices",
    "sample_edges",
    "sample_ratios",
]
