"""Edge-list input/output in the SNAP text format.

The paper's datasets are SNAP downloads: whitespace-separated vertex pairs,
one edge per line, ``#`` comment lines.  The reader tolerates duplicate
edges and either orientation (they collapse into one undirected edge) and
can optionally drop self loops, which appear in some raw SNAP files, instead
of failing on them.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterable, Iterator, Union

from repro.errors import (
    EdgeListParseError,
    ParameterError,
    SelfLoopError,
    VertexLabelError,
)
from repro.graph.adjacency import Edge, Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "parse_edge_list",
]

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_for_read(source: PathOrFile) -> tuple[IO[str], bool]:
    if hasattr(source, "read"):
        return source, False  # caller-owned stream
    return open(os.fspath(source), "r", encoding="utf-8"), True


def iter_edge_list(
    source: PathOrFile,
    comment: str = "#",
    int_vertices: bool = True,
    extra_tokens: str = "error",
) -> Iterator[Edge]:
    """Yield edges from a SNAP-style edge list.

    Parameters
    ----------
    source:
        Path or text stream.
    comment:
        Lines starting with this prefix (after stripping) are skipped.
    int_vertices:
        When true (default), vertex tokens must parse as integers; when
        false they are kept as strings.
    extra_tokens:
        What to do with lines carrying more than two tokens — typically a
        temporal/weighted SNAP file that is *not* a plain pair list.
        ``"error"`` (default) rejects the line with its line number;
        ``"ignore"`` is an explicit opt-in that keeps only the first two
        tokens (for datasets whose trailing columns are known timestamps
        or weights).

    Raises
    ------
    EdgeListParseError
        For lines that are not blank, not comments, and not vertex pairs.
        The ``int_vertices=True`` label-parse failure specifically raises
        :class:`~repro.errors.VertexLabelError` (a subclass), so callers
        probing the label convention can retry on exactly that case.
    """
    if extra_tokens not in ("error", "ignore"):
        raise ParameterError(
            f"extra_tokens must be 'error' or 'ignore', got {extra_tokens!r}"
        )
    stream, owned = _open_for_read(source)
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise EdgeListParseError(
                    f"expected two vertex tokens, got {line!r}", line_number
                )
            if len(tokens) > 2 and extra_tokens == "error":
                raise EdgeListParseError(
                    f"expected exactly two vertex tokens, got {line!r} "
                    "(a temporal/weighted list? pass extra_tokens='ignore' "
                    "to keep only the vertex pair)",
                    line_number,
                )
            u_token, v_token = tokens[0], tokens[1]
            if int_vertices:
                try:
                    yield (int(u_token), int(v_token))
                except ValueError:
                    raise VertexLabelError(
                        f"non-integer vertex in {line!r}", line_number
                    ) from None
            else:
                yield (u_token, v_token)
    finally:
        if owned:
            stream.close()


def read_edge_list(
    source: PathOrFile,
    comment: str = "#",
    int_vertices: bool = True,
    drop_self_loops: bool = True,
    extra_tokens: str = "error",
) -> Graph:
    """Read a :class:`~repro.graph.adjacency.Graph` from a SNAP edge list.

    Duplicate edges merge silently.  Self loops are dropped by default
    (matching how the paper's pre-processing treats raw SNAP data); with
    ``drop_self_loops=False`` they raise
    :class:`~repro.errors.SelfLoopError`.  Lines with trailing extra
    columns are rejected unless ``extra_tokens="ignore"`` opts in (see
    :func:`iter_edge_list`).
    """
    graph = Graph()
    for u, v in iter_edge_list(
        source,
        comment=comment,
        int_vertices=int_vertices,
        extra_tokens=extra_tokens,
    ):
        if u == v:
            if drop_self_loops:
                graph.add_vertex(u)
                continue
            raise SelfLoopError(u)
        graph.add_edge(u, v)
    return graph


def parse_edge_list(text: str, **kwargs) -> Graph:
    """Parse an edge list from an in-memory string (testing convenience)."""
    return read_edge_list(io.StringIO(text), **kwargs)


def write_edge_list(
    graph: Graph,
    destination: PathOrFile,
    header: Iterable[str] | None = None,
) -> None:
    """Write ``graph`` as a SNAP-style edge list.

    ``header`` lines, if given, are emitted first as ``#`` comments.
    """
    if hasattr(destination, "write"):
        stream, owned = destination, False
    else:
        stream, owned = open(os.fspath(destination), "w", encoding="utf-8"), True
    try:
        if header is not None:
            for line in header:
                stream.write(f"# {line}\n")
        for u, v in graph.edges():
            stream.write(f"{u} {v}\n")
    finally:
        if owned:
            stream.close()
