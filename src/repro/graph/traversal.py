"""Breadth-first traversal and connected components.

These primitives back the Fig. 9 case study (connected components of the
k-core / (k,p)-core) and several generators that must guarantee
connectivity.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph, Vertex

__all__ = [
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "component_of",
    "is_connected",
    "largest_component",
    "ensure_vertices",
]


def bfs_order(graph: Graph, source: Vertex) -> Iterator[Vertex]:
    """Yield vertices reachable from ``source`` in BFS order."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    seen = {source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        yield v
        for w in graph.neighbors(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)


def bfs_distances(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    """Return hop distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        base = dist[v]
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = base + 1
                queue.append(w)
    return dist


def component_of(graph: Graph, source: Vertex) -> set[Vertex]:
    """Return the vertex set of the connected component containing ``source``."""
    return set(bfs_order(graph, source))


def connected_components(graph: Graph) -> list[set[Vertex]]:
    """Return all connected components, largest first (ties by discovery)."""
    seen: set[Vertex] = set()
    components: list[set[Vertex]] = []
    for v in graph.vertices():
        if v in seen:
            continue
        component = component_of(graph, v)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether the graph is connected (empty graphs count as connected)."""
    n = graph.num_vertices
    if n <= 1:
        return True
    first = next(graph.vertices())
    return len(component_of(graph, first)) == n


def largest_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return Graph()
    return graph.induced_subgraph(components[0])


def ensure_vertices(graph: Graph, vertices: Iterable[Vertex]) -> None:
    """Validate that every vertex in ``vertices`` exists in ``graph``."""
    for v in vertices:
        if not graph.has_vertex(v):
            raise VertexNotFoundError(v)
