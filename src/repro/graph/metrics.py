"""Graph statistics used by the paper's effectiveness evaluation (Sec. VII-B).

The paper reports, for each dataset and for each extracted core:

* **graph density** ``2m / (n (n-1))`` (Fig. 8, citing [5]),
* **global clustering coefficient** ``3 |triangles| / |connected triplets|``
  (Fig. 7, citing [11]),
* degree statistics ``d_avg`` and ``d_max`` (Table II).

Triangle counting uses the standard degree-ordered enumeration, which is
O(m^{3/2}) and exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.adjacency import Graph

__all__ = [
    "density",
    "average_degree",
    "max_degree",
    "triangle_count",
    "connected_triplet_count",
    "global_clustering_coefficient",
    "degree_histogram",
    "effective_diameter_lower_bound",
    "gini_coefficient",
    "GraphSummary",
    "summarize",
]


def density(graph: Graph) -> float:
    """Graph density ``2m / (n (n-1))``; 0.0 for graphs with < 2 vertices."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def average_degree(graph: Graph) -> float:
    """Average degree ``2m / n``; 0.0 for the empty graph."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    return 2.0 * graph.num_edges / n


def max_degree(graph: Graph) -> int:
    """Maximum degree; 0 for the empty graph."""
    return max((graph.degree(v) for v in graph.vertices()), default=0)


def triangle_count(graph: Graph) -> int:
    """Exact number of triangles.

    Each triangle is counted once by orienting every edge from the
    lower-ranked endpoint to the higher-ranked one (rank = (degree, id
    order)) and intersecting out-neighbourhoods.
    """
    rank = {
        v: i
        for i, v in enumerate(
            sorted(graph.vertices(), key=lambda v: (graph.degree(v), repr(v)))
        )
    }
    forward: dict = {
        v: {w for w in graph.neighbors(v) if rank[w] > rank[v]}
        for v in graph.vertices()
    }
    triangles = 0
    for v in graph.vertices():
        fv = forward[v]
        for w in fv:
            triangles += len(fv & forward[w])
    return triangles


def connected_triplet_count(graph: Graph) -> int:
    """Number of connected triplets (paths of length two), open or closed."""
    return sum(
        d * (d - 1) // 2 for d in (graph.degree(v) for v in graph.vertices())
    )


def global_clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient ``3 |triangles| / |triplets|``.

    Returns 0.0 when the graph has no connected triplets.
    """
    triplets = connected_triplet_count(graph)
    if triplets == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / triplets


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Return ``{degree: vertex count}``."""
    histogram: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


@dataclass(frozen=True)
class GraphSummary:
    """Table II-style dataset statistics."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int

    def as_row(self, name: str) -> tuple[str, int, int, float, int]:
        """One printable row of the Table II reproduction."""
        return (
            name,
            self.num_vertices,
            self.num_edges,
            round(self.average_degree, 2),
            self.max_degree,
        )


def summarize(graph: Graph) -> GraphSummary:
    """Compute the Table II statistics for ``graph``."""
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=average_degree(graph),
        max_degree=max_degree(graph),
    )


def effective_diameter_lower_bound(graph: Graph, source) -> int:
    """Eccentricity of ``source`` — a cheap lower bound on the diameter.

    Utility for dataset sanity checks; not part of the paper's tables.
    """
    from repro.graph.traversal import bfs_distances

    dist = bfs_distances(graph, source)
    return max(dist.values(), default=0)


def gini_coefficient(values: list[float]) -> float:
    """Gini coefficient of a non-negative sample (degree inequality checks).

    Returns ``nan`` for empty input and 0.0 when every value is zero.
    """
    if not values:
        return math.nan
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    weighted = sum((i + 1) * x for i, x in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
