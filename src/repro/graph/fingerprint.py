"""Order-independent graph fingerprints for persisted-index validation.

A persisted KP-Index is only meaningful relative to the graph it was built
from; the durability layer (:mod:`repro.service`) therefore stamps every
snapshot with a :class:`GraphFingerprint` — ``(n, m, edge multiset hash)``
— and refuses to pair a checkpointed index with a graph that no longer
matches it.

The edge hash must not depend on adjacency-iteration order or edge
orientation (both are construction-history artifacts), so each undirected
edge is canonicalized to a sorted label pair and the per-edge SHA-256
digests are combined with XOR, which is commutative and associative.  Two
graphs with the same vertex labels and edge set always produce the same
fingerprint, whatever order their edges were inserted in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import IndexPersistenceError
from repro.graph.adjacency import Edge, Graph

__all__ = ["GraphFingerprint", "graph_fingerprint", "edge_multiset_hash"]

_HASH_BYTES = 16  # 128 bits of the SHA-256 digest; plenty for corruption checks


def _edge_token(u: object, v: object) -> bytes:
    """Canonical byte string for one undirected edge.

    Labels are rendered with ``repr`` (distinguishing ``1`` from ``"1"``)
    and sorted so orientation does not matter.
    """
    a, b = sorted((repr(u), repr(v)))
    return f"{a}\x1f{b}".encode("utf-8")


def edge_multiset_hash(edges: Iterable[Edge]) -> str:
    """Hex digest of an edge multiset, independent of iteration order."""
    combined = 0
    for u, v in edges:
        digest = hashlib.sha256(_edge_token(u, v)).digest()[:_HASH_BYTES]
        combined ^= int.from_bytes(digest, "big")
    return format(combined, f"0{2 * _HASH_BYTES}x")


@dataclass(frozen=True)
class GraphFingerprint:
    """``(n, m, edge-hash)`` identity of a graph at snapshot time."""

    num_vertices: int
    num_edges: int
    edge_hash: str

    def to_dict(self) -> dict:
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "edge_hash": self.edge_hash,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GraphFingerprint":
        try:
            return cls(
                num_vertices=int(payload["n"]),
                num_edges=int(payload["m"]),
                edge_hash=str(payload["edge_hash"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise IndexPersistenceError(
                f"malformed graph fingerprint: {error!r}"
            ) from error

    def matches(self, graph: Graph) -> bool:
        """Whether ``graph`` is (up to label identity) the stamped graph."""
        if (
            graph.num_vertices != self.num_vertices
            or graph.num_edges != self.num_edges
        ):
            return False
        return edge_multiset_hash(graph.edges()) == self.edge_hash


def graph_fingerprint(graph: Graph) -> GraphFingerprint:
    """Fingerprint of ``graph``'s current vertex/edge content."""
    return GraphFingerprint(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        edge_hash=edge_multiset_hash(graph.edges()),
    )
