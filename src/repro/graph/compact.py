"""Compact array-based snapshot of a :class:`~repro.graph.adjacency.Graph`.

The batch algorithms in :mod:`repro.kcore` and :mod:`repro.core` are
peeling algorithms that touch every edge a small number of times.  Running
them over Python dict-of-set adjacency is dominated by hashing; this module
freezes a graph into flat lists (a CSR layout) with vertices renumbered to
``0..n-1`` so the inner loops become list indexing.

The snapshot can additionally sort each neighbour list by *descending core
number*.  Then, for any ``k``, the neighbours of ``v`` inside the k-core
form a prefix of ``v``'s slice — the (k,p)-core decomposition iterates that
prefix directly instead of filtering every neighbour, which is what keeps
the O(d·m) loop practical in pure Python.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph, Vertex

__all__ = ["CompactAdjacency"]


class CompactAdjacency:
    """Immutable CSR view of an undirected simple graph.

    Attributes
    ----------
    indptr:
        ``indptr[i]:indptr[i+1]`` delimits the neighbour slice of vertex
        ``i`` within :attr:`indices`.
    indices:
        Flattened neighbour lists (internal ids).
    labels:
        ``labels[i]`` is the original vertex object for internal id ``i``.
    """

    __slots__ = ("indptr", "indices", "labels", "_index_of")

    def __init__(self, graph: Graph):
        order: list[Vertex] = list(graph.vertices())
        index_of: dict[Vertex, int] = {v: i for i, v in enumerate(order)}
        indptr = [0] * (len(order) + 1)
        for i, v in enumerate(order):
            indptr[i + 1] = indptr[i] + graph.degree(v)
        indices = [0] * indptr[-1]
        cursor = indptr[:-1].copy()
        for i, v in enumerate(order):
            for w in graph.neighbors(v):
                indices[cursor[i]] = index_of[w]
                cursor[i] += 1
        self.indptr: list[int] = indptr
        self.indices: list[int] = indices
        self.labels: list[Vertex] = order
        self._index_of = index_of

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def index_of(self, v: Vertex) -> int:
        """Map an original vertex object to its internal id."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, i: int) -> int:
        """Degree of internal vertex ``i`` in the snapshot."""
        return self.indptr[i + 1] - self.indptr[i]

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by internal id."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(self.num_vertices)]

    def neighbor_slice(self, i: int) -> Sequence[int]:
        """Neighbour ids of vertex ``i`` (a list slice; do not mutate)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def iter_neighbors(self, i: int) -> Iterator[int]:
        start, stop = self.indptr[i], self.indptr[i + 1]
        indices = self.indices
        for pos in range(start, stop):
            yield indices[pos]

    # ------------------------------------------------------------------
    def sort_neighbors_by_rank_desc(self, rank: Sequence[int]) -> None:
        """Sort every neighbour slice by descending ``rank`` value.

        Used with core numbers as ranks: afterwards
        :meth:`core_prefix_length` locates the boundary of ``rank >= k``
        prefixes in O(log deg).  Ties are broken by internal id so the
        layout is deterministic.
        """
        indices = self.indices
        indptr = self.indptr
        for i in range(self.num_vertices):
            start, stop = indptr[i], indptr[i + 1]
            chunk = sorted(indices[start:stop], key=lambda j: (-rank[j], j))
            indices[start:stop] = chunk

    def rank_prefix_length(self, i: int, k: int, rank: Sequence[int]) -> int:
        """Length of the prefix of ``i``'s slice with ``rank >= k``.

        Requires a prior :meth:`sort_neighbors_by_rank_desc` with the same
        ``rank`` array.
        """
        start, stop = self.indptr[i], self.indptr[i + 1]
        indices = self.indices
        # Neighbour ranks are non-increasing across the slice, so the first
        # position with rank < k is found by binary search.
        lo, hi = start, stop
        while lo < hi:
            mid = (lo + hi) // 2
            if rank[indices[mid]] >= k:
                lo = mid + 1
            else:
                hi = mid
        return lo - start

    def __repr__(self) -> str:
        return f"CompactAdjacency(n={self.num_vertices}, m={self.num_edges})"
