"""Compact array-based snapshot of a :class:`~repro.graph.adjacency.Graph`.

The batch algorithms in :mod:`repro.kcore` and :mod:`repro.core` are
peeling algorithms that touch every edge a small number of times.  Running
them over Python dict-of-set adjacency is dominated by hashing; this module
freezes a graph into flat typed arrays (a CSR layout) with vertices
renumbered to ``0..n-1`` so the inner loops become array indexing.  The
:mod:`array` storage also makes the snapshot cheap to pickle — 4 bytes per
edge endpoint instead of a PyObject pointer per list slot — which is what
lets :mod:`repro.core.parallel` ship one copy to each worker process.

The snapshot can additionally sort each neighbour list by *descending core
number*.  Then, for any ``k``, the neighbours of ``v`` inside the k-core
form a prefix of its slice — the (k,p)-core decomposition iterates that
prefix directly instead of filtering every neighbour, which is what keeps
the O(d·m) loop practical in pure Python.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph, Vertex

__all__ = ["CompactAdjacency"]


class CompactAdjacency:
    """Immutable CSR view of an undirected simple graph.

    Attributes
    ----------
    indptr:
        ``indptr[i]:indptr[i+1]`` delimits the neighbour slice of vertex
        ``i`` within :attr:`indices` (``array('l')``).
    indices:
        Flattened neighbour lists, internal ids (``array('i')``).
    labels:
        ``labels[i]`` is the original vertex object for internal id ``i``.
    """

    __slots__ = ("indptr", "indices", "labels", "_index_of")

    def __init__(self, graph: Graph):
        order: list[Vertex] = list(graph.vertices())
        index_of: dict[Vertex, int] = {v: i for i, v in enumerate(order)}
        indptr = [0] * (len(order) + 1)
        for i, v in enumerate(order):
            indptr[i + 1] = indptr[i] + graph.degree(v)
        indices = [0] * indptr[-1]
        cursor = indptr[:-1].copy()
        for i, v in enumerate(order):
            for w in graph.neighbors(v):
                indices[cursor[i]] = index_of[w]
                cursor[i] += 1
        self.indptr: array[int] = array("l", indptr)
        self.indices: array[int] = array("i", indices)
        self.labels: list[Vertex] = order
        self._index_of = index_of

    @classmethod
    def from_csr(
        cls,
        indptr: array[int],
        indices: array[int],
        labels: list[Vertex],
    ) -> CompactAdjacency:
        """Rebuild a snapshot from its CSR parts (the unpickling path).

        The label-to-id map is re-derived rather than serialized: it is the
        largest per-object structure in the snapshot and pure function of
        ``labels``.
        """
        self = cls.__new__(cls)
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self._index_of = {v: i for i, v in enumerate(labels)}
        return self

    def __reduce__(
        self,
    ) -> tuple[object, tuple[array[int], array[int], list[Vertex]]]:
        return _rebuild, (self.indptr, self.indices, self.labels)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def index_of(self, v: Vertex) -> int:
        """Map an original vertex object to its internal id."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, i: int) -> int:
        """Degree of internal vertex ``i`` in the snapshot."""
        return self.indptr[i + 1] - self.indptr[i]

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by internal id."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(self.num_vertices)]

    def neighbor_slice(self, i: int) -> Sequence[int]:
        """Neighbour ids of vertex ``i`` (an array slice; do not mutate)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def iter_neighbors(self, i: int) -> Iterator[int]:
        start, stop = self.indptr[i], self.indptr[i + 1]
        indices = self.indices
        for pos in range(start, stop):
            yield indices[pos]

    # ------------------------------------------------------------------
    def sort_neighbors_by_rank_desc(self, rank: Sequence[int]) -> None:
        """Sort every neighbour slice by descending ``rank`` value.

        Used with core numbers as ranks: afterwards
        :meth:`rank_prefix_length` locates the boundary of ``rank >= k``
        prefixes in O(log deg).  Ties are broken by internal id so the
        layout is deterministic.
        """
        indices = self.indices
        indptr = self.indptr
        n = self.num_vertices
        # Composite integer key: ``j - rank[j]*(n+1)`` orders primarily by
        # descending rank, then ascending id (``j < n+1`` can never flip a
        # rank difference).  One flat list beats a tuple-building lambda —
        # the m log d sort then does int comparisons and key lookups only.
        n1 = n + 1
        sort_key = [j - rank[j] * n1 for j in range(n)]
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            chunk = sorted(indices[start:stop], key=sort_key.__getitem__)
            indices[start:stop] = array("i", chunk)

    def rank_prefix_length(self, i: int, k: int, rank: Sequence[int]) -> int:
        """Length of the prefix of ``i``'s slice with ``rank >= k``.

        Requires a prior :meth:`sort_neighbors_by_rank_desc` with the same
        ``rank`` array.
        """
        start, stop = self.indptr[i], self.indptr[i + 1]
        indices = self.indices
        # Neighbour ranks are non-increasing across the slice, so the first
        # position with rank < k is found by binary search.
        lo, hi = start, stop
        while lo < hi:
            mid = (lo + hi) // 2
            if rank[indices[mid]] >= k:
                lo = mid + 1
            else:
                hi = mid
        return lo - start

    def __repr__(self) -> str:
        return f"CompactAdjacency(n={self.num_vertices}, m={self.num_edges})"


def _rebuild(
    indptr: array[int], indices: array[int], labels: list[Vertex]
) -> CompactAdjacency:
    """Module-level unpickling hook for :meth:`CompactAdjacency.__reduce__`."""
    return CompactAdjacency.from_csr(indptr, indices, labels)
