"""Seeded random-graph generators (from scratch — no networkx).

These generators are the raw material for the synthetic dataset registry in
:mod:`repro.datasets`: the paper's SNAP graphs are heavy-tailed and locally
dense, so the registry mixes power-law configuration models, preferential
attachment, and planted communities.  Every generator takes an explicit
``seed`` and is deterministic for a given (parameters, seed) pair.

All generators return simple undirected :class:`~repro.graph.adjacency.
Graph` objects with integer vertices ``0..n-1``.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "barabasi_albert",
    "powerlaw_degree_sequence",
    "configuration_model",
    "powerlaw_cluster_graph",
    "planted_partition",
    "heterogeneous_planted_partition",
    "watts_strogatz",
    "complete_graph",
    "cycle_graph",
    "star_graph",
]


# ----------------------------------------------------------------------
# deterministic building blocks
# ----------------------------------------------------------------------
def complete_graph(n: int) -> Graph:
    """K_n on vertices ``0..n-1``."""
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def cycle_graph(n: int) -> Graph:
    """C_n on vertices ``0..n-1`` (n >= 3)."""
    if n < 3:
        raise ParameterError(f"cycle needs at least 3 vertices, got {n}")
    return Graph((i, (i + 1) % n) for i in range(n))


def star_graph(n_leaves: int) -> Graph:
    """Star with centre 0 and ``n_leaves`` leaves."""
    if n_leaves < 1:
        raise ParameterError("star needs at least one leaf")
    return Graph((0, i) for i in range(1, n_leaves + 1))


# ----------------------------------------------------------------------
# Erdős–Rényi
# ----------------------------------------------------------------------
def erdos_renyi_gnm(n: int, m: int, seed: int = 0) -> Graph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ParameterError(f"G(n={n}) has at most {max_edges} edges, asked {m}")
    rng = random.Random(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph


def _gnp_pairs(n: int, p: float, rng: random.Random) -> Iterator[tuple[int, int]]:
    """Yield each of the C(n,2) pairs independently with probability ``p``.

    Uses geometric jumps so the cost is proportional to the number of
    edges produced, not to n².
    """
    if p <= 0.0:
        return
    if p >= 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                yield (u, v)
        return
    log_q = math.log1p(-p)
    # Enumerate pairs (u, v), u < v, in row-major order via a single index.
    index = -1
    last = n * (n - 1) // 2
    while True:
        r = rng.random()
        skip = int(math.log(1.0 - r) / log_q) if r > 0.0 else 0
        index += 1 + skip
        if index >= last:
            return
        # Invert the row-major pair index.
        u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * index)) / 2)
        offset = index - (u * (2 * n - u - 1)) // 2
        v = u + 1 + offset
        if v >= n:  # float inversion can land one row short; fix up
            u += 1
            v = u + 1 + (offset - (n - u))
        yield (u, v)


def erdos_renyi_gnp(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) with independent edge probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u, v in _gnp_pairs(n, p, rng):
        graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# preferential attachment
# ----------------------------------------------------------------------
def barabasi_albert(n: int, edges_per_vertex: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment.

    Starts from a star on ``edges_per_vertex + 1`` vertices; each new
    vertex attaches to ``edges_per_vertex`` distinct existing vertices
    chosen proportionally to degree.
    """
    m = edges_per_vertex
    if m < 1:
        raise ParameterError("edges_per_vertex must be >= 1")
    if n < m + 1:
        raise ParameterError(f"need n > edges_per_vertex, got n={n}, m={m}")
    rng = random.Random(seed)
    graph = star_graph(m)
    # One entry per edge endpoint: sampling from it is degree-proportional.
    repeated: list[int] = []
    for u, v in graph.edges():
        repeated.append(u)
        repeated.append(v)
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[rng.randrange(len(repeated))])
        for t in targets:
            graph.add_edge(new, t)
            repeated.append(new)
            repeated.append(t)
    return graph


def powerlaw_cluster_graph(
    n: int, edges_per_vertex: int, triangle_probability: float, seed: int = 0
) -> Graph:
    """Holme–Kim powerlaw graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential attachment
    step, with probability ``triangle_probability`` the next link closes a
    triangle with a neighbour of the previous target.  This produces the
    heavy-tailed *and* locally clustered structure of social graphs, which
    Fig. 7 depends on.
    """
    m = edges_per_vertex
    if m < 1:
        raise ParameterError("edges_per_vertex must be >= 1")
    if n < m + 1:
        raise ParameterError(f"need n > edges_per_vertex, got n={n}, m={m}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ParameterError("triangle_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = star_graph(m)
    repeated: list[int] = []
    for u, v in graph.edges():
        repeated.append(u)
        repeated.append(v)
    for new in range(m + 1, n):
        links = 0
        last_target: int | None = None
        while links < m:
            close_triangle = (
                last_target is not None and rng.random() < triangle_probability
            )
            if close_triangle:
                candidates = [
                    w for w in graph.neighbors(last_target) if w != new
                ]
                target = rng.choice(candidates) if candidates else None
            else:
                target = None
            if target is None:
                target = repeated[rng.randrange(len(repeated))]
                if target == new:
                    continue
            if graph.add_edge(new, target):
                repeated.append(new)
                repeated.append(target)
                links += 1
                last_target = target
    return graph


# ----------------------------------------------------------------------
# configuration model
# ----------------------------------------------------------------------
def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
    seed: int = 0,
) -> list[int]:
    """Sample a graphical power-law degree sequence.

    Degrees are drawn from ``P(d) ∝ d^-exponent`` on
    ``[min_degree, max_degree]`` by inverse-CDF sampling; the sum is made
    even by bumping one entry.
    """
    if min_degree < 1 or max_degree < min_degree:
        raise ParameterError(
            f"need 1 <= min_degree <= max_degree, got [{min_degree}, {max_degree}]"
        )
    if max_degree >= n:
        raise ParameterError("max_degree must be below n for a simple graph")
    rng = random.Random(seed)
    weights = [d ** (-exponent) for d in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    degrees = []
    for _ in range(n):
        r = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        degrees.append(min_degree + lo)
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    return degrees


def configuration_model(degrees: Sequence[int], seed: int = 0) -> Graph:
    """Erased configuration model for a given degree sequence.

    Stubs are shuffled and paired; self loops and parallel edges are
    dropped (the standard "erased" variant), so realized degrees may fall
    slightly below the requested sequence for the largest hubs.
    """
    if sum(degrees) % 2 != 0:
        raise ParameterError("degree sequence must have an even sum")
    rng = random.Random(seed)
    stubs: list[int] = []
    for v, d in enumerate(degrees):
        if d < 0:
            raise ParameterError(f"negative degree {d} for vertex {v}")
        stubs.extend([v] * d)
    rng.shuffle(stubs)
    graph = Graph()
    for v in range(len(degrees)):
        graph.add_vertex(v)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# community / small-world structure
# ----------------------------------------------------------------------
def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Planted-partition stochastic block model.

    ``num_communities`` equal blocks; intra-block pairs connect with
    ``p_in`` and inter-block pairs with ``p_out``.  High ``p_in`` yields
    the dense-community structure of the Facebook/Orkut stand-ins, where
    most vertices keep a large fraction of their neighbours inside any
    reasonable core.
    """
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {p}")
    rng = random.Random(seed)
    n = num_communities * community_size
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    # Intra-community edges.
    for c in range(num_communities):
        base = c * community_size
        for u, v in _gnp_pairs(community_size, p_in, rng):
            graph.add_edge(base + u, base + v)
    # Inter-community edges: sample expected count uniformly over cross pairs.
    cross_pairs = (n * (n - 1)) // 2 - num_communities * (
        community_size * (community_size - 1) // 2
    )
    expected = p_out * cross_pairs
    target = int(expected) + (1 if rng.random() < expected - int(expected) else 0)
    added = 0
    while added < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or u // community_size == v // community_size:
            continue
        if graph.add_edge(u, v):
            added += 1
    return graph


def heterogeneous_planted_partition(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
    activity_spread: float = 0.0,
) -> Graph:
    """Planted partition with *unequal* community sizes.

    With a flat ``p_in``, a member of a size-``s`` block has expected
    internal degree ``p_in (s-1)``, so unequal blocks yield a spread of
    degrees **and core numbers** — the skew that real dense social graphs
    (Facebook circles, Orkut communities) show, and that the maintenance
    algorithms' Theorem 2 skip rule depends on.

    ``activity_spread`` (0..1) additionally varies *within-community*
    degrees: each member gets an activity factor uniform in
    ``[1 - spread, 1 + spread]`` and a pair connects with probability
    ``p_in · a_u · a_v`` (clipped to 1).  Without it, every member of a
    block peels at the same fraction level and the (k,p)-decomposition
    degenerates to one giant level per array — unlike any real graph.
    """
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {p}")
    if not 0.0 <= activity_spread < 1.0:
        raise ParameterError(
            f"activity_spread must be in [0, 1), got {activity_spread}"
        )
    if any(s < 1 for s in sizes):
        raise ParameterError("every community size must be >= 1")
    rng = random.Random(seed)
    n = sum(sizes)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    block_of = [0] * n
    base = 0
    for index, size in enumerate(sizes):
        if activity_spread > 0.0:
            activity = [
                rng.uniform(1.0 - activity_spread, 1.0 + activity_spread)
                for _ in range(size)
            ]
            for u in range(size):
                for v in range(u + 1, size):
                    if rng.random() < min(1.0, p_in * activity[u] * activity[v]):
                        graph.add_edge(base + u, base + v)
        else:
            for u, v in _gnp_pairs(size, p_in, rng):
                graph.add_edge(base + u, base + v)
        for offset in range(size):
            block_of[base + offset] = index
        base += size
    intra_pairs = sum(s * (s - 1) // 2 for s in sizes)
    cross_pairs = n * (n - 1) // 2 - intra_pairs
    expected = p_out * cross_pairs
    target = int(expected) + (1 if rng.random() < expected - int(expected) else 0)
    added = 0
    while added < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or block_of[u] == block_of[v]:
            continue
        if graph.add_edge(u, v):
            added += 1
    return graph


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Watts–Strogatz small-world ring with rewiring probability ``beta``.

    ``k`` (even) neighbours per vertex on the ring before rewiring.
    """
    if k % 2 != 0 or k < 2:
        raise ParameterError(f"k must be a positive even integer, got {k}")
    if n <= k:
        raise ParameterError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= beta <= 1.0:
        raise ParameterError(f"beta must be in [0, 1], got {beta}")
    rng = random.Random(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            graph.add_edge(v, (v + j) % n)
    if beta == 0.0:
        return graph
    for v in range(n):
        for j in range(1, k // 2 + 1):
            w = (v + j) % n
            if rng.random() >= beta or not graph.has_edge(v, w):
                continue
            # Rewire (v, w) to (v, w') for a uniform non-neighbour w'.
            choices = [
                x for x in range(n) if x != v and not graph.has_edge(v, x)
            ]
            if not choices:
                continue
            graph.remove_edge(v, w)
            graph.add_edge(v, rng.choice(choices))
    return graph
