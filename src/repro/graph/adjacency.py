"""Dynamic undirected simple graph backed by adjacency sets.

:class:`Graph` is the mutable graph type used throughout the library.  It
stores one Python set of neighbours per vertex, which makes single-edge
updates (the workload of the KP-Index maintenance algorithms) O(1) and
neighbourhood iteration O(deg).  Vertices may be any hashable object; the
synthetic datasets use integers while the DBLP case study uses author-name
strings.

Batch algorithms (core decomposition, (k,p)-core decomposition) do not run
directly on this structure; they first take a :class:`~repro.graph.compact.
CompactAdjacency` snapshot for speed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

__all__ = ["Graph", "Vertex", "Edge"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph (no self loops, no parallel edges).

    >>> g = Graph([(1, 2), (2, 3)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Edge] | None = None):
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        if edges is not None:
            self.add_edges(edges)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], vertices: Iterable[Vertex] | None = None
    ) -> "Graph":
        """Build a graph from an edge iterable, plus optional isolated vertices.

        Duplicate edges and both orientations of the same edge are merged;
        self loops raise :class:`~repro.errors.SelfLoopError`.
        """
        graph = cls()
        if vertices is not None:
            for v in vertices:
                graph.add_vertex(v)
        graph.add_edges(edges)
        return graph

    def copy(self) -> "Graph":
        """Return an independent deep copy of the adjacency structure."""
        clone = Graph.__new__(Graph)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # vertex operations
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        """Add an isolated vertex; return ``True`` if it was new."""
        if v in self._adj:
            return False
        self._adj[v] = set()
        return True

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges.

        Raises :class:`~repro.errors.VertexNotFoundError` if absent.
        """
        try:
            neighbors = self._adj.pop(v)
        except KeyError:
            raise VertexNotFoundError(v) from None
        for w in neighbors:
            self._adj[w].discard(v)
        self._num_edges -= len(neighbors)

    def has_vertex(self, v: Vertex) -> bool:
        """Return whether ``v`` is a vertex of the graph."""
        return v in self._adj

    __contains__ = has_vertex

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert the undirected edge ``(u, v)``; return ``True`` if new.

        Endpoints are created on demand.  Self loops raise
        :class:`~repro.errors.SelfLoopError`.
        """
        if u == v:
            raise SelfLoopError(u)
        adj = self._adj
        u_nbrs = adj.get(u)
        if u_nbrs is None:
            u_nbrs = adj[u] = set()
        v_nbrs = adj.get(v)
        if v_nbrs is None:
            v_nbrs = adj[v] = set()
        if v in u_nbrs:
            return False
        u_nbrs.add(v)
        v_nbrs.add(u)
        self._num_edges += 1
        return True

    def add_edge_strict(self, u: Vertex, v: Vertex) -> None:
        """Insert ``(u, v)``, raising :class:`EdgeExistsError` on duplicates."""
        if not self.add_edge(u, v):
            raise EdgeExistsError(u, v)

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert many edges; return the number that were actually new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Endpoints stay in the graph even if they become isolated.  Raises
        :class:`~repro.errors.EdgeNotFoundError` if the edge is absent.
        """
        adj = self._adj
        if u not in adj or v not in adj[u]:
            raise EdgeNotFoundError(u, v)
        adj[u].discard(v)
        adj[v].discard(u)
        self._num_edges -= 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``(u, v)`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, the paper's ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, the paper's ``m``."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the vertices in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Yield every undirected edge exactly once.

        The orientation of each yielded pair is unspecified but
        deterministic for a given construction history.
        """
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """Return the neighbour set of ``v``.

        The returned set is the graph's internal storage for speed; callers
        must treat it as read-only.  Raises
        :class:`~repro.errors.VertexNotFoundError` if ``v`` is absent.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: Vertex) -> int:
        """Return ``deg(v, G)``, raising if ``v`` is absent."""
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degrees(self) -> dict[Vertex, int]:
        """Return a fresh ``{vertex: degree}`` mapping."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Unknown vertices raise :class:`~repro.errors.VertexNotFoundError`;
        that surfaces typos instead of silently shrinking the result.
        """
        keep = set()
        for v in vertices:
            if v not in self._adj:
                raise VertexNotFoundError(v)
            keep.add(v)
        sub = Graph()
        for v in keep:
            sub.add_vertex(v)
            for w in self._adj[v]:
                if w in keep:
                    sub.add_edge(v, w)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Return the subgraph made of ``edges`` (which must exist here)."""
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            sub.add_edge(u, v)
        return sub

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
