"""Synthetic dataset substrate.

* :mod:`repro.datasets.registry` — the eight Table II stand-ins,
* :mod:`repro.datasets.dblp` — publication-corpus generator behind the
  DBLP-1/3/10 graphs of the Fig. 9 case study,
* :mod:`repro.datasets.checkins` — Gowalla-style engagement signal for the
  Fig. 10 case study.
"""

from repro.datasets.checkins import CheckinModel, simulate_checkins
from repro.datasets.dblp import (
    CoauthorCorpus,
    Publication,
    default_corpus,
    generate_corpus,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load,
    load_all,
    spec,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load",
    "load_all",
    "spec",
    "CoauthorCorpus",
    "Publication",
    "generate_corpus",
    "default_corpus",
    "CheckinModel",
    "simulate_checkins",
]
