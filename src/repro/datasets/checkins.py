"""Synthetic Gowalla-style check-in activity (Fig. 10 substrate).

The paper's Gowalla case study measures user engagement by check-in counts
and shows that (a) average check-ins grow with core number, (b) *within* a
core level they grow with the p-number, and (c) onion layers cannot
separate users of the same core number by activity.

The real check-in log is unavailable offline, so we build the minimal
generative world in which those claims are falsifiable: each user's latent
engagement grows with their core number and, *relative to peers at the same
core number*, with their p-number standing among those peers.  The
rank-based form matches the paper's empirical statement ("the users who are
more active basically have larger p-numbers" at a given k) and is scale-
free: absolute p-number ranges differ wildly between shells, but the
within-shell ordering is exactly what Fig. 10(b) plots.

The analysis code (:mod:`repro.analysis.engagement`) never sees the latent
variables — it must *recover* the structure from the counts.  Noise is
strong enough that per-user counts overlap heavily across adjacent levels;
only aggregates separate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from repro.graph.adjacency import Graph, Vertex
from repro.core.decomposition import KPDecomposition, kp_core_decomposition

__all__ = ["CheckinModel", "simulate_checkins"]


@dataclass(frozen=True)
class CheckinModel:
    """Parameters of the latent engagement model.

    ``rate = base * (1 + core_gain * cn(v))
            * (floor + p_gain * rank(v))``

    where ``rank(v)`` is v's mid-rank percentile of ``pn(v, cn(v))`` among
    the vertices sharing its core number, and the final count multiplies in
    log-normal noise ``exp(N(0, sigma))``.
    """

    base: float = 5.0
    core_gain: float = 0.5
    p_gain: float = 1.5
    floor: float = 0.25
    sigma: float = 0.5


def _shell_percentiles(
    decomposition: KPDecomposition,
) -> dict[Vertex, float]:
    """Mid-rank percentile of each vertex's p-number within its shell.

    Vertices sharing a p-number level share the percentile (mid-rank), so
    the statistic is well-defined on the heavily tied distributions the
    decomposition produces.
    """
    shells: dict[int, list[Vertex]] = {}
    for v, cn in decomposition.core_numbers.items():
        if cn >= 1:
            shells.setdefault(cn, []).append(v)
    percentile: dict[Vertex, float] = {}
    for cn, members in shells.items():
        pn = decomposition.arrays[cn].pn_map()
        values = sorted(pn[v] for v in members)
        total = len(values)
        # mid-rank of each distinct value
        first_index: dict[float, int] = {}
        count: dict[float, int] = {}
        for i, value in enumerate(values):
            first_index.setdefault(value, i)
            count[value] = count.get(value, 0) + 1
        for v in members:
            value = pn[v]
            mid = first_index[value] + (count[value] - 1) / 2.0
            percentile[v] = (mid + 0.5) / total
    return percentile


def simulate_checkins(
    graph: Graph,
    seed: int = 909,
    model: CheckinModel = CheckinModel(),
    decomposition: KPDecomposition | None = None,
) -> dict[Vertex, int]:
    """Per-user check-in counts for every vertex of ``graph``.

    Deterministic for a given ``(graph, seed, model)``.  Vertices outside
    the 1-core (isolated users) get low baseline activity.
    """
    decomposition = decomposition or kp_core_decomposition(graph)
    rank = _shell_percentiles(decomposition)
    rng = random.Random(seed)
    counts: dict[Vertex, int] = {}
    for v in graph.vertices():
        cn = decomposition.core_numbers.get(v, 0)
        standing = rank.get(v, 0.0)
        rate = (
            model.base
            * (1.0 + model.core_gain * cn)
            * (model.floor + model.p_gain * standing)
        )
        noisy = rate * math.exp(rng.gauss(0.0, model.sigma))
        counts[v] = max(0, round(noisy))
    return counts
