"""Synthetic DBLP-style co-authorship corpus (Fig. 9 substrate).

The paper extracts DBLP from the raw publication XML: one vertex per
author, one edge per pair of authors with at least ``t`` co-authored papers
(DBLP-1/DBLP-3/DBLP-10 for ``t`` = 1, 3, 10).  We reproduce the *pipeline*:
a generative corpus of publications → a weighted co-author multigraph →
thresholded simple graphs.

The generator models three regularities of real bibliographies that the
case study depends on:

* **heavy-tailed productivity** — a few authors write many papers,
* **fields** — authors cluster into research communities and mostly
  publish within them (so thresholded graphs have dense groups),
* **stable collaborations** — repeat co-authorship is common, so higher
  thresholds leave meaningful subgraphs instead of dust.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["Publication", "CoauthorCorpus", "generate_corpus", "default_corpus"]


@dataclass(frozen=True)
class Publication:
    """One paper: the tuple of its authors (vertex labels)."""

    authors: tuple[str, ...]


class CoauthorCorpus:
    """A corpus of publications with thresholded co-author graph views."""

    def __init__(self, publications: Sequence[Publication]):
        self.publications = list(publications)
        self._weights: dict[tuple[str, str], int] = {}
        for pub in self.publications:
            authors = sorted(set(pub.authors))
            for i, a in enumerate(authors):
                for b in authors[i + 1 :]:
                    key = (a, b)
                    self._weights[key] = self._weights.get(key, 0) + 1

    @property
    def num_publications(self) -> int:
        return len(self.publications)

    def coauthor_weight(self, a: str, b: str) -> int:
        """Number of papers co-authored by ``a`` and ``b``."""
        key = (a, b) if a <= b else (b, a)
        return self._weights.get(key, 0)

    def graph(self, min_papers: int = 1) -> Graph:
        """The DBLP-``min_papers`` graph: edges with weight >= threshold.

        Isolated authors are dropped (they are not in any core anyway).
        """
        if min_papers < 1:
            raise ParameterError(
                f"min_papers must be >= 1, got {min_papers}"
            )
        return Graph(
            pair for pair, w in self._weights.items() if w >= min_papers
        )

    def thresholds_with_content(self, max_threshold: int = 20) -> list[int]:
        """Thresholds ``t`` for which DBLP-``t`` still has edges."""
        if not self._weights:
            return []
        top = min(max(self._weights.values()), max_threshold)
        return [t for t in range(1, top + 1)]


def generate_corpus(
    num_authors: int = 4600,
    num_papers: int = 15000,
    num_fields: int = 20,
    seed: int = 606,
    productivity_exponent: float = 1.9,
    cross_field_probability: float = 0.08,
    repeat_team_probability: float = 0.45,
    newcomer_probability: float = 0.4,
    num_labs: int = 7,
    lab_size: int = 26,
    papers_per_lab: int = 6,
) -> CoauthorCorpus:
    """Generate a deterministic synthetic publication corpus.

    Parameters mirror the regularities described in the module docstring;
    ``repeat_team_probability`` is the chance a paper reuses (a subset of)
    an earlier team, which is what produces heavyweight co-author edges for
    the DBLP-3 / DBLP-10 thresholds.  ``newcomer_probability`` is the
    chance a paper is followed by a senior-junior "supervision" paper whose
    junior never publishes again: seniors thereby accumulate many one-off
    collaborators *outside* any core, which is exactly the low-fraction
    behaviour the Fig. 9 case study shows for well-known authors.

    ``num_labs``/``lab_size``/``papers_per_lab`` model large lab or
    consortium collaborations: a handful of mid-rank author groups that
    repeatedly publish many-author papers together.  Their members gain
    high *internal* co-author degree with few outside ties — they are the
    (10, 0.6)-core survivors, reproducing the non-empty but much smaller
    (k,p)-core the paper reports for DBLP in Fig. 6.
    """
    if num_authors < 2 or num_papers < 1 or num_fields < 1:
        raise ParameterError("corpus needs >= 2 authors, >= 1 paper, >= 1 field")
    rng = random.Random(seed)
    authors = [f"A{i:05d}" for i in range(num_authors)]

    # Field assignment: round-robin keeps fields equal-sized; productivity
    # weights are power-law within each field.
    fields: list[list[str]] = [[] for _ in range(num_fields)]
    for i, author in enumerate(authors):
        fields[i % num_fields].append(author)
    weight_of = {
        author: (rank + 1) ** (-productivity_exponent)
        for f in fields
        for rank, author in enumerate(f)
    }
    # "Seniors" are the most productive slice of each field; they are the
    # authors who supervise one-off junior collaborators.
    senior_list = [
        author
        for f in fields
        for rank, author in enumerate(f)
        if rank < max(1, round(0.12 * len(f)))
    ]
    senior_weights = [weight_of[a] for a in senior_list]

    def pick_team(pool: Sequence[str], size: int) -> list[str]:
        team: set[str] = set()
        weights = [weight_of[a] for a in pool]
        while len(team) < size:
            team.add(rng.choices(pool, weights=weights)[0])
        return sorted(team)

    publications: list[Publication] = []
    previous_teams: list[list[str]] = []
    junior_counter = [0]
    for _ in range(num_papers):
        if previous_teams and rng.random() < repeat_team_probability:
            base = previous_teams[rng.randrange(len(previous_teams))]
            # Reuse the team, occasionally dropping or adding one member.
            team = list(base)
            if len(team) > 2 and rng.random() < 0.3:
                team.pop(rng.randrange(len(team)))
            if rng.random() < 0.3:
                field = fields[rng.randrange(num_fields)]
                team.extend(pick_team(field, 1))
            team = sorted(set(team))
        else:
            field = fields[rng.randrange(num_fields)]
            # Team sizes 1-6, mode 2-3 (typical CS venues).
            size = rng.choices((1, 2, 3, 4, 5, 6), weights=(8, 30, 30, 18, 9, 5))[0]
            team = pick_team(field, min(size, len(field)))
            if rng.random() < cross_field_probability:
                other = fields[rng.randrange(num_fields)]
                team = sorted(set(team) | set(pick_team(other, 1)))
        if len(team) >= 2:
            previous_teams.append(team)  # juniors below stay one-off
        publications.append(Publication(tuple(team)))
        if rng.random() < newcomer_probability:
            # A supervision paper: one senior, one junior who never
            # publishes again.  Seniors thereby accumulate many one-off
            # collaborators outside every core, pulling their fraction
            # values down (the Fig. 9 phenomenon), while tight mid-tier
            # teams keep high fractions and survive the (k,p)-core.
            senior = rng.choices(senior_list, weights=senior_weights)[0]
            junior = f"J{junior_counter[0]:05d}"
            junior_counter[0] += 1
            publications.append(Publication((senior, junior)))

    # Consortium papers: each lab is a block of mid-rank authors from one
    # field publishing several many-author papers together.
    for lab_index in range(num_labs):
        field = fields[lab_index % num_fields]
        mid_start = len(field) // 3
        lab = field[mid_start : mid_start + lab_size]
        for _ in range(papers_per_lab):
            low = max(2, (45 * lab_size) // 100)
            high = max(low, (65 * lab_size) // 100)
            take = rng.randint(low, high)
            publications.append(Publication(tuple(rng.sample(lab, take))))
    return CoauthorCorpus(publications)


@lru_cache(maxsize=1)
def default_corpus() -> CoauthorCorpus:
    """The corpus behind the registry's ``dblp`` dataset (cached)."""
    return generate_corpus()
