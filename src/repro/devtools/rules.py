"""The repo-specific AST lint rules (KP001-KP007).

Every rule is a small class with a stable ``code`` and a ``check`` method
yielding :class:`~repro.devtools.violations.Violation` objects.  The rules
encode conventions the library's correctness rests on but Python cannot:

* exact-double fraction semantics live in one module
  (:mod:`repro.core.pvalue`) — KP001/KP002,
* public entry points validate their ``p``/``k`` parameters — KP003,
* :class:`~repro.graph.compact.CompactAdjacency` snapshots are immutable
  outside their own module — KP004,
* ``__all__`` matches reality — KP005,
* the O(m) peeling loops stay allocation-free per iteration — KP006,
* metric recording in the peeling loops stays off the per-iteration
  path — KP007.

Rules are heuristic by design (a linter cannot do whole-program dataflow);
false positives are silenced with ``# noqa: KPxxx`` plus a short
justification, which doubles as documentation of the exception.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from repro.devtools.violations import Violation

__all__ = [
    "LintRule",
    "RawFractionRule",
    "FloatEqualityRule",
    "ParameterValidationRule",
    "SnapshotMutationRule",
    "DunderAllDriftRule",
    "HotLoopAllocationRule",
    "UnguardedMetricRule",
    "ALL_RULES",
    "default_rules",
]

#: The module allowed to do raw fraction arithmetic / float equality.
_PVALUE_SUFFIXES = ("core/pvalue.py",)

#: Modules whose ``while`` peel loops must not allocate per iteration.
_HOT_LOOP_SUFFIXES = (
    "kcore/compute.py",
    "core/kpcore.py",
    "core/decomposition.py",
    "core/peel_engines.py",
    "core/peel_flat.py",
)

_DEGREE_NAME = re.compile(r"(?:^|_)deg(?:ree)?s?(?:$|_)|^denominator$|^d[uv]$")
_P_NAME = re.compile(r"^(?:p|pn|p\d+|p_[a-z0-9_]+|pn_[a-z0-9_]+|frac|fraction|key|level_values)$")


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def _is_pvalue_module(path: str) -> bool:
    norm = _normalize(path)
    return norm.endswith(_PVALUE_SUFFIXES) or norm.rsplit("/", 1)[-1] == "pvalue.py"


def _base_name(node: ast.expr) -> str | None:
    """The identifier a value expression hangs off: ``deg_s[v]`` -> ``deg_s``,
    ``graph.degree(v)`` -> ``degree``, ``self.p_numbers`` -> ``p_numbers``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return _base_name(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _base_name(node.func)
    return None


def _is_degree_like(node: ast.expr) -> bool:
    name = _base_name(node)
    return name is not None and bool(_DEGREE_NAME.search(name))


def _is_p_like(node: ast.expr) -> bool:
    name = _base_name(node)
    return name is not None and bool(_P_NAME.match(name))


def _module_all(tree: ast.Module) -> list[str] | None:
    """The module's literal ``__all__`` list, or ``None`` if absent/dynamic."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    if isinstance(value, (list, tuple)) and all(
                        isinstance(item, str) for item in value
                    ):
                        return list(value)
                    return None
    return None


class LintRule:
    """Base class: subclasses set ``code`` and implement :meth:`check`."""

    code = "KP000"

    def check(
        self, tree: ast.Module, path: str, source_lines: Sequence[str]
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def _violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class RawFractionRule(LintRule):
    """KP001 — raw fraction construction on degree-like values.

    Flags ``a / b`` where either operand looks degree-like (``deg``,
    ``degree``, ``deg_s[v]``, ``graph.degree(v)``, ``denominator``, ``du``,
    ``dv``) and ``ceil(p * d)``-shaped calls, anywhere outside
    ``core/pvalue.py``.  Such values must be produced by
    :func:`repro.core.pvalue.fraction_value` /
    :func:`~repro.core.pvalue.fraction_threshold` so every fraction in the
    process is the same correctly-rounded double.
    """

    code = "KP001"

    def check(self, tree, path, source_lines):
        if _is_pvalue_module(path):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if _is_degree_like(node.left) or _is_degree_like(node.right):
                    yield self._violation(
                        path,
                        node,
                        "raw division on a degree-like value; use "
                        "fraction_value(numerator, denominator) from "
                        "repro.core.pvalue",
                    )
            elif isinstance(node, ast.Call):
                func_name = _base_name(node.func)
                if func_name != "ceil" or not node.args:
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mult):
                    operands = (arg.left, arg.right)
                    if any(
                        _is_degree_like(op) or _is_p_like(op) for op in operands
                    ):
                        yield self._violation(
                            path,
                            node,
                            "ceil(p * degree) does not match the library's "
                            "float fraction semantics; use "
                            "fraction_threshold(p, degree) from "
                            "repro.core.pvalue",
                        )


class FloatEqualityRule(LintRule):
    """KP002 — ``==``/``!=`` on p-value-like floats outside ``core/pvalue.py``.

    Exact-double equality on fractions is only sound because of the
    invariants documented in :mod:`repro.core.pvalue`; code that relies on
    it elsewhere must carry an explicit ``# noqa: KP002`` justification.
    """

    code = "KP002"

    def check(self, tree, path, source_lines):
        if _is_pvalue_module(path):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_p_like(left) or _is_p_like(right):
                    yield self._violation(
                        path,
                        node,
                        "exact float equality on a p-value/fraction; the "
                        "exact-double argument lives in repro.core.pvalue — "
                        "justify with a noqa or restructure",
                    )


class ParameterValidationRule(LintRule):
    """KP003 — exported functions must validate or forward ``p``/``k``.

    A module-level function listed in ``__all__`` that takes a parameter
    named exactly ``p`` or ``k`` must either call a known validator
    (``check_p``, ``_check_k``, ``fraction_threshold``,
    ``combined_thresholds``), raise ``ParameterError`` itself, or forward
    the parameter into some call (delegating validation downstream).
    """

    code = "KP003"

    _VALIDATORS = frozenset(
        {"check_p", "_check_k", "fraction_threshold", "combined_thresholds"}
    )

    def check(self, tree, path, source_lines):
        exported = _module_all(tree)
        if not exported:
            return
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in exported:
                continue
            params = [a.arg for a in node.args.args + node.args.kwonlyargs]
            watched = [name for name in params if name in ("p", "k")]
            if not watched:
                continue
            if not self._validates_or_forwards(node, watched):
                yield self._violation(
                    path,
                    node,
                    f"public function {node.name}() takes "
                    f"{'/'.join(watched)} but never validates or forwards "
                    "it; call check_p()/raise ParameterError or delegate",
                )

    def _validates_or_forwards(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, watched: list[str]
    ) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                callee = _base_name(node.func)
                if callee in self._VALIDATORS:
                    return True
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    if isinstance(arg, ast.Name) and arg.id in watched:
                        return True
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = _base_name(exc.func) if isinstance(exc, ast.Call) else _base_name(exc)
                if name == "ParameterError":
                    return True
        return False


class SnapshotMutationRule(LintRule):
    """KP004 — ``CompactAdjacency`` snapshots are frozen outside compact.py.

    Flags assignments to (or mutating method calls on) the ``indptr``,
    ``indices`` and ``labels`` attributes anywhere outside
    ``graph/compact.py``.  Snapshots are shared between algorithms; the
    sorted-prefix invariants only survive if all mutation goes through the
    snapshot's own methods.
    """

    code = "KP004"

    _ATTRS = frozenset({"indptr", "indices", "labels"})
    _MUTATORS = frozenset(
        {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
    )

    def check(self, tree, path, source_lines):
        norm = _normalize(path)
        if norm.endswith("graph/compact.py") or norm.rsplit("/", 1)[-1] == "compact.py":
            return
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in self._ATTRS
                ):
                    yield self._violation(
                        path,
                        node,
                        f"mutating call on snapshot attribute "
                        f".{func.value.attr}; CompactAdjacency is only "
                        "mutated inside graph/compact.py",
                    )
                continue
            for target in targets:
                attr = self._attribute_target(target)
                if attr is not None:
                    yield self._violation(
                        path,
                        node,
                        f"assignment to snapshot attribute .{attr}; "
                        "CompactAdjacency is only mutated inside "
                        "graph/compact.py",
                    )

    def _attribute_target(self, target: ast.expr) -> str | None:
        node = target
        while isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in self._ATTRS:
            return node.attr
        return None


class DunderAllDriftRule(LintRule):
    """KP005 — ``__all__`` must match the module's public surface.

    For modules declaring a literal ``__all__``: every exported name must
    be defined at module level, and every module-level public ``def`` /
    ``class`` must be exported.  (Assignments and imports may stay
    unexported — they are often conveniences, not API.)
    """

    code = "KP005"

    def check(self, tree, path, source_lines):
        exported = _module_all(tree)
        if exported is None:
            return
        defined, public_defs = self._toplevel_names(tree)
        if "*" in defined:
            return  # star import: resolution is beyond a lint pass
        for name in exported:
            if name not in defined:
                yield self._violation(
                    path,
                    tree.body[0] if tree.body else tree,
                    f"__all__ exports {name!r} but the module never "
                    "defines it",
                )
        for name, node in public_defs.items():
            if name not in exported:
                yield self._violation(
                    path,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()}"
                    f" {name!r} is not listed in __all__",
                )

    def _toplevel_names(
        self, tree: ast.Module
    ) -> tuple[set[str], dict[str, ast.AST]]:
        defined: set[str] = set()
        public_defs: dict[str, ast.AST] = {}

        def visit_block(body: Sequence[ast.stmt]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defined.add(node.name)
                    if not node.name.startswith("_"):
                        public_defs[node.name] = node
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        defined.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                defined.add(leaf.id)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(node.target, ast.Name):
                        defined.add(node.target.id)
                elif isinstance(node, ast.If):
                    visit_block(node.body)
                    visit_block(node.orelse)
                elif isinstance(node, ast.Try):
                    visit_block(node.body)
                    for handler in node.handlers:
                        visit_block(handler.body)
                    visit_block(node.orelse)
                    visit_block(node.finalbody)

        visit_block(tree.body)
        return defined, public_defs


class HotLoopAllocationRule(LintRule):
    """KP006 — no per-iteration container construction in the peel loops.

    Inside the ``while`` loops of the three O(m) peeling modules, building
    a ``set``/``dict``/``list`` (display, comprehension, or constructor
    call, plus ``sorted``) per iteration silently turns the linear scan
    into a quadratic one.  Hoist the allocation out of the loop.
    """

    code = "KP006"

    _BUILDERS = frozenset({"set", "dict", "list", "frozenset", "sorted"})

    def check(self, tree, path, source_lines):
        norm = _normalize(path)
        if not norm.endswith(_HOT_LOOP_SUFFIXES):
            return
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(tree):
            if not isinstance(loop, ast.While):
                continue
            for stmt in loop.body:
                for node in ast.walk(stmt):
                    flagged = None
                    if isinstance(node, (ast.List, ast.Set, ast.Dict)):
                        flagged = type(node).__name__.lower() + " display"
                    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                        flagged = type(node).__name__
                    elif isinstance(node, ast.Call):
                        callee = node.func
                        if (
                            isinstance(callee, ast.Name)
                            and callee.id in self._BUILDERS
                        ):
                            flagged = f"{callee.id}() call"
                    if flagged is None:
                        continue
                    location = (node.lineno, node.col_offset)
                    if location in seen:
                        continue
                    seen.add(location)
                    yield self._violation(
                        path,
                        node,
                        f"{flagged} inside a peeling while-loop; hoist the "
                        "allocation out of the O(m) hot loop",
                    )


class UnguardedMetricRule(LintRule):
    """KP007 — metric recording in the peel loops must stay off the
    per-iteration path.

    Inside ``while``/``for`` loops of the three O(m) peeling modules:

    * calls to ``get_collector()`` / ``maybe_span()`` / ``get_tracer()``
      / ``maybe_trace_span()`` are flagged outright — the
      collector/tracer lookup belongs before the loop, the span around
      it;
    * metric and trace calls (``obs.inc(...)``,
      ``collector.observe(...)``, ``tracer.record(...)``,
      ``tracer.trace(...)``, ``tracer.event(...)``, ...) on a
      collector- or tracer-like receiver are flagged unless an
      enclosing ``if obs is not None:`` (or bare ``if obs:``) guard
      inside the loop makes the disabled cost a single boolean test.

    The supported pattern is loop-local plain-int accumulators flushed
    to the collector once, after the loop (see
    ``core/peel_engines.py::peel_fixed_k_bucket``); per-request trace
    events follow the same discipline (one guarded ``record`` per call,
    after the loop — see the ``trace.peel.fixed_k`` hooks there).
    """

    code = "KP007"

    _METRIC_METHODS = frozenset(
        {"inc", "add", "observe", "span", "record", "trace", "event"}
    )
    _HOISTABLE = frozenset(
        {"get_collector", "maybe_span", "get_tracer", "maybe_trace_span"}
    )
    _COLLECTOR_NAME = re.compile(
        r"^(?:obs|collector|metrics|instr(?:umentation)?|tracer|trace)$"
    )

    def check(self, tree, path, source_lines):
        norm = _normalize(path)
        if not norm.endswith(_HOT_LOOP_SUFFIXES):
            return
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            for stmt in [*loop.body, *loop.orelse]:
                yield from self._scan(stmt, False, path, seen)

    def _scan(
        self,
        stmt: ast.stmt,
        guarded: bool,
        path: str,
        seen: set[tuple[int, int]],
    ) -> Iterator[Violation]:
        if isinstance(stmt, ast.If):
            yield from self._flag_calls(stmt.test, guarded, path, seen)
            body_guarded = guarded or self._is_collector_guard(stmt.test)
            for child in stmt.body:
                yield from self._scan(child, body_guarded, path, seen)
            for child in stmt.orelse:
                yield from self._scan(child, guarded, path, seen)
        elif isinstance(stmt, (ast.While, ast.For)):
            header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            yield from self._flag_calls(header, guarded, path, seen)
            for child in [*stmt.body, *stmt.orelse]:
                yield from self._scan(child, guarded, path, seen)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                yield from self._flag_calls(item.context_expr, guarded, path, seen)
            for child in stmt.body:
                yield from self._scan(child, guarded, path, seen)
        elif isinstance(stmt, ast.Try):
            for child in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                yield from self._scan(child, guarded, path, seen)
            for handler in stmt.handlers:
                for child in handler.body:
                    yield from self._scan(child, guarded, path, seen)
        else:
            yield from self._flag_calls(stmt, guarded, path, seen)

    def _flag_calls(
        self,
        node: ast.AST,
        guarded: bool,
        path: str,
        seen: set[tuple[int, int]],
    ) -> Iterator[Violation]:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            location = (call.lineno, call.col_offset)
            if location in seen:
                continue
            func = call.func
            if isinstance(func, ast.Name) and func.id in self._HOISTABLE:
                seen.add(location)
                yield self._violation(
                    path,
                    call,
                    f"{func.id}() inside a peeling loop; hoist the "
                    "collector lookup/span out of the O(m) hot loop",
                )
            elif (
                not guarded
                and isinstance(func, ast.Attribute)
                and func.attr in self._METRIC_METHODS
                and isinstance(func.value, ast.Name)
                and self._COLLECTOR_NAME.match(func.value.id)
            ):
                seen.add(location)
                yield self._violation(
                    path,
                    call,
                    f"unguarded {func.value.id}.{func.attr}() inside a "
                    "peeling loop; accumulate in a local int and flush "
                    "after the loop, or guard with `if "
                    f"{func.value.id} is not None:`",
                )

    def _is_collector_guard(self, test: ast.expr) -> bool:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(self._is_collector_guard(v) for v in test.values)
        if isinstance(test, ast.Name):
            return bool(self._COLLECTOR_NAME.match(test.id))
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return bool(self._COLLECTOR_NAME.match(test.left.id))
        return False


ALL_RULES: tuple[type[LintRule], ...] = (
    RawFractionRule,
    FloatEqualityRule,
    ParameterValidationRule,
    SnapshotMutationRule,
    DunderAllDriftRule,
    HotLoopAllocationRule,
    UnguardedMetricRule,
)


def default_rules() -> list[LintRule]:
    """Fresh instances of every shipped rule, in code order."""
    return [rule() for rule in ALL_RULES]
