"""Self-check battery: run every runtime contract against one graph.

Wired as ``python -m repro selfcheck [FILE]``.  With a SNAP edge-list
``FILE`` the battery runs on that graph; without one it runs on a small
deterministic Erdős–Rényi graph.  Contracts are force-enabled for the
duration of the run regardless of ``REPRO_VERIFY``.

Checks, in order:

1. Algorithm 2 decomposition: arrays sorted, k-cores nested, p-numbers
   monotone non-increasing in ``k``.
2. kpCore over a (k, p) grid: Definition 3 postcondition, and agreement
   between the KP-Index answer and from-scratch computation.
3. KP-Index structural validation (nesting, Lemma 1 space bound).
4. Bounds sandwich ``p_ <= pn <= min(p̂, p̃)`` for every vertex of every
   array (vertices are sampled on large graphs).
5. Maintenance round-trip: delete and re-insert a few edges through the
   maintainer, then compare against a from-scratch rebuild.
"""

from __future__ import annotations

import sys
from typing import IO, Callable

from repro.errors import ContractViolationError, ReproError
from repro.devtools import contracts

__all__ = ["DEFAULT_GRID", "run", "selfcheck_graph"]

#: (k, p) pairs exercised by the kpCore/query cross-check.
DEFAULT_GRID: tuple[tuple[int, float], ...] = (
    (1, 0.0),
    (1, 0.5),
    (2, 0.25),
    (2, 0.5),
    (2, 1.0),
    (3, 1 / 3),
    (3, 0.6),
    (4, 0.5),
)

#: Per-array cap on vertices given the full bounds-sandwich treatment.
_SANDWICH_SAMPLE = 200

#: Number of edges exercised by the maintenance round-trip.
_ROUNDTRIP_EDGES = 5


def _default_graph():
    from repro.graph.generators import erdos_renyi_gnp

    return erdos_renyi_gnp(60, 0.12, seed=7)


def selfcheck_graph(graph, out: IO[str] = sys.stdout) -> int:
    """Run the full contract battery on ``graph``; returns an exit code."""
    from repro.core.decomposition import kp_core_decomposition
    from repro.core.index import KPIndex
    from repro.core.kpcore import kp_core_vertices
    from repro.core.maintenance import KPIndexMaintainer

    previous = contracts.set_contracts_active(True)
    failures = 0

    def step(label: str, action: Callable[[], None]) -> None:
        nonlocal failures
        try:
            action()
        except ContractViolationError as error:
            failures += 1
            out.write(f"FAIL {label}: {error}\n")
        else:
            out.write(f"ok   {label}\n")

    try:
        out.write(
            f"selfcheck: n={graph.num_vertices} m={graph.num_edges}\n"
        )
        decomposition = kp_core_decomposition(graph)
        step(
            "decomposition monotone/sorted/nested",
            lambda: contracts.check_decomposition(decomposition),
        )

        index = KPIndex.from_decomposition(decomposition, graph.num_edges)

        def grid_check() -> None:
            for k, p in DEFAULT_GRID:
                kp_core_vertices(graph, k, p)  # verify_kp_core contract fires
                contracts.check_query_result(graph, k, p, index.query(k, p))

        step(f"kpCore + index query grid ({len(DEFAULT_GRID)} points)", grid_check)
        step("index structural validation", index.validate)

        def sandwich_check() -> None:
            for k, array in sorted(index.arrays().items()):
                if k < 2 or not len(array):
                    continue
                vertices = array.vertices[:_SANDWICH_SAMPLE]
                contracts.check_bounds_sandwich(
                    graph,
                    array,
                    vertices,
                    check_lower=graph.num_edges
                    <= contracts.FULL_CHECK_EDGE_LIMIT,
                )

        step("bounds sandwich p_ <= pn <= min(p^, p~)", sandwich_check)

        def roundtrip_check() -> None:
            working = graph.copy()
            maintainer = KPIndexMaintainer(working, strict=True)
            edges = []
            for edge in working.edges():
                edges.append(edge)
                if len(edges) >= _ROUNDTRIP_EDGES:
                    break
            for u, v in edges:
                maintainer.delete_edge(u, v)
            for u, v in edges:
                maintainer.insert_edge(u, v)
            contracts.check_index_against_scratch(working, maintainer.index)

        step(
            f"maintenance round-trip ({_ROUNDTRIP_EDGES} edges)",
            roundtrip_check,
        )
    finally:
        contracts.set_contracts_active(previous)

    if failures:
        out.write(f"selfcheck: {failures} contract(s) FAILED\n")
        return 1
    out.write("selfcheck: all contracts hold\n")
    return 0


def run(path: str | None = None, out: IO[str] = sys.stdout) -> int:
    """CLI entry: self-check the edge list at ``path`` (or a builtin graph)."""
    if path is None:
        graph = _default_graph()
    else:
        from repro.cli import _read_graph

        try:
            graph = _read_graph(path)
        except (ReproError, FileNotFoundError) as error:
            out.write(f"error: {error}\n")
            return 2
    return selfcheck_graph(graph, out=out)
