"""Lock-context propagation: which lock scopes dominate each statement.

Two layers:

* **Lexical** — a walk over each function body tracking the stack of
  ``with`` statements that take a lock: ``with x.read_locked():`` opens a
  ``"read"`` scope, ``with x.write_locked():`` a ``"write"`` scope, and a
  bare ``with self._mutex:`` (any lock-ish name) an ``"exclusive"``
  scope.  Every node inside gets the set of open scopes plus the
  identity of the innermost lock ``with`` (so KP008 can check that a
  version read and the cache fill it guards share *one* scope).
* **Interprocedural** — the *entry context* of a function: the locks
  that are held on **every** analyzed call path reaching it, computed as
  a greatest fixpoint of intersection over call sites
  (``entry(f) = ∩ over sites s of (locks(s) ∪ entry(caller(s)))``).
  Functions with no analyzed callers are entry points and start from the
  empty context; this keeps the propagation under-approximate — a
  helper that is *sometimes* called unlocked is treated as unlocked.

Nested ``def``/``lambda`` bodies deliberately do not inherit the lexical
context of their definition site: they run later, when the lock may no
longer be held.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.devtools.analysis.callgraph import Program, base_name

__all__ = [
    "LOCK_READ",
    "LOCK_WRITE",
    "LOCK_EXCLUSIVE",
    "SiteContext",
    "ContextMap",
    "compute_contexts",
]

LOCK_READ = "read"
LOCK_WRITE = "write"
LOCK_EXCLUSIVE = "exclusive"

_ALL_LOCKS = frozenset({LOCK_READ, LOCK_WRITE, LOCK_EXCLUSIVE})
_EMPTY: frozenset[str] = frozenset()
_LOCKY_RE = re.compile(r"lock|mutex|cond|sem", re.IGNORECASE)


@dataclass(frozen=True)
class SiteContext:
    """Lexical lock scopes open at one AST node."""

    locks: frozenset[str]
    #: ``id()`` of the innermost lock-taking ``with`` node, or ``None``
    #: when no lexical lock scope is open.
    scope_id: int | None


_NO_CONTEXT = SiteContext(locks=_EMPTY, scope_id=None)


def _lock_kind(item: ast.withitem) -> str | None:
    """Classify one ``with`` item as a lock acquisition, if it is one."""
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr == "read_locked":
            return LOCK_READ
        if expr.func.attr == "write_locked":
            return LOCK_WRITE
    if isinstance(expr, (ast.Name, ast.Attribute)):
        name = base_name(expr)
        if name is not None and _LOCKY_RE.search(name):
            return LOCK_EXCLUSIVE
    return None


class ContextMap:
    """Lexical contexts per AST node plus entry contexts per function."""

    def __init__(self) -> None:
        #: ``id(node)`` -> lexical context (every node in a function body).
        self.sites: dict[int, SiteContext] = {}
        #: function qualname -> locks held on every analyzed call path.
        self.entry: dict[str, frozenset[str]] = {}

    def at(self, node: ast.AST) -> SiteContext:
        return self.sites.get(id(node), _NO_CONTEXT)

    def entry_locks(self, qualname: str) -> frozenset[str]:
        return self.entry.get(qualname, _EMPTY)

    def effective_locks(self, qualname: str, node: ast.AST) -> frozenset[str]:
        """Locks held at ``node`` inside ``qualname``: lexical + inherited."""
        return self.at(node).locks | self.entry_locks(qualname)


def _walk_function(
    function_node: ast.FunctionDef | ast.AsyncFunctionDef, sites: dict[int, SiteContext]
) -> None:
    def visit(node: ast.AST, locks: frozenset[str], scope: int | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            sites[id(child)] = SiteContext(locks=locks, scope_id=scope)
            if isinstance(child, (ast.With, ast.AsyncWith)):
                kinds = [k for k in map(_lock_kind, child.items) if k is not None]
                if kinds:
                    inner = locks.union(kinds)
                    # Context expressions themselves run *before* the
                    # lock is held.
                    for item in child.items:
                        visit(item.context_expr, locks, scope)
                        sites[id(item.context_expr)] = SiteContext(locks, scope)
                    for stmt in child.body:
                        sites[id(stmt)] = SiteContext(inner, id(child))
                        visit(stmt, inner, id(child))
                    continue
            visit(child, locks, scope)

    visit(function_node, _EMPTY, None)


def compute_contexts(program: Program) -> ContextMap:
    """Lexical walk of every function, then the entry-context fixpoint."""
    contexts = ContextMap()
    for function in program.functions.values():
        _walk_function(function.node, contexts.sites)

    callers = program.callers()
    # Greatest fixpoint: start callees at TOP, entry points at the empty
    # context, and intersect over call sites until stable.
    for qualname in program.functions:
        contexts.entry[qualname] = _ALL_LOCKS if callers.get(qualname) else _EMPTY
    changed = True
    while changed:
        changed = False
        for qualname, sites in callers.items():
            if qualname not in contexts.entry:
                continue
            incoming: frozenset[str] | None = None
            for caller, site in sites:
                held = contexts.sites.get(id(site.node), _NO_CONTEXT).locks
                held = held | contexts.entry.get(caller.qualname, _EMPTY)
                incoming = held if incoming is None else (incoming & held)
            if incoming is not None and incoming != contexts.entry[qualname]:
                contexts.entry[qualname] = incoming
                changed = True
    return contexts
