"""Effect inference over the call graph.

Classifies what each function *does* to the shared serving state — the
``KPIndex`` level arrays, the ``QueryCache``, the update journal, and
the filesystem — first from local AST patterns (*direct* effects, each
anchored to a source location), then transitively along resolved call
edges (*summary* effects) so that e.g. ``KPCoreServer.apply`` is known
to mutate the index and touch disk even though both happen three calls
deep in :mod:`repro.service.durable`.

Only effects that meaningfully propagate through a call boundary are
summarized (mutation, journal writes, blocking I/O).  Lock
acquisitions, version reads and cache fills stay local: the rules that
consume them (KP008, KP009) reason about the function that performs
them, not about callers.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field

from repro.devtools.analysis.callgraph import CallSite, Program, base_name

__all__ = [
    "Effect",
    "EffectSite",
    "FunctionEffects",
    "EffectMap",
    "classify_call",
    "classify_statement",
    "compute_effects",
]


class Effect(enum.Flag):
    """What a statement or function does to shared serving state."""

    NONE = 0
    MUTATES_INDEX = enum.auto()
    BUMPS_VERSION = enum.auto()
    READS_VERSION = enum.auto()
    FILLS_CACHE = enum.auto()
    JOURNAL_APPEND = enum.auto()
    BLOCKING_IO = enum.auto()


#: Effects carried across call edges into caller summaries.
_PROPAGATED = Effect.MUTATES_INDEX | Effect.JOURNAL_APPEND | Effect.BLOCKING_IO

#: Attributes that hold the per-k level arrays of a ``KPIndex``/``KArray``.
_ARRAY_ATTRS = frozenset({"vertices", "p_numbers", "levels", "level_values", "level_starts"})
#: Container mutators that rewrite a level array in place.
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)
#: Methods whose very purpose is rewriting index arrays.
_INDEX_MUTATING_CALLS = frozenset({"replace_segment", "_rebuild_levels"})
#: ``os.`` / builtin calls that hit the filesystem or block the thread.
_BLOCKING_CALLS = frozenset({"fsync", "fdopen", "replace", "sleep"})

#: Receivers whose ``.vertices``/``.p_numbers`` really are live index
#: state.  Local scratch buffers (``result.p_numbers.append`` while
#: building a fresh array) share the attribute names but not the root.
_ARRAY_ROOT_RE = re.compile(r"^self$|array|index|idx", re.IGNORECASE)

_JOURNAL_RE = re.compile(r"journal", re.IGNORECASE)
_CACHE_RE = re.compile(r"cache", re.IGNORECASE)
_INDEX_RE = re.compile(r"(?:^|_)(?:index|idx)$", re.IGNORECASE)
_HANDLE_RE = re.compile(r"(?:^|_)(?:handle|fh|fp|file|outfile|infile)$", re.IGNORECASE)
_HOOK_FIRE_RE = re.compile(r"fire.*hooks?", re.IGNORECASE)


@dataclass(frozen=True)
class EffectSite:
    """One source location where a direct effect happens."""

    node: ast.AST
    effect: Effect
    lineno: int
    col: int
    detail: str


@dataclass
class FunctionEffects:
    """Direct effects of one function, with their anchoring sites."""

    direct: Effect = Effect.NONE
    sites: list[EffectSite] = field(default_factory=list)

    def sites_with(self, effect: Effect) -> list[EffectSite]:
        return [s for s in self.sites if s.effect & effect]


class EffectMap:
    """Direct and transitive effects for every function in a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.direct: dict[str, FunctionEffects] = {}
        self.summary: dict[str, Effect] = {}

    def function_effects(self, qualname: str) -> FunctionEffects:
        return self.direct.get(qualname, FunctionEffects())

    def summary_of(self, qualname: str) -> Effect:
        return self.summary.get(qualname, Effect.NONE)

    def call_effect(self, site: CallSite) -> Effect:
        """Everything a call site may do: its own pattern plus the
        summarized effects of every resolved target."""
        combined = classify_call(site.node)
        for target in site.targets:
            combined |= self.summary_of(target) & _PROPAGATED
        return combined


def _receiver_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return base_name(call.func.value)
    return None


def classify_call(call: ast.Call) -> Effect:
    """Direct effect of a single call expression, from its shape alone."""
    effect = Effect.NONE
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            effect |= Effect.BLOCKING_IO
        elif func.id in {"fsync", "fdopen", "sleep"}:
            # ``from os import fsync`` / ``from time import sleep`` style.
            effect |= Effect.BLOCKING_IO
        elif _HOOK_FIRE_RE.search(func.id):
            effect |= Effect.JOURNAL_APPEND
        return effect
    if not isinstance(func, ast.Attribute):
        return effect
    method = func.attr
    receiver = base_name(func.value)
    # ``os.replace`` blocks; ``some_string.replace`` does not — attribute
    # forms of the blocking builtins only count on stdlib module receivers.
    if method in _BLOCKING_CALLS and receiver in {"os", "time", "shutil"}:
        effect |= Effect.BLOCKING_IO
    if _HOOK_FIRE_RE.search(method):
        effect |= Effect.JOURNAL_APPEND
    if method == "bump_version":
        effect |= Effect.BUMPS_VERSION
    if method in {"version", "versions"} and receiver is not None and _INDEX_RE.search(receiver):
        effect |= Effect.READS_VERSION
    if receiver is not None:
        if _JOURNAL_RE.search(receiver):
            if method == "append":
                effect |= Effect.JOURNAL_APPEND | Effect.BLOCKING_IO
            elif method in {"commit", "close", "write", "flush"}:
                effect |= Effect.BLOCKING_IO
        if _CACHE_RE.search(receiver) and method == "put":
            effect |= Effect.FILLS_CACHE
        if _HANDLE_RE.search(receiver) and method in {"write", "flush", "read", "readline", "readlines"}:
            effect |= Effect.BLOCKING_IO
    if method in _INDEX_MUTATING_CALLS:
        effect |= Effect.MUTATES_INDEX
    if method in _MUTATOR_METHODS and isinstance(func.value, ast.Attribute):
        if func.value.attr in _ARRAY_ATTRS and _is_array_root(func.value.value):
            effect |= Effect.MUTATES_INDEX
    return effect


def _is_array_root(node: ast.expr) -> bool:
    root = _chain_root(node)
    return root is not None and bool(_ARRAY_ROOT_RE.search(root))


def _chain_root(node: ast.expr) -> str | None:
    """The bottom-most name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_array_attr_target(target: ast.expr) -> bool:
    """``x.vertices = ...``, ``x.p_numbers[i] = ...`` and friends."""
    if isinstance(target, ast.Subscript):
        return _is_array_attr_target(target.value)
    if isinstance(target, ast.Attribute):
        return target.attr in _ARRAY_ATTRS and _is_array_root(target.value)
    return False


def classify_statement(node: ast.AST) -> Effect:
    """Direct effect of a non-call statement (assignment mutation)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if _is_array_attr_target(target):
            return Effect.MUTATES_INDEX
    return Effect.NONE


def _direct_effects(program: Program) -> dict[str, FunctionEffects]:
    table: dict[str, FunctionEffects] = {}
    for function in program.functions.values():
        effects = FunctionEffects()
        for node in Program._own_nodes(function.node):
            effect = Effect.NONE
            detail = ""
            if isinstance(node, ast.Call):
                effect = classify_call(node)
                detail = Program._raw(node.func)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                effect = classify_statement(node)
                detail = "assignment to a level-array attribute"
            if effect is not Effect.NONE:
                effects.direct |= effect
                effects.sites.append(
                    EffectSite(
                        node=node,
                        effect=effect,
                        lineno=getattr(node, "lineno", 0),
                        col=getattr(node, "col_offset", 0),
                        detail=detail,
                    )
                )
        table[function.qualname] = effects
    return table


def compute_effects(program: Program) -> EffectMap:
    """Direct pass plus a worklist fixpoint propagating
    ``_PROPAGATED`` effects along resolved call edges."""
    result = EffectMap(program)
    result.direct = _direct_effects(program)
    result.summary = {
        qualname: effects.direct for qualname, effects in result.direct.items()
    }
    callers = program.callers()
    worklist = [q for q, e in result.summary.items() if e & _PROPAGATED]
    while worklist:
        callee = worklist.pop()
        contribution = result.summary.get(callee, Effect.NONE) & _PROPAGATED
        if contribution is Effect.NONE:
            continue
        for caller, _site in callers.get(callee, []):
            before = result.summary.get(caller.qualname, Effect.NONE)
            after = before | contribution
            if after != before:
                result.summary[caller.qualname] = after
                worklist.append(caller.qualname)
    return result
