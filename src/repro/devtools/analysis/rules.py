"""Whole-program rules KP008-KP012 over the call graph, effects and
lock contexts.

Each rule is under-approximate by construction: it only reasons about
call edges the resolver could prove and lock scopes it could see, so an
unresolvable call contributes silence, not noise.  The flip side is the
usual static-analysis contract — a clean run means "no violation the
analysis can see", not a proof.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Sequence

from repro.devtools.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    Program,
    base_name,
)
from repro.devtools.analysis.contexts import (
    LOCK_WRITE,
    ContextMap,
    compute_contexts,
)
from repro.devtools.analysis.effects import (
    Effect,
    EffectMap,
    compute_effects,
)
from repro.devtools.violations import Violation

__all__ = [
    "AnalysisRule",
    "LockDisciplineRule",
    "VersionBumpPairingRule",
    "DurableWriteProtocolRule",
    "ProcessBoundaryRule",
    "BlockingUnderLockRule",
    "ALL_ANALYSIS_RULES",
    "default_analysis_rules",
    "analyze_program",
]

_RWLOCK_RE = re.compile(r"rwlock|readwritelock", re.IGNORECASE)
_LOCKY_RE = re.compile(r"lock|mutex|cond|sem", re.IGNORECASE)
_HANDLE_RE = re.compile(r"(?:^|_)(?:handle|fh|fp|file|outfile|infile)$", re.IGNORECASE)
_POOL_RE = re.compile(r"pool|executor", re.IGNORECASE)
_POOL_CONSTRUCTORS = frozenset({"Pool", "ProcessPoolExecutor"})
_POOL_DISPATCH = frozenset(
    {
        "map", "map_async", "imap", "imap_unordered",
        "starmap", "starmap_async", "apply", "apply_async", "submit",
    }
)
_MAINTENANCE_SUFFIX = "core/maintenance.py"
_PERSISTED_SUFFIXES = ("core/index.py", "obs/snapshot.py")


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def _module_path(program: Program, function: FunctionInfo) -> str:
    module = program.modules.get(function.module)
    return module.path if module is not None else "<unknown>"


def _lock_owning_classes(program: Program) -> set[str]:
    """Classes that hold an RWLock attribute — the serving boundary where
    the lock-discipline rules apply."""
    owners: set[str] = set()
    for cls in program.classes.values():
        for attr_class in cls.attr_types.values():
            target = program.classes.get(attr_class)
            if target is not None and _RWLOCK_RE.search(target.name):
                owners.add(cls.qualname)
    return owners


def _in_lock_owner(program: Program, function: FunctionInfo, owners: set[str]) -> bool:
    return (
        function.class_name is not None
        and f"{function.module}.{function.class_name}" in owners
    )


class AnalysisRule:
    """Base class for whole-program rules (KP008+)."""

    code = "KP999"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def _violation(
        self, path: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class LockDisciplineRule(AnalysisRule):
    """KP008 — server lock discipline.

    In any class that owns an RWLock, every call path that mutates index
    state must be dominated by ``write_locked()``; and any function that
    reads a version counter *and* fills the query cache must do both
    inside one ``read_locked()`` (or stronger) scope, so the version it
    tags the entry with belongs to the same lock acquisition as the
    fill.
    """

    code = "KP008"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        owners = _lock_owning_classes(program)
        for function in program.functions.values():
            path = _module_path(program, function)
            if _in_lock_owner(program, function, owners):
                yield from self._check_mutations(
                    program, effects, contexts, function, path
                )
            yield from self._check_read_scope(effects, contexts, function, path)

    def _check_mutations(
        self,
        program: Program,
        effects: EffectMap,
        contexts: ContextMap,
        function: FunctionInfo,
        path: str,
    ) -> Iterator[Violation]:
        qualname = function.qualname
        direct_nodes: set[int] = set()
        for site in effects.function_effects(qualname).sites_with(Effect.MUTATES_INDEX):
            direct_nodes.add(id(site.node))
            if LOCK_WRITE not in contexts.effective_locks(qualname, site.node):
                yield self._violation(
                    path,
                    site.node,
                    "index state mutated outside write_locked() "
                    f"in lock-owning class method {function.name}()",
                )
        for site in function.calls:
            if id(site.node) in direct_nodes:
                continue
            if effects.call_effect(site) & Effect.MUTATES_INDEX:
                if LOCK_WRITE not in contexts.effective_locks(qualname, site.node):
                    yield self._violation(
                        path,
                        site.node,
                        f"call {site.raw}() mutates index state but is not "
                        "dominated by write_locked()",
                    )

    def _check_read_scope(
        self,
        effects: EffectMap,
        contexts: ContextMap,
        function: FunctionInfo,
        path: str,
    ) -> Iterator[Violation]:
        qualname = function.qualname
        direct = effects.function_effects(qualname)
        reads = direct.sites_with(Effect.READS_VERSION)
        fills = direct.sites_with(Effect.FILLS_CACHE)
        if not reads or not fills:
            return
        scope_ids: set[int | None] = set()
        for site in [*reads, *fills]:
            if not contexts.effective_locks(qualname, site.node):
                what = "version read" if site.effect & Effect.READS_VERSION else "cache fill"
                yield self._violation(
                    path,
                    site.node,
                    f"{what} ({site.detail}) outside any read_locked() scope "
                    "in a function that also "
                    + ("fills the cache" if what == "version read" else "reads versions"),
                )
                return
            scope_ids.add(contexts.at(site.node).scope_id)
        if len(scope_ids) > 1:
            yield self._violation(
                path,
                reads[0].node,
                "version read and cache fill sit in different lock scopes; "
                "the version tag must come from the same read_locked() "
                "acquisition as the fill",
            )


class VersionBumpPairingRule(AnalysisRule):
    """KP009 — every A_k mutation in ``repro.core.maintenance`` pairs
    with a ``bump_version`` call in the same function."""

    code = "KP009"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        for function in program.functions.values():
            path = _module_path(program, function)
            if not _normalize(path).endswith(_MAINTENANCE_SUFFIX):
                continue
            direct = effects.function_effects(function.qualname)
            mutations = direct.sites_with(Effect.MUTATES_INDEX)
            if not mutations:
                continue
            if direct.direct & Effect.BUMPS_VERSION:
                continue
            first = min(mutations, key=lambda s: (s.lineno, s.col))
            yield self._violation(
                path,
                first.node,
                f"{function.name}() mutates a level array without calling "
                "bump_version() — the cache-invalidation oracle "
                "(Thm. 2/6/7 skip logic) would go stale",
            )


class DurableWriteProtocolRule(AnalysisRule):
    """KP010 — write-ahead ordering and atomic persisted writes.

    (a) in service/maintenance modules, the first journal append in a
    function must precede the first in-memory index mutation it logs;
    (b) persisted-path modules must not use raw ``open(path, "w")`` —
    durable writes go through temp file → fsync → ``os.replace``.
    """

    code = "KP010"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        for function in program.functions.values():
            path = _normalize(_module_path(program, function))
            in_service = "/service/" in path or path.endswith(_MAINTENANCE_SUFFIX)
            persisted = in_service or path.endswith(_PERSISTED_SUFFIXES)
            if in_service:
                yield from self._check_ordering(program, effects, function)
            if persisted:
                yield from self._check_raw_open(program, function)

    def _check_ordering(
        self, program: Program, effects: EffectMap, function: FunctionInfo
    ) -> Iterator[Violation]:
        path = _module_path(program, function)
        direct = effects.function_effects(function.qualname)
        appends = direct.sites_with(Effect.JOURNAL_APPEND)
        if not appends:
            return
        first_append = min(a.lineno for a in appends)
        direct_mutations = direct.sites_with(Effect.MUTATES_INDEX)
        mutation_sites: list[tuple[int, ast.AST, str]] = [
            (s.lineno, s.node, s.detail) for s in direct_mutations
        ]
        seen = {id(s.node) for s in direct_mutations}
        for site in function.calls:
            if id(site.node) in seen:
                continue
            if effects.call_effect(site) & Effect.MUTATES_INDEX:
                mutation_sites.append((site.lineno, site.node, site.raw))
        for lineno, node, detail in mutation_sites:
            if lineno < first_append:
                yield self._violation(
                    path,
                    node,
                    f"in-memory mutation ({detail}) precedes the first "
                    "journal append at line "
                    f"{first_append} — a crash here loses the update "
                    "(write-ahead ordering)",
                )

    def _check_raw_open(
        self, program: Program, function: FunctionInfo
    ) -> Iterator[Violation]:
        path = _module_path(program, function)
        for site in function.calls:
            node = site.node
            if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
                continue
            mode = self._open_mode(node)
            if mode is not None and mode.startswith("w"):
                yield self._violation(
                    path,
                    node,
                    f'raw open(..., "{mode}") on a persisted path — use the '
                    "temp-file + fsync + os.replace idiom so readers never "
                    "see a torn file",
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        if len(node.args) >= 2:
            arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        for keyword in node.keywords:
            if keyword.arg == "mode":
                if isinstance(keyword.value, ast.Constant) and isinstance(
                    keyword.value.value, str
                ):
                    return keyword.value.value
        return None


class ProcessBoundaryRule(AnalysisRule):
    """KP011 — everything shipped to a worker pool must pickle cheaply:
    no lambdas, closures, locks, or open handles across the process
    boundary."""

    code = "KP011"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        for function in program.functions.values():
            path = _module_path(program, function)
            for site in function.calls:
                node = site.node
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name in _POOL_CONSTRUCTORS:
                    yield from self._check_constructor(program, function, path, node)
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _POOL_DISPATCH
                    and (base_name(func.value) or "")
                    and _POOL_RE.search(base_name(func.value) or "")
                ):
                    yield from self._check_arguments(
                        program, function, path, node, list(node.args)
                    )

    def _check_constructor(
        self,
        program: Program,
        function: FunctionInfo,
        path: str,
        node: ast.Call,
    ) -> Iterator[Violation]:
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                yield from self._check_arguments(
                    program, function, path, node, [keyword.value]
                )
            elif keyword.arg == "initargs" and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                yield from self._check_arguments(
                    program, function, path, node, list(keyword.value.elts)
                )

    def _check_arguments(
        self,
        program: Program,
        function: FunctionInfo,
        path: str,
        call: ast.Call,
        arguments: Sequence[ast.expr],
    ) -> Iterator[Violation]:
        for argument in arguments:
            reason = self._unpicklable(program, function, argument)
            if reason is not None:
                yield self._violation(
                    path,
                    argument,
                    f"{reason} crosses the process boundary to a worker "
                    "pool — ship module-level callables and plain data only",
                )

    @staticmethod
    def _unpicklable(
        program: Program, function: FunctionInfo, argument: ast.expr
    ) -> str | None:
        if isinstance(argument, ast.Lambda):
            return "a lambda"
        if isinstance(argument, ast.Name):
            if f"{function.qualname}.{argument.id}" in program.functions:
                return f"nested function {argument.id}() (a closure)"
            if _LOCKY_RE.search(argument.id):
                return f"lock-like object {argument.id!r}"
            if _HANDLE_RE.search(argument.id):
                return f"open-handle-like object {argument.id!r}"
        if isinstance(argument, ast.Attribute):
            name = base_name(argument)
            if name is not None and _LOCKY_RE.search(name):
                return f"lock-like object {name!r}"
            if name is not None and _HANDLE_RE.search(name):
                return f"open-handle-like object {name!r}"
        if isinstance(argument, ast.Call):
            if isinstance(argument.func, ast.Name) and argument.func.id == "open":
                return "an open file handle"
        return None


class BlockingUnderLockRule(AnalysisRule):
    """KP012 — no blocking I/O while holding a lock scope that query
    threads share: every fsync spent under the lock is latency added to
    someone's read."""

    code = "KP012"

    def check(
        self, program: Program, effects: EffectMap, contexts: ContextMap
    ) -> Iterator[Violation]:
        owners = _lock_owning_classes(program)
        for function in program.functions.values():
            path = _module_path(program, function)
            qualname = function.qualname
            in_owner = _in_lock_owner(program, function, owners)
            for site in function.calls:
                effect = effects.call_effect(site)
                if not effect & Effect.BLOCKING_IO:
                    continue
                locks = contexts.effective_locks(qualname, site.node)
                # Report at the boundary where the lock is visible: a
                # lexically-locked site anywhere, or any method of the
                # lock-owning class (which may inherit the scope from
                # its callers).  Lock-oblivious callees deeper down the
                # same path would repeat the same finding with no new
                # information.
                if not contexts.at(site.node).locks and not in_owner:
                    continue
                if locks:
                    held = ", ".join(sorted(locks))
                    yield self._violation(
                        path,
                        site.node,
                        f"blocking I/O ({site.raw}) while holding a lock "
                        f"scope ({held}) that queries may be waiting on",
                    )


ALL_ANALYSIS_RULES: tuple[type[AnalysisRule], ...] = (
    LockDisciplineRule,
    VersionBumpPairingRule,
    DurableWriteProtocolRule,
    ProcessBoundaryRule,
    BlockingUnderLockRule,
)


def default_analysis_rules() -> list[AnalysisRule]:
    return [rule() for rule in ALL_ANALYSIS_RULES]


def analyze_program(
    program: Program, rules: Iterable[AnalysisRule] | None = None
) -> list[Violation]:
    """Run the whole-program rules over an already-built program."""
    effects = compute_effects(program)
    contexts = compute_contexts(program)
    found: list[Violation] = []
    for rule in rules if rules is not None else default_analysis_rules():
        found.extend(rule.check(program, effects, contexts))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found
