"""Whole-program static analysis for the concurrency/durability rules.

Built on the per-file lint framework (:mod:`repro.devtools.lint`), this
package adds the cross-module view those rules need: a module-resolving
call graph (:mod:`.callgraph`), effect inference classifying each
function as reading/mutating index, cache, journal or filesystem state
(:mod:`.effects`), and a lock-context propagator (:mod:`.contexts`).
The rules themselves (KP008-KP012) live in :mod:`.rules`.

Entry point: :func:`analyze_files` — build the program once, run every
rule, apply the same ``# noqa`` suppression contract as the per-file
lint pass.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.devtools.analysis.callgraph import Program, build_program
from repro.devtools.analysis.contexts import ContextMap, compute_contexts
from repro.devtools.analysis.effects import Effect, EffectMap, compute_effects
from repro.devtools.analysis.rules import (
    ALL_ANALYSIS_RULES,
    AnalysisRule,
    analyze_program,
    default_analysis_rules,
)
from repro.devtools.violations import Violation

__all__ = [
    "Program",
    "build_program",
    "ContextMap",
    "compute_contexts",
    "Effect",
    "EffectMap",
    "compute_effects",
    "AnalysisRule",
    "ALL_ANALYSIS_RULES",
    "analyze_program",
    "default_analysis_rules",
    "analyze_files",
]


def analyze_files(
    paths: Iterable[str | os.PathLike[str]],
    rules: Iterable[AnalysisRule] | None = None,
) -> list[Violation]:
    """Run KP008-KP012 over ``paths`` (already-expanded ``.py`` files).

    ``# noqa`` comments suppress analysis findings exactly as they do
    per-file lint findings.
    """
    from repro.devtools.lint import violation_suppressed

    program = build_program(paths)
    lines_by_path = {
        module.path: module.source_lines for module in program.modules.values()
    }
    found = analyze_program(program, rules)
    return [
        violation
        for violation in found
        if not violation_suppressed(violation, lines_by_path.get(violation.path, []))
    ]
