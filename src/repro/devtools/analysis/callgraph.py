"""Module-resolving call graph over a set of Python source files.

This is the foundation of the whole-program analysis layer
(:mod:`repro.devtools.analysis`): it parses every file once, derives
dotted module names from the package structure on disk, builds per-module
symbol tables (imports, top-level defs, classes), infers the classes of
``self.<attr>`` attributes from constructor calls and annotated
parameters, and resolves each call expression to the set of function
qualnames it may target.

Resolution is deliberately heuristic — Python cannot be resolved
statically in general — but it is *under-approximate*: a call that cannot
be resolved contributes no edges (and therefore no effects), so the
downstream rules (KP008-KP012) err toward silence, never toward noise.
The supported forms, in priority order:

* ``f(...)`` where ``f`` is a nested/local def, a module-level def, an
  imported name, or a class (resolved to its ``__init__``);
* ``self.m(...)`` — a method of the enclosing class;
* ``self.attr.m(...)`` / ``x.m(...)`` where the attribute or local has a
  known class (from ``self.attr = Cls(...)``, an annotated parameter, an
  ``AnnAssign``, or an annotated classmethod constructor);
* ``mod.f(...)`` where ``mod`` is an imported module in the program;
* ``Cls.m(...)`` for class/static methods;
* as a last resort, a *unique-method* fallback: an attribute call whose
  method name is defined by exactly one analyzed class (and is not a
  common builtin-container/file method name) resolves to that method.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Program",
    "build_program",
    "module_name_for_path",
    "base_name",
]

#: Method names too generic to resolve by name alone: builtin container
#: and file-object methods that user classes also happen to define.
_AMBIENT_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "get", "keys", "values",
        "items", "setdefault", "popitem", "copy", "count", "index",
        "write", "read", "readline", "readlines", "flush", "close",
        "join", "split", "strip", "format", "encode", "decode", "open",
        "save", "load", "query", "snapshot", "check", "run", "main",
    }
)


def base_name(node: ast.expr) -> str | None:
    """The identifier an expression hangs off: ``a.b[0].c`` -> ``c``,
    ``self._journal.append`` -> ``append`` for the func, and the helper
    is applied to ``func.value`` to get the receiver name ``_journal``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return base_name(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return base_name(node.func)
    return None


def _statement_blocks(node: ast.stmt) -> Iterable[Sequence[ast.stmt]]:
    """Every nested statement list of a compound statement."""
    for _name, value in ast.iter_fields(node):
        if isinstance(value, list):
            if value and isinstance(value[0], ast.stmt):
                yield value
            else:
                for item in value:
                    if isinstance(item, (ast.excepthandler, ast.match_case)):
                        yield item.body


def module_name_for_path(path: str | os.PathLike[str]) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` files.

    Climbs parent directories while they are packages, so
    ``src/repro/core/maintenance.py`` -> ``repro.core.maintenance`` and a
    loose file outside any package is just its stem.
    """
    absolute = os.path.abspath(os.fspath(path))
    directory, filename = os.path.split(absolute)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


@dataclass(frozen=True)
class CallSite:
    """One call expression and the function qualnames it may target."""

    node: ast.Call
    lineno: int
    col: int
    raw: str
    targets: tuple[str, ...]


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_nested: bool = False
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One analyzed class: its methods and inferred attribute classes."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file with its module-level symbol table."""

    name: str
    path: str
    tree: ast.Module
    source_lines: list[str]
    is_package: bool
    #: local name -> dotted target (module, class, or function path).
    symbols: dict[str, str] = field(default_factory=dict)


class Program:
    """The parsed whole program: modules, classes, functions, call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: method name -> class qualnames defining it (for the fallback).
        self._methods_by_name: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def callers(self) -> dict[str, list[tuple[FunctionInfo, CallSite]]]:
        """Reverse call edges: callee qualname -> [(caller, site), ...]."""
        reverse: dict[str, list[tuple[FunctionInfo, CallSite]]] = {}
        for function in self.functions.values():
            for site in function.calls:
                for target in site.targets:
                    reverse.setdefault(target, []).append((function, site))
        return reverse

    def resolve_symbol(self, module: ModuleInfo, name: str) -> str | None:
        return module.symbols.get(name)

    # ------------------------------------------------------------------
    # pass 1: symbol tables
    # ------------------------------------------------------------------
    def _add_module(self, path: str, source: str) -> ModuleInfo | None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None  # the lint driver reports KP000 for this file
        name = module_name_for_path(path)
        info = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
            is_package=os.path.basename(path) == "__init__.py",
        )
        self.modules[name] = info
        self._collect_symbols(info)
        return info

    def _collect_symbols(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.symbols[bound] = target
            elif isinstance(node, ast.ImportFrom):
                origin = self._import_base(module, node)
                if origin is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.symbols[bound] = f"{origin}.{alias.name}" if origin else alias.name
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                module.symbols[node.name] = f"{module.name}.{node.name}"

    def _import_base(self, module: ModuleInfo, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or None
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            if drop >= len(parts):
                return None
            parts = parts[: len(parts) - drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    # ------------------------------------------------------------------
    # pass 2: functions and classes
    # ------------------------------------------------------------------
    def _register_definitions(self, module: ModuleInfo) -> None:
        def visit(body: Sequence[ast.stmt], prefix: str, class_name: str | None,
                  nested: bool) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=module.name,
                        name=node.name,
                        class_name=class_name,
                        node=node,
                        is_nested=nested,
                    )
                    if class_name is not None and not nested:
                        cls = self.classes[f"{module.name}.{class_name}"]
                        cls.methods[node.name] = qualname
                        self._methods_by_name.setdefault(node.name, []).append(
                            cls.qualname
                        )
                    visit(node.body, qualname, class_name, True)
                elif isinstance(node, ast.ClassDef):
                    qualname = f"{prefix}.{node.name}"
                    if not nested and class_name is None:
                        self.classes[qualname] = ClassInfo(
                            qualname=qualname,
                            module=module.name,
                            name=node.name,
                            node=node,
                        )
                        visit(node.body, qualname, node.name, False)
                    else:
                        visit(node.body, qualname, class_name, nested)
                else:
                    # Descend into compound statements (if/for/while/
                    # with/try/match) so defs nested inside them are
                    # still registered.
                    for block in _statement_blocks(node):
                        visit(block, prefix, class_name, nested)
        visit(module.tree.body, module.name, None, False)

    # ------------------------------------------------------------------
    # pass 3: attribute types
    # ------------------------------------------------------------------
    def _annotation_class(self, module: ModuleInfo, node: ast.expr | None) -> str | None:
        """The class qualname an annotation names, if it is one we parsed."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Name):
            dotted = self.resolve_symbol(module, node.id)
            if dotted in self.classes:
                return dotted
            local = f"{module.name}.{node.id}"
            return local if local in self.classes else None
        if isinstance(node, ast.Attribute):
            dotted = self._dotted(module, node)
            return dotted if dotted in self.classes else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # ``T | None`` (either side may be the None constant).
            left = self._annotation_class(module, node.left)
            return left or self._annotation_class(module, node.right)
        if isinstance(node, ast.Subscript):
            # Optional[T] — anything else (list[T], dict[...]) is a
            # container, not the class itself.
            if isinstance(node.value, ast.Name) and node.value.id == "Optional":
                return self._annotation_class(module, node.slice)
        return None

    def _dotted(self, module: ModuleInfo, node: ast.expr) -> str | None:
        """Flatten ``a.b.c`` resolving the base through the symbol table."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.resolve_symbol(module, node.id) or node.id
        return ".".join([root, *parts])

    def _infer_attr_types(self, module: ModuleInfo) -> None:
        for cls in [c for c in self.classes.values() if c.module == module.name]:
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and self._is_self_attr(stmt.target):
                    inferred = self._annotation_class(module, stmt.annotation)
                    if inferred:
                        cls.attr_types.setdefault(stmt.target.attr, inferred)  # type: ignore[union-attr]
            for method_name, qualname in cls.methods.items():
                function = self.functions[qualname]
                annotations = {
                    arg.arg: arg.annotation
                    for arg in [*function.node.args.args, *function.node.args.kwonlyargs]
                }
                for node in ast.walk(function.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                        if self._is_self_attr(target):
                            inferred = self._annotation_class(module, node.annotation)
                            if inferred:
                                cls.attr_types.setdefault(target.attr, inferred)  # type: ignore[union-attr]
                                continue
                    if target is None or not self._is_self_attr(target):
                        continue
                    inferred = self._value_class(module, cls, annotations, value)
                    if inferred:
                        cls.attr_types.setdefault(target.attr, inferred)  # type: ignore[union-attr]

    @staticmethod
    def _is_self_attr(target: ast.expr | None) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _value_class(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        annotations: dict[str, ast.expr | None],
        value: ast.expr | None,
    ) -> str | None:
        """The class an expression evaluates to, when that is inferable."""
        if value is None:
            return None
        if isinstance(value, ast.IfExp):
            return self._value_class(
                module, cls, annotations, value.body
            ) or self._value_class(module, cls, annotations, value.orelse)
        if isinstance(value, ast.Name):
            if value.id in annotations:
                return self._annotation_class(module, annotations[value.id])
            return None
        if isinstance(value, ast.Attribute) and self._is_self_attr(value):
            if cls is not None:
                return cls.attr_types.get(value.attr)
            return None
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                dotted = self.resolve_symbol(module, func.id)
                if dotted in self.classes:
                    return dotted
            elif isinstance(func, ast.Attribute):
                dotted = self._dotted(module, func)
                if dotted is not None:
                    owner = dotted.rsplit(".", 1)[0]
                    if owner in self.classes:
                        method = self.classes[owner].methods.get(func.attr)
                        if method is not None:
                            returns = self.functions[method].node.returns
                            inferred = self._annotation_class(module, returns)
                            if inferred:
                                return inferred
                        # Classmethod constructor convention: Cls.build(...)
                        # with no resolvable return annotation is assumed to
                        # return Cls.
                        return owner
        return None

    # ------------------------------------------------------------------
    # pass 4: call resolution
    # ------------------------------------------------------------------
    def _resolve_calls(self, module: ModuleInfo) -> None:
        for function in [
            f for f in self.functions.values() if f.module == module.name
        ]:
            cls = (
                self.classes.get(f"{module.name}.{function.class_name}")
                if function.class_name
                else None
            )
            local_defs = {
                child.name: f"{function.qualname}.{child.name}"
                for child in ast.walk(function.node)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not function.node
            }
            annotations = {
                arg.arg: arg.annotation
                for arg in [*function.node.args.args, *function.node.args.kwonlyargs]
            }
            local_types = self._local_types(module, cls, annotations, function)
            for node in self._own_nodes(function.node):
                if isinstance(node, ast.Call):
                    targets = self._resolve_call(
                        module, cls, local_defs, annotations, local_types, node
                    )
                    function.calls.append(
                        CallSite(
                            node=node,
                            lineno=node.lineno,
                            col=node.col_offset,
                            raw=self._raw(node.func),
                            targets=targets,
                        )
                    )

    @staticmethod
    def _own_nodes(function: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _raw(node: ast.expr) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse failure is cosmetic
            return "<expr>"

    def _local_types(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        annotations: dict[str, ast.expr | None],
        function: FunctionInfo,
    ) -> dict[str, str]:
        """name -> class qualname for annotated params and simple assigns."""
        types: dict[str, str] = {}
        for name, annotation in annotations.items():
            inferred = self._annotation_class(module, annotation)
            if inferred:
                types[name] = inferred
        for node in self._own_nodes(function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._value_class(module, cls, annotations, node.value)
                    if inferred:
                        types.setdefault(target.id, inferred)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        inferred = self._value_class(
                            module, cls, annotations, item.context_expr
                        )
                        if inferred:
                            types.setdefault(item.optional_vars.id, inferred)
        return types

    def _resolve_call(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        local_defs: dict[str, str],
        annotations: dict[str, ast.expr | None],
        local_types: dict[str, str],
        call: ast.Call,
    ) -> tuple[str, ...]:
        func = call.func
        if isinstance(func, ast.Name):
            dotted = local_defs.get(func.id) or self.resolve_symbol(module, func.id)
            return self._as_targets(dotted)
        if not isinstance(func, ast.Attribute):
            return ()
        method = func.attr
        receiver = func.value
        # self.m() — a method of the enclosing class.
        if isinstance(receiver, ast.Name) and receiver.id == "self" and cls is not None:
            target = cls.methods.get(method)
            if target is not None:
                return (target,)
        # Receiver with an inferable class: self.attr.m(), local.m().
        receiver_class = self._receiver_class(
            module, cls, annotations, local_types, receiver
        )
        if receiver_class is not None:
            target = self.classes[receiver_class].methods.get(method)
            return (target,) if target is not None else ()
        # mod.f() for an analyzed module, or Cls.m() class/static call.
        if isinstance(receiver, (ast.Name, ast.Attribute)):
            dotted = (
                self.resolve_symbol(module, receiver.id)
                if isinstance(receiver, ast.Name)
                else self._dotted(module, receiver)
            )
            if dotted is not None:
                if dotted in self.modules:
                    return self._as_targets(f"{dotted}.{method}")
                if dotted in self.classes:
                    target = self.classes[dotted].methods.get(method)
                    return (target,) if target is not None else ()
        # Unique-method fallback.
        if method not in _AMBIENT_METHODS:
            owners = self._methods_by_name.get(method, [])
            if len(owners) == 1:
                return (self.classes[owners[0]].methods[method],)
        return ()

    def _receiver_class(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        annotations: dict[str, ast.expr | None],
        local_types: dict[str, str],
        receiver: ast.expr,
    ) -> str | None:
        if isinstance(receiver, ast.Name):
            inferred = local_types.get(receiver.id)
            if inferred in self.classes:
                return inferred
            return None
        if isinstance(receiver, ast.Attribute) and self._is_self_attr(receiver):
            if cls is not None:
                inferred = cls.attr_types.get(receiver.attr)
                if inferred in self.classes:
                    return inferred
        return None

    def _as_targets(self, dotted: str | None) -> tuple[str, ...]:
        if dotted is None:
            return ()
        if dotted in self.functions:
            return (dotted,)
        if dotted in self.classes:
            init = self.classes[dotted].methods.get("__init__")
            return (init,) if init is not None else ()
        return ()


def build_program(paths: Iterable[str | os.PathLike[str]]) -> Program:
    """Parse ``paths`` (files) into a resolved :class:`Program`.

    Files that fail to parse are skipped here — the per-file lint pass
    reports them as ``KP000`` — so the analysis sees a best-effort view
    of the rest of the program.
    """
    program = Program()
    modules: list[ModuleInfo] = []
    for path in paths:
        text_path = os.fspath(path)
        with open(text_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        module = program._add_module(text_path, source)
        if module is not None:
            modules.append(module)
    for module in modules:
        program._register_definitions(module)
    for module in modules:
        program._infer_attr_types(module)
    for module in modules:
        program._resolve_calls(module)
    return program
