"""Violation model shared by the lint rules and the lint driver.

Each rule owns a stable ``KPxxx`` code.  Codes are part of the public
contract: they appear in lint output, in ``# noqa: KPxxx`` suppression
comments, and in :data:`RULE_CODES`, which the documentation and the CLI
``--explain`` listing are generated from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Violation", "RULE_CODES", "PARSE_ERROR_CODE"]

#: Pseudo-code reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "KP000"

#: Stable code -> one-line summary of every rule the linter ships.
RULE_CODES: dict[str, str] = {
    PARSE_ERROR_CODE: "file could not be parsed as Python",
    "KP001": (
        "raw fraction arithmetic on degree-like values outside core/pvalue.py; "
        "route through fraction_value()/fraction_threshold()"
    ),
    "KP002": (
        "float ==/!= comparison on p-values or fractions outside "
        "core/pvalue.py; exact-double identities belong in one module"
    ),
    "KP003": (
        "public API function takes a `p` or `k` parameter but neither "
        "validates it (check_p / ParameterError) nor forwards it"
    ),
    "KP004": (
        "mutation of a CompactAdjacency snapshot attribute "
        "(indptr/indices/labels) outside graph/compact.py"
    ),
    "KP005": (
        "__all__ drift: exported name undefined, or public module-level "
        "def/class missing from __all__"
    ),
    "KP006": (
        "set/dict/list construction inside a peeling hot loop "
        "(kcore/compute.py, core/kpcore.py, core/decomposition.py, "
        "core/peel_engines.py)"
    ),
    "KP007": (
        "per-iteration metric recording inside a peeling hot loop: "
        "get_collector()/maybe_span() must be hoisted, and collector "
        "calls guarded or accumulated locally and flushed after the loop"
    ),
    # Whole-program rules (require ``lint --analysis``).
    "KP008": (
        "lock discipline: call paths mutating server-held index state "
        "must be dominated by write_locked(), and version reads + cache "
        "fills must share a single read_locked() scope"
    ),
    "KP009": (
        "version-bump pairing: an A_k mutation in core/maintenance.py "
        "without a bump_version() call in the same function leaves the "
        "cache-invalidation oracle stale"
    ),
    "KP010": (
        "durable-write protocol: journal append must precede the "
        "in-memory mutation it logs, and persisted files must use the "
        "temp-file + fsync + os.replace idiom, never raw open(path, 'w')"
    ),
    "KP011": (
        "process-boundary safety: lambdas, closures, locks, or open "
        "handles must not cross into the repro.core.parallel worker pool"
    ),
    "KP012": (
        "no blocking I/O (open/fsync/sleep/journal writes) while holding "
        "a lock scope that query threads share"
    ),
}


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location.

    ``line``/``col`` follow the Python AST convention (1-based line,
    0-based column).
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the CLI output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
