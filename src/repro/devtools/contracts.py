"""Opt-in runtime invariant contracts for the core algorithms.

Enable with ``REPRO_VERIFY=1`` in the environment (or programmatically via
:func:`set_contracts_active`).  When active, decorated algorithms re-check
their outputs against the paper's definitions:

* :func:`verify_kp_core` — kpCore output satisfies Definition 3
  (via :func:`repro.core.kpcore.satisfies_kp_constraints`),
* :func:`verify_decomposition` — p-numbers are monotone non-increasing in
  ``k`` and each array is sorted in deletion order (Algorithm 2),
* :func:`verify_maintainer_update` — after every edge update the endpoint
  p-numbers respect the bounds sandwich ``p_ <= pn(v,k) <= min(p̂, p̃)``
  (Defs. 5-7) and, on small graphs, the whole index re-validates,
* :func:`verify_maintainer_query` — KP-Index answers equal from-scratch
  :func:`repro.core.kpcore.kp_core_vertices`.

A violated contract raises :class:`~repro.errors.ContractViolationError`
— always a library bug, never user error.  With the environment variable
unset, each decorated call costs exactly one cached boolean check.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Iterable, Mapping, TypeVar

from repro.errors import ContractViolationError

__all__ = [
    "ENV_VAR",
    "contracts_active",
    "set_contracts_active",
    "refresh_from_env",
    "check_kp_core_output",
    "check_decomposition",
    "check_bounds_sandwich",
    "check_query_result",
    "check_index_against_scratch",
    "verify_kp_core",
    "verify_decomposition",
    "verify_maintainer_update",
    "verify_maintainer_query",
    "verify_batch_state",
]

#: Environment variable that switches the contract layer on.
ENV_VAR = "REPRO_VERIFY"

#: Full-index checks (re-validation, global lower bounds) only run on
#: graphs at most this many edges; the per-endpoint sandwich always runs.
FULL_CHECK_EDGE_LIMIT = 2000

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_F = TypeVar("_F", bound=Callable[..., Any])


def _env_active(value: str | None) -> bool:
    return value is not None and value.strip().lower() in _TRUTHY


_active: bool = _env_active(os.environ.get(ENV_VAR))


def contracts_active() -> bool:
    """Whether runtime contracts are currently enabled."""
    return _active


def set_contracts_active(enabled: bool) -> bool:
    """Force contracts on/off; returns the previous state (for restoring)."""
    global _active
    previous = _active
    _active = bool(enabled)
    return previous


def refresh_from_env() -> bool:
    """Re-read :data:`ENV_VAR`; returns the resulting state."""
    global _active
    _active = _env_active(os.environ.get(ENV_VAR))
    return _active


# ----------------------------------------------------------------------
# check functions (usable directly; the decorators call into these)
# ----------------------------------------------------------------------
def check_kp_core_output(graph: Any, members: Iterable[Any], k: int, p: float) -> None:
    """Definition 3 postcondition for a computed (k,p)-core vertex set."""
    from repro.core.kpcore import satisfies_kp_constraints

    member_set = set(members)
    if not satisfies_kp_constraints(graph, member_set, k, p):
        raise ContractViolationError(
            f"({k},{p})-core output violates Definition 3: some member "
            "fails the degree or fraction constraint"
        )


def check_decomposition(decomposition: Any) -> None:
    """Algorithm 2 postconditions on a full decomposition.

    Per-array p-numbers must be non-decreasing along the deletion order,
    k-cores must nest, and for every vertex ``pn(v, k)`` must be monotone
    non-increasing in ``k`` (a (k+1,p)-core is also a (k,p)-core witness).
    """
    arrays = decomposition.arrays
    previous_map: Mapping[Any, float] | None = None
    for k in sorted(arrays):
        fixed = arrays[k]
        p_numbers = list(fixed.p_numbers)
        for i in range(1, len(p_numbers)):
            if p_numbers[i] < p_numbers[i - 1]:
                raise ContractViolationError(
                    f"A_{k}: p-numbers not sorted along the deletion order "
                    f"at position {i}"
                )
        current_map = fixed.pn_map()
        if previous_map is not None:
            for v, pn in current_map.items():
                if v not in previous_map:
                    raise ContractViolationError(
                        f"A_{k}: vertex {v!r} is in the {k}-core but missing "
                        f"from the {k - 1}-core (nesting violated)"
                    )
                if pn > previous_map[v]:
                    raise ContractViolationError(
                        f"pn({v!r}, {k}) = {pn} exceeds "
                        f"pn({v!r}, {k - 1}) = {previous_map[v]}; p-numbers "
                        "must be non-increasing in k"
                    )
        previous_map = current_map


def check_bounds_sandwich(
    graph: Any,
    array: Any,
    vertices: Iterable[Any],
    check_lower: bool = False,
) -> None:
    """``p_ <= pn(v, k) <= min(p̂, p̃)`` for ``vertices`` of one ``A_k``.

    ``array`` is a :class:`repro.core.index.KArray` whose vertex set is
    the current k-core.  The upper bounds are Definitions 5/6 (corrected
    forms, see :mod:`repro.core.bounds`); the lower bound — only computed
    with ``check_lower=True``, it costs a full member scan — is the first
    peel level of Algorithm 2: no p-number falls below the minimum
    fraction over the k-core.
    """
    from repro.core.bounds import BoundsCache, fraction_in

    members = array.members_view()
    if not members:
        return
    cache = BoundsCache(graph, members)
    for w in vertices:
        if not array.contains(w):
            continue
        pn = array.p_number(w)
        p_hat = cache.p_hat(w)
        p_tilde = cache.p_tilde(w)
        upper = min(p_hat, p_tilde)
        if pn > upper:
            raise ContractViolationError(
                f"A_{array.k}: pn({w!r}) = {pn} exceeds its upper bound "
                f"min(p_hat={p_hat}, p_tilde={p_tilde}) = {upper}"
            )
    if check_lower:
        p_lower = min(fraction_in(graph, members, w) for w in members)
        for w, pn in zip(array.vertices, array.p_numbers):
            if pn < p_lower:
                raise ContractViolationError(
                    f"A_{array.k}: pn({w!r}) = {pn} falls below the first "
                    f"peel level {p_lower}"
                )


def check_query_result(graph: Any, k: int, p: float, result: Iterable[Any]) -> None:
    """Index answers must equal from-scratch kpCore (Theorem 1 exactness)."""
    from repro.core.kpcore import kp_core_vertices

    answered = set(result)
    recomputed = kp_core_vertices(graph, k, p)
    if answered != recomputed:
        missing = recomputed - answered
        extra = answered - recomputed
        raise ContractViolationError(
            f"({k},{p})-core query disagrees with from-scratch kpCore: "
            f"{len(missing)} missing, {len(extra)} extra "
            f"(e.g. {sorted(map(repr, (missing | extra)))[:3]})"
        )


def check_index_against_scratch(graph: Any, index: Any) -> None:
    """Full semantic equality of an index with a from-scratch rebuild."""
    from repro.core.index import KPIndex

    fresh = KPIndex.build(graph)
    if not index.semantically_equal(fresh):
        raise ContractViolationError(
            "maintained KP-Index differs from a from-scratch rebuild"
        )


# ----------------------------------------------------------------------
# decorators
# ----------------------------------------------------------------------
def verify_kp_core(fn: _F) -> _F:
    """Contract for ``kp_core_vertices(graph, k, p)``-shaped functions."""

    @functools.wraps(fn)
    def wrapper(graph, k, p, *args, **kwargs):
        result = fn(graph, k, p, *args, **kwargs)
        if _active:
            check_kp_core_output(graph, result, k, p)
        return result

    return wrapper  # type: ignore[return-value]


def verify_decomposition(fn: _F) -> _F:
    """Contract for ``kp_core_decomposition(graph)``-shaped functions."""

    @functools.wraps(fn)
    def wrapper(graph, *args, **kwargs):
        result = fn(graph, *args, **kwargs)
        if _active:
            check_decomposition(result)
        return result

    return wrapper  # type: ignore[return-value]


def verify_maintainer_update(fn: _F) -> _F:
    """Contract for ``KPIndexMaintainer.insert_edge`` / ``delete_edge``.

    After the update: endpoint p-numbers respect the bounds sandwich in
    every affected array; on small graphs (``FULL_CHECK_EDGE_LIMIT``)
    additionally the global lower bound and full index validation.
    """

    @functools.wraps(fn)
    def wrapper(self, u, v, *args, **kwargs):
        result = fn(self, u, v, *args, **kwargs)
        if _active:
            _check_maintainer_state(self, (u, v))
        return result

    return wrapper  # type: ignore[return-value]


def verify_maintainer_query(fn: _F) -> _F:
    """Contract for ``KPIndexMaintainer.query(k, p)``."""

    @functools.wraps(fn)
    def wrapper(self, k, p, *args, **kwargs):
        result = fn(self, k, p, *args, **kwargs)
        if _active:
            check_query_result(self.graph, k, p, result)
        return result

    return wrapper  # type: ignore[return-value]


def verify_batch_state(maintainer: Any, endpoints: Iterable[Any]) -> None:
    """Post-``apply_batch`` contract check (no-op unless contracts are on).

    Not a decorator: a batch's endpoints are only known after the update
    iterable is consumed, so :meth:`KPIndexMaintainer.apply_batch` calls
    this explicitly once the batch has been applied.  Runs the same
    bounds-sandwich / full-validation checks as
    :func:`verify_maintainer_update`, over every batch endpoint at once.
    """
    if _active:
        _check_maintainer_state(maintainer, tuple(endpoints))


def _check_maintainer_state(maintainer: Any, endpoints: tuple[Any, Any]) -> None:
    graph = maintainer.graph
    small = graph.num_edges <= FULL_CHECK_EDGE_LIMIT
    k_max = max(
        (maintainer.core_number(w) for w in endpoints if w in graph),
        default=0,
    )
    arrays = maintainer.index.arrays()
    for k in range(2, k_max + 1):
        array = arrays.get(k)
        if array is None or not len(array):
            continue
        check_bounds_sandwich(graph, array, endpoints, check_lower=small)
    if small:
        maintainer.index.validate()
