"""Developer tooling: repo-specific static analysis and runtime contracts.

Two layers keep the library's fragile, repo-wide conventions honest as
new backends of the O(m) peeling kernel appear:

* :mod:`repro.devtools.lint` — a custom AST lint pass with rules
  KP001-KP007 (exact-double fraction discipline, parameter validation,
  snapshot immutability, ``__all__`` hygiene, hot-loop allocations,
  hot-loop metric recording), suppressible per line with
  ``# noqa: KPxxx``.
* :mod:`repro.devtools.contracts` — opt-in runtime invariant contracts
  (``REPRO_VERIFY=1``) re-checking algorithm outputs against the paper's
  definitions, and :mod:`repro.devtools.selfcheck`, which runs the whole
  battery against one graph.

CLI: ``python -m repro lint [PATH ...]`` and
``python -m repro selfcheck [FILE]``.  See ``docs/development.md``.
"""

from repro.devtools.contracts import (
    contracts_active,
    refresh_from_env,
    set_contracts_active,
)
from repro.devtools.lint import lint_file, lint_paths, lint_source
from repro.devtools.selfcheck import selfcheck_graph
from repro.devtools.violations import RULE_CODES, Violation

__all__ = [
    "Violation",
    "RULE_CODES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "contracts_active",
    "set_contracts_active",
    "refresh_from_env",
    "selfcheck_graph",
]
