"""Render lint/analysis findings as text, JSON, or SARIF 2.1.0.

The text format is the classic ``path:line:col: CODE message`` stream
the CLI has always printed.  JSON is a small stable envelope for
scripting.  SARIF 2.1.0 is the interchange format GitHub code scanning
ingests, so CI can surface KP violations as inline annotations.
"""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.devtools.violations import RULE_CODES, Violation

__all__ = [
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "TOOL_NAME",
    "render_text",
    "render_json",
    "sarif_document",
    "render_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def render_text(
    violations: Sequence[Violation], checked: int, out: IO[str]
) -> None:
    """The classic CLI stream plus a one-line summary."""
    for violation in violations:
        out.write(violation.render() + "\n")
    if violations:
        out.write(
            f"{len(violations)} violation(s) in {checked} file(s) checked\n"
        )
    else:
        out.write(f"clean: {checked} file(s) checked\n")


def render_json(violations: Sequence[Violation], checked: int) -> str:
    """A stable JSON envelope for scripting."""
    document = {
        "tool": TOOL_NAME,
        "files_checked": checked,
        "violation_count": len(violations),
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "code": violation.code,
                "message": violation.message,
            }
            for violation in violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def sarif_document(violations: Sequence[Violation]) -> dict:
    """The findings as a SARIF 2.1.0 log object (as a plain dict)."""
    rule_ids = sorted(RULE_CODES)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    results = []
    for violation in violations:
        entry: dict = {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.code in rule_index:
            entry["ruleIndex"] = rule_index[violation.code]
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {"text": RULE_CODES[code]},
                            }
                            for code in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(violations: Sequence[Violation]) -> str:
    return json.dumps(sarif_document(violations), indent=2, sort_keys=True)
