"""Lint driver: walk files, run the KP rules, honour ``# noqa`` comments.

Programmatic API::

    from repro.devtools.lint import lint_source, lint_paths

    violations = lint_source(code, path="snippet.py")
    violations = lint_paths(["src"])

CLI (wired as ``python -m repro lint [PATH ...]``)::

    python -m repro lint src                     # exit 0 iff clean
    python -m repro lint --explain               # list the rule codes
    python -m repro lint --analysis src          # + whole-program KP008-KP012
    python -m repro lint --format sarif src      # machine-readable report
    python -m repro lint --select KP008,KP012 src

Suppression: append ``# noqa: KP001`` (or a comma-separated list, or a
bare ``# noqa`` for every rule) to the offending line, ideally with a
short justification after it.
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import IO, Iterable, Sequence

from repro.devtools.rules import LintRule, default_rules
from repro.devtools.violations import PARSE_ERROR_CODE, RULE_CODES, Violation

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "violation_suppressed",
    "filter_codes",
    "explain",
    "run",
]

_NOQA = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


def _suppressed_codes(line: str) -> frozenset[str] | None:
    """Codes silenced on ``line``: a set, ``frozenset()`` for *all*, or
    ``None`` when the line carries no ``noqa`` at all."""
    match = _NOQA.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()  # bare "# noqa": suppress everything
    return frozenset(code.strip().upper() for code in codes.split(","))


def _is_suppressed(violation: Violation, source_lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    codes = _suppressed_codes(source_lines[violation.line - 1])
    if codes is None:
        return False
    return not codes or violation.code in codes


def violation_suppressed(
    violation: Violation, source_lines: Sequence[str]
) -> bool:
    """Public suppression check, shared with the whole-program analysis
    layer so ``# noqa`` means the same thing for KP001 and KP012."""
    return _is_suppressed(violation, source_lines)


def filter_codes(
    violations: Iterable[Violation],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Violation]:
    """Apply ``--select`` / ``--ignore`` code filters.

    ``select`` keeps only the listed codes; ``ignore`` then drops its
    codes.  Parse errors (KP000) obey the same filters as everything
    else, so ``--select KP008`` really means "only KP008".
    """
    kept = list(violations)
    if select is not None:
        wanted = {code.strip().upper() for code in select}
        kept = [v for v in kept if v.code in wanted]
    if ignore is not None:
        dropped = {code.strip().upper() for code in ignore}
        kept = [v for v in kept if v.code not in dropped]
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[LintRule] | None = None,
) -> list[Violation]:
    """Lint one source string; returns violations sorted by location."""
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"syntax error: {error.msg}",
            )
        ]
    active_rules = default_rules() if rules is None else list(rules)
    violations: list[Violation] = []
    for rule in active_rules:
        for violation in rule.check(tree, path, source_lines):
            if not _is_suppressed(violation, source_lines):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_file(
    path: str | os.PathLike[str], rules: Iterable[LintRule] | None = None
) -> list[Violation]:
    """Lint one file on disk."""
    text_path = os.fspath(path)
    with open(text_path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=text_path, rules=rules)


def iter_python_files(paths: Iterable[str | os.PathLike[str]]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Missing paths raise ``FileNotFoundError`` — a linter that silently
    skips a mistyped path reports a misleading "clean".
    """
    found: list[str] = []
    for entry in paths:
        entry = os.fspath(entry)
        if os.path.isfile(entry):
            found.append(entry)
        elif os.path.isdir(entry):
            for dirpath, dirnames, filenames in os.walk(entry):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        else:
            raise FileNotFoundError(f"no such file or directory: {entry!r}")
    return found


def lint_paths(
    paths: Iterable[str | os.PathLike[str]],
    rules: Iterable[LintRule] | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files and/or directories)."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, rules=rules))
    return violations


def explain(out: IO[str] = sys.stdout) -> None:
    """Print the rule catalogue (code + one-line summary)."""
    for code, summary in sorted(RULE_CODES.items()):
        out.write(f"{code}  {summary}\n")


def run(
    paths: Sequence[str | os.PathLike[str]],
    out: IO[str] = sys.stdout,
    *,
    analysis: bool = False,
    fmt: str = "text",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> int:
    """Lint ``paths`` and print findings; returns a process exit code.

    The tree is walked exactly once: the same file list feeds the
    per-file rules, the (optional) whole-program analysis, and the
    checked-file count in the summary line.

    ``analysis=True`` additionally runs the KP008-KP012 whole-program
    rules; ``fmt`` selects ``text`` (default), ``json``, or ``sarif``
    output; ``select``/``ignore`` filter by rule code.
    """
    try:
        files = iter_python_files(paths)
    except FileNotFoundError as error:
        out.write(f"error: {error}\n")
        return 2
    violations: list[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path))
    if analysis:
        from repro.devtools.analysis import analyze_files

        violations.extend(analyze_files(files))
    violations = filter_codes(violations, select=select, ignore=ignore)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))

    from repro.devtools.reporting import render_json, render_sarif, render_text

    if fmt == "json":
        out.write(render_json(violations, len(files)) + "\n")
    elif fmt == "sarif":
        out.write(render_sarif(violations) + "\n")
    elif fmt == "text":
        render_text(violations, len(files), out)
    else:
        out.write(f"error: unknown format {fmt!r}\n")
        return 2
    return 1 if violations else 0
