"""Deterministic mixed query/update workloads for serving benchmarks.

A workload is a seeded, reproducible interleaving of three op kinds::

    ("query",  k, p)    answer a (k,p)-core query
    ("insert", u, v)    insert edge (u, v)
    ("delete", u, v)    delete edge (u, v)

The generator simulates the edge set as it goes, so every emitted insert
targets an absent pair and every delete targets a present edge — applied
in order by a single writer, no generated update can fail.  Queries draw
``(k, p)`` from the finite grid ``[1, k_max] x {0, 1/p_levels, ..., 1}``;
the finite grid is deliberate: repeated ``(k, p)`` pairs are what
exercise (and measure) the result cache.

``skew`` controls query *locality*.  ``skew=0`` (the default) draws
uniformly.  ``skew=s > 0`` draws Zipf-like: the grid cells are ranked
in a seed-determined shuffle and cell at rank ``r`` carries weight
``1 / r**s`` — real traffic concentrates on few hot keys, and a uniform
spec structurally cannot reward any cache.  Query parameter draws use a
dedicated RNG stream, so two specs differing only in ``skew`` generate
byte-identical update streams for a seed: uniform-vs-zipf rows compare
query locality on the same graph history.

Spec strings are comma-separated ``key=value`` pairs, e.g.::

    ops=400,query=8,insert=1,delete=1,vertices=60,kmax=6,plevels=10,prefill=80,skew=1.2

Omitted keys keep their defaults (see :class:`WorkloadSpec`); the empty
string is the default workload.  ``query``/``insert``/``delete`` are
relative weights of the mixed phase; ``prefill`` inserts come first so
the graph has structure before the mix begins.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, fields
from itertools import accumulate
from typing import Iterator, Sequence

from repro.errors import ParameterError

__all__ = [
    "WorkloadOp",
    "WorkloadSpec",
    "generate_workload",
    "split_workload",
    "iter_query_ops",
]

#: One workload entry: ("query", k, p) or ("insert"/"delete", u, v).
WorkloadOp = tuple  # type: ignore[type-arg]

_INT_KEYS = {"ops", "vertices", "kmax", "plevels", "prefill", "batch"}
_WEIGHT_KEYS = {"query", "insert", "delete"}


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated workload (all knobs, with defaults)."""

    ops: int = 400
    query: float = 8.0
    insert: float = 1.0
    delete: float = 1.0
    vertices: int = 60
    kmax: int = 6
    plevels: int = 10
    prefill: int = 80
    skew: float = 0.0
    #: Updates are applied in coalesced groups of this size: ``1`` routes
    #: each update through the sequential path (Algorithms 4/5 per edge),
    #: ``B > 1`` through :meth:`KPCoreServer.apply_batch` (one re-peel
    #: per affected array per group).  Purely an *application* knob — the
    #: generated op stream is identical for every ``batch`` value.
    batch: int = 1

    def __post_init__(self) -> None:
        if self.skew < 0:
            raise ParameterError(f"skew must be >= 0, got {self.skew}")
        if self.batch < 1:
            raise ParameterError(f"batch must be >= 1, got {self.batch}")
        if self.ops < 0 or self.prefill < 0:
            raise ParameterError("ops and prefill must be >= 0")
        if self.vertices < 2:
            raise ParameterError(
                f"vertices must be >= 2, got {self.vertices}"
            )
        if self.kmax < 1:
            raise ParameterError(f"kmax must be >= 1, got {self.kmax}")
        if self.plevels < 1:
            raise ParameterError(f"plevels must be >= 1, got {self.plevels}")
        weights = (self.query, self.insert, self.delete)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ParameterError(
                "query/insert/delete weights must be >= 0 and not all zero"
            )

    @classmethod
    def parse(cls, spec: str) -> "WorkloadSpec":
        """Build a spec from a ``key=value,key=value`` string."""
        known = {f.name for f in fields(cls)}
        values: dict[str, float | int] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, raw = chunk.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ParameterError(
                    f"bad workload spec item {chunk!r} "
                    f"(known keys: {', '.join(sorted(known))})"
                )
            try:
                values[key] = (
                    int(raw) if key in _INT_KEYS else float(raw)
                )
            except ValueError:
                raise ParameterError(
                    f"bad workload spec value in {chunk!r}"
                ) from None
        return cls(**values)  # type: ignore[arg-type]

    def to_string(self) -> str:
        """The canonical spec string (parses back to an equal spec)."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            rendered = str(value) if f.name in _INT_KEYS else f"{value:g}"
            parts.append(f"{f.name}={rendered}")
        return ",".join(parts)

    def fingerprint(self) -> str:
        """Short stable digest of the canonical spec string.

        Bench writers stamp results with this so ``repro bench diff``
        can tell at a glance whether two entries ran the same workload
        shape (the seed is recorded separately).
        """
        digest = hashlib.sha256(self.to_string().encode("utf-8"))
        return digest.hexdigest()[:12]


class _EdgeMirror:
    """The generator's model of the graph: O(1) random present edge."""

    def __init__(self) -> None:
        self._edges: list[tuple[int, int]] = []
        self._pos: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: tuple[int, int]) -> bool:
        return edge in self._pos

    def add(self, edge: tuple[int, int]) -> None:
        self._pos[edge] = len(self._edges)
        self._edges.append(edge)

    def remove_random(self, rng: random.Random) -> tuple[int, int]:
        index = rng.randrange(len(self._edges))
        edge = self._edges[index]
        last = self._edges[-1]
        self._edges[index] = last
        self._pos[last] = index
        self._edges.pop()
        del self._pos[edge]
        return edge


class _QuerySampler:
    """Seeded ``(k, p)`` draws: uniform at ``skew=0``, Zipf otherwise.

    For ``skew=s > 0`` the ``kmax * (plevels + 1)`` grid cells are
    ranked by a seed-determined shuffle and the cell at rank ``r``
    (1-based) carries weight ``1 / r**s`` — the standard Zipf popularity
    law over an arbitrary key ordering.  The shuffle makes the hot set
    a function of the seed rather than always favouring small ``k``.
    """

    def __init__(self, spec: WorkloadSpec, qrng: random.Random) -> None:
        self._spec = spec
        self._qrng = qrng
        if spec.skew == 0:
            self._cells: list[tuple[int, float]] | None = None
            self._cum: list[float] | None = None
            return
        cells = [
            (k, level / spec.plevels)
            for k in range(1, spec.kmax + 1)
            for level in range(spec.plevels + 1)
        ]
        qrng.shuffle(cells)
        self._cells = cells
        self._cum = list(
            accumulate(
                1.0 / rank**spec.skew for rank in range(1, len(cells) + 1)
            )
        )

    def draw(self) -> tuple[int, float]:
        if self._cells is None:
            spec = self._spec
            k = self._qrng.randint(1, spec.kmax)
            p = self._qrng.randint(0, spec.plevels) / spec.plevels
            return k, p
        return self._qrng.choices(self._cells, cum_weights=self._cum)[0]


def _random_absent_pair(
    rng: random.Random, mirror: _EdgeMirror, n: int
) -> tuple[int, int] | None:
    max_edges = n * (n - 1) // 2
    if len(mirror) >= max_edges:
        return None
    while True:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge not in mirror:
            return edge


def generate_workload(
    spec: WorkloadSpec | str, seed: int = 0
) -> list[WorkloadOp]:
    """The deterministic op sequence for ``spec`` at ``seed``."""
    if isinstance(spec, str):
        spec = WorkloadSpec.parse(spec)
    rng = random.Random(seed)
    # Query parameters come from their own stream so specs differing
    # only in skew emit byte-identical update sequences for a seed.
    qrng = random.Random(f"{seed}:query")
    sampler = _QuerySampler(spec, qrng)
    mirror = _EdgeMirror()
    ops: list[WorkloadOp] = []

    def emit_insert() -> bool:
        edge = _random_absent_pair(rng, mirror, spec.vertices)
        if edge is None:
            return False
        mirror.add(edge)
        ops.append(("insert", edge[0], edge[1]))
        return True

    def emit_delete() -> bool:
        if not len(mirror):
            return False
        u, v = mirror.remove_random(rng)
        ops.append(("delete", u, v))
        return True

    for _ in range(spec.prefill):
        if not emit_insert():
            break
    kinds = ("query", "insert", "delete")
    weights = (spec.query, spec.insert, spec.delete)
    for _ in range(spec.ops):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "query":
            k, p = sampler.draw()
            ops.append(("query", k, p))
        elif kind == "insert":
            # A complete graph degrades inserts to deletes (and an empty
            # one degrades deletes to inserts below) so the op count is
            # honoured whatever the density does.
            emit_insert() or emit_delete()
        else:
            emit_delete() or emit_insert()
    return ops


def split_workload(
    ops: Sequence[WorkloadOp],
) -> tuple[list[tuple[int, float]], list[WorkloadOp]]:
    """Partition into query pairs and update ops, each in stream order."""
    queries: list[tuple[int, float]] = []
    updates: list[WorkloadOp] = []
    for op in ops:
        if op[0] == "query":
            queries.append((op[1], op[2]))
        else:
            updates.append(op)
    return queries, updates


def iter_query_ops(
    ops: Sequence[WorkloadOp],
) -> Iterator[tuple[int, float]]:
    """Just the ``(k, p)`` pairs of a workload, in order."""
    for op in ops:
        if op[0] == "query":
            yield (op[1], op[2])
