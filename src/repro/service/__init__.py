"""Durability layer around KP-Index maintenance (the Sec. VI service).

The maintenance algorithms (Algorithms 4-5) keep an already-built index
exact under edge updates; this package makes that state *survive the
process*:

* :mod:`~repro.service.journal` — an append-only, fsync-per-batch JSONL
  write-ahead journal of edge updates, tolerant of a torn final line,
* :mod:`~repro.service.stream` — parsing of edge-update stream files
  (``+ u v`` / ``- u v`` lines, bare pairs insert),
* :mod:`~repro.service.durable` — :class:`~repro.service.durable.
  DurableMaintainer`: periodic atomic checkpoints (graph edge list +
  v2 index snapshot + manifest), write-ahead journaling of every update,
  and crash recovery by checkpoint-load + journal-tail replay,
* :mod:`~repro.service.server` — :class:`~repro.service.server.
  KPCoreServer`: thread-safe concurrent query serving over a
  ``DurableMaintainer`` with a reader-writer lock and an LRU result
  cache keyed by per-``A_k`` version counters (the Thm. 2/6/7 skip
  logic doubling as the invalidation oracle),
* :mod:`~repro.service.workload` — seeded deterministic mixed
  query/insert/delete workloads for soak tests and ``python -m repro
  index serve-bench``.

Full rebuilds (O(m) Batagelj-Zaveršnik + Algorithm 2) stay the last
resort: recovery replays only the journal tail on top of the last good
checkpoint.  See ``docs/persistence.md`` for formats and procedures.
"""

from repro.service.durable import (
    CHECKPOINT_EVERY_DEFAULT,
    ApplyReport,
    DurableMaintainer,
    ErrorPolicy,
    RecoveryReport,
    ServiceStats,
)
from repro.service.journal import (
    JournalRecord,
    UpdateJournal,
    read_journal,
)
from repro.service.server import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_MIN_ANSWER_SIZE,
    CacheStats,
    KPCoreServer,
    QueryCache,
    RWLock,
)
from repro.service.stream import iter_update_stream, read_update_stream
from repro.service.workload import (
    WorkloadSpec,
    generate_workload,
    split_workload,
)

__all__ = [
    "DurableMaintainer",
    "KPCoreServer",
    "QueryCache",
    "CacheStats",
    "RWLock",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MIN_ANSWER_SIZE",
    "WorkloadSpec",
    "generate_workload",
    "split_workload",
    "ApplyReport",
    "ErrorPolicy",
    "RecoveryReport",
    "ServiceStats",
    "CHECKPOINT_EVERY_DEFAULT",
    "JournalRecord",
    "UpdateJournal",
    "read_journal",
    "iter_update_stream",
    "read_update_stream",
]
