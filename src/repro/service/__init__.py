"""Durability layer around KP-Index maintenance (the Sec. VI service).

The maintenance algorithms (Algorithms 4-5) keep an already-built index
exact under edge updates; this package makes that state *survive the
process*:

* :mod:`~repro.service.journal` — an append-only, fsync-per-batch JSONL
  write-ahead journal of edge updates, tolerant of a torn final line,
* :mod:`~repro.service.stream` — parsing of edge-update stream files
  (``+ u v`` / ``- u v`` lines, bare pairs insert),
* :mod:`~repro.service.durable` — :class:`~repro.service.durable.
  DurableMaintainer`: periodic atomic checkpoints (graph edge list +
  v2 index snapshot + manifest), write-ahead journaling of every update,
  and crash recovery by checkpoint-load + journal-tail replay.

Full rebuilds (O(m) Batagelj-Zaveršnik + Algorithm 2) stay the last
resort: recovery replays only the journal tail on top of the last good
checkpoint.  See ``docs/persistence.md`` for formats and procedures.
"""

from repro.service.durable import (
    CHECKPOINT_EVERY_DEFAULT,
    ApplyReport,
    DurableMaintainer,
    ErrorPolicy,
    RecoveryReport,
    ServiceStats,
)
from repro.service.journal import (
    JournalRecord,
    UpdateJournal,
    read_journal,
)
from repro.service.stream import iter_update_stream, read_update_stream

__all__ = [
    "DurableMaintainer",
    "ApplyReport",
    "ErrorPolicy",
    "RecoveryReport",
    "ServiceStats",
    "CHECKPOINT_EVERY_DEFAULT",
    "JournalRecord",
    "UpdateJournal",
    "read_journal",
    "iter_update_stream",
    "read_update_stream",
]
