"""Durable KP-Index maintenance: checkpoints, journal replay, recovery.

:class:`DurableMaintainer` wraps a :class:`~repro.core.maintenance.
KPIndexMaintainer` with an on-disk state directory::

    DIR/
      MANIFEST.json                  <- atomic pointer to the live checkpoint
      checkpoint-<seq>.graph.txt     <- edge list at the checkpoint cut
      checkpoint-<seq>.index.json    <- v2 index snapshot (fingerprinted)
      journal.jsonl                  <- write-ahead journal (tail > seq)

The invariants that make crashes survivable:

1. **Write-ahead**: every edge update is appended to the journal (and
   flushed) *before* Algorithms 4/5 touch the in-memory index, via a
   :attr:`~repro.core.maintenance.KPIndexMaintainer.update_hooks` hook;
   the journal is fsynced once per applied batch and before every
   checkpoint.
2. **Atomic checkpoints**: the graph edge list and the index snapshot are
   written to versioned filenames, each through temp-file +
   ``os.replace``; only then is ``MANIFEST.json`` atomically replaced to
   point at them.  A crash at *any* intermediate point leaves the
   previous manifest/checkpoint pair fully intact.
3. **Recovery = checkpoint + tail replay**: opening a directory loads the
   manifest's checkpoint (fingerprint-verified against the reloaded
   graph), then replays exactly the journal records with ``seq`` greater
   than the checkpoint cut.  Replay skips records whose application
   fails with a :class:`~repro.errors.GraphError` (an update journaled
   but never applied, or a no-op duplicate) — deterministic, because
   direct application enforces the same rule.

Vertex labels must survive both JSON and edge-list text round-trips: use
ints or whitespace-free strings (mixing the two in one graph is not
supported by the text format and is rejected at checkpoint time).
"""

from __future__ import annotations

import enum
import io
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import (
    GraphError,
    IndexPersistenceError,
    ParameterError,
)
from repro.graph.adjacency import Graph, Vertex
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.io import read_edge_list, write_edge_list
from repro.core.index import KPIndex
from repro.core.maintenance import KPIndexMaintainer, MaintenanceMode
from repro.core.peel_engines import DEFAULT_ENGINE
from repro.obs import names as metric
from repro.obs.instrumentation import get_collector
from repro.service.journal import (
    OP_BATCH,
    OP_DELETE,
    OP_INSERT,
    JournalRecord,
    UpdateJournal,
    read_journal,
)
from repro.service.stream import UpdateOp

__all__ = [
    "MANIFEST_NAME",
    "JOURNAL_NAME",
    "CHECKPOINT_EVERY_DEFAULT",
    "ErrorPolicy",
    "ServiceStats",
    "ApplyReport",
    "RecoveryReport",
    "DurableMaintainer",
]

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
_MANIFEST_FORMAT_VERSION = 1
CHECKPOINT_EVERY_DEFAULT = 100


class ErrorPolicy(enum.Enum):
    """What :meth:`DurableMaintainer.apply` does with a failing update."""

    #: Re-raise immediately (after committing the journal); the directory
    #: stays consistent and the failed record is skipped on replay.
    FAIL = "fail"
    #: Count the failure in :class:`ServiceStats` and keep going.
    SKIP = "skip"

    @classmethod
    def coerce(cls, value: "ErrorPolicy | str") -> "ErrorPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ParameterError(
                f"unknown error policy {value!r} (expected 'fail' or 'skip')"
            ) from None


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`DurableMaintainer` instance."""

    journaled: int = 0
    applied: int = 0
    skipped: int = 0
    checkpoints: int = 0
    replayed: int = 0
    recoveries: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class ApplyReport:
    """Summary of one :meth:`DurableMaintainer.apply` batch."""

    applied: int
    skipped: int
    checkpoints: int


@dataclass(frozen=True)
class RecoveryReport:
    """What opening an existing state directory had to do."""

    checkpoint_seq: int
    replayed: int
    skipped: int


def _atomic_write_text(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class DurableMaintainer:
    """A :class:`KPIndexMaintainer` whose state survives the process.

    Opening a directory with existing state *is* recovery: the last good
    checkpoint is loaded and the journal tail replayed (see
    :attr:`recovery`).  A directory without state starts from the empty
    graph — the pure update-stream deployment.

    Parameters
    ----------
    directory:
        The state directory (created on demand unless ``must_exist``).
    checkpoint_every:
        Write a checkpoint after this many applied updates.
    on_error:
        :class:`ErrorPolicy` (or its string value) for failing updates in
        :meth:`apply`.
    mode / strict / core_backend:
        Forwarded to :class:`~repro.core.maintenance.KPIndexMaintainer`.
    must_exist:
        Refuse to initialize a fresh directory — ``index recover`` uses
        this so a typo'd path errors instead of creating empty state.
    fault_hook:
        Test-only fault injection: called with a stage label at each
        point of the checkpoint protocol; raising from it simulates a
        crash at that point.
    """

    def __init__(
        self,
        directory: str,
        checkpoint_every: int = CHECKPOINT_EVERY_DEFAULT,
        on_error: ErrorPolicy | str = ErrorPolicy.FAIL,
        mode: MaintenanceMode = MaintenanceMode.RANGE,
        strict: bool = False,
        core_backend: str = "traversal",
        must_exist: bool = False,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.directory = os.fspath(directory)
        self.checkpoint_every = checkpoint_every
        self.policy = ErrorPolicy.coerce(on_error)
        self.stats = ServiceStats()
        self.recovery: RecoveryReport | None = None
        self._fault_hook = fault_hook
        self._since_checkpoint = 0
        self._closed = False

        manifest_path = self._path(MANIFEST_NAME)
        journal_path = self._path(JOURNAL_NAME)
        has_state = os.path.exists(manifest_path) or os.path.exists(journal_path)
        if must_exist and not has_state:
            raise IndexPersistenceError(
                "no durable index state (no manifest, no journal)",
                path=self.directory,
            )
        os.makedirs(self.directory, exist_ok=True)

        manifest = self._read_manifest()
        checkpoint_seq = -1
        graph = Graph()
        index: KPIndex | None = None
        if manifest is not None:
            checkpoint_seq, graph, index = self._load_checkpoint(manifest)
        self.maintainer = KPIndexMaintainer(
            graph,
            mode=mode,
            strict=strict,
            core_backend=core_backend,
            index=index,
        )
        tail = read_journal(journal_path, after_seq=checkpoint_seq)
        replay_skipped = self._replay(tail)
        if has_state:
            self.stats.recoveries += 1
            self.recovery = RecoveryReport(
                checkpoint_seq=checkpoint_seq,
                replayed=len(tail),
                skipped=replay_skipped,
            )
            obs = get_collector()
            if obs is not None:
                obs.inc(metric.SERVICE_RECOVERIES)
                obs.add(metric.SERVICE_REPLAYED, len(tail))
        next_seq = checkpoint_seq + 1
        if tail:
            next_seq = max(next_seq, tail[-1].seq + 1)
        self._journal = UpdateJournal(journal_path, start_seq=next_seq)
        # Write-ahead hook: journal every update *before* it is applied,
        # including direct insert_edge/delete_edge calls on `maintainer`.
        self.maintainer.update_hooks.append(self._journal_hook)
        # Batched write-ahead hook: a coalesced batch journals as one
        # atomic single-line record (apply_batch fires batch_hooks, never
        # the per-edge update_hooks, so batches are not double-logged).
        self.maintainer.batch_hooks.append(self._batch_journal_hook)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self.maintainer.graph

    @property
    def index(self) -> KPIndex:
        return self.maintainer.index

    @property
    def last_checkpoint_seq(self) -> int:
        manifest = self._read_manifest()
        return -1 if manifest is None else int(manifest["seq"])

    def query(self, k: int, p: float) -> list[Vertex]:
        return self.maintainer.query(k, p)

    def query_slice(self, k: int, p: float) -> tuple[Vertex, ...]:
        """The stored answer tuple for ``(k, p)`` (shared; do not mutate)."""
        return self.maintainer.query_slice(k, p)

    # ------------------------------------------------------------------
    # the update path
    # ------------------------------------------------------------------
    def _journal_hook(self, op: str, u: Vertex, v: Vertex) -> None:
        self._journal.append(op, u, v)
        self.stats.journaled += 1
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.SERVICE_JOURNAL_RECORDS)

    def _batch_journal_hook(
        self, ops: Sequence[tuple[str, Vertex, Vertex]]
    ) -> None:
        self._journal.append_batch(ops)
        self.stats.journaled += 1
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.SERVICE_JOURNAL_RECORDS)

    def _apply_one(self, op: str, u: Vertex, v: Vertex) -> None:
        if op == OP_INSERT:
            self.maintainer.insert_edge(u, v)
        elif op == OP_DELETE:
            self.maintainer.delete_edge(u, v)
        else:
            raise ParameterError(f"unknown update op {op!r}")

    def apply(self, updates: Iterable[UpdateOp]) -> ApplyReport:
        """Apply a batch of updates with journaling and checkpointing.

        Each update is journaled (write-ahead) and applied; every
        ``checkpoint_every`` applied updates a checkpoint is written.  The
        journal is fsynced when the batch ends, whether it ends by
        completion or — under :attr:`ErrorPolicy.FAIL` — by re-raising the
        first failing update.  Failing updates are journaled too; replay
        skips them deterministically.
        """
        self._ensure_open()
        applied = skipped = checkpoints = 0
        try:
            for op, u, v in updates:
                try:
                    self._apply_one(op, u, v)
                except GraphError:
                    self.stats.skipped += 1
                    skipped += 1
                    if self.policy is ErrorPolicy.FAIL:
                        raise
                    continue
                self.stats.applied += 1
                applied += 1
                self._since_checkpoint += 1
                if self._since_checkpoint >= self.checkpoint_every:
                    self.checkpoint()
                    checkpoints += 1
        finally:
            self._journal.commit()
        return ApplyReport(
            applied=applied, skipped=skipped, checkpoints=checkpoints
        )

    def apply_batch(
        self,
        updates: Iterable[UpdateOp],
        *,
        engine: str = DEFAULT_ENGINE,
        workers: int = 1,
    ) -> ApplyReport:
        """Apply a coalesced batch: one journal record, one fsync, one
        checkpoint decision.

        The batch is handed to
        :meth:`~repro.core.maintenance.KPIndexMaintainer.apply_batch`,
        which validates the *whole* sequence before mutating anything and
        journals it (through the batch hook) as a single atomic
        single-line record.  Failure semantics are therefore
        all-or-nothing: a :class:`~repro.errors.GraphError` means nothing
        was journaled and nothing was applied — under
        :attr:`ErrorPolicy.SKIP` the entire batch counts as skipped,
        under :attr:`ErrorPolicy.FAIL` it re-raises.  At most one
        checkpoint is taken per batch, after the whole batch has applied.
        """
        self._ensure_open()
        ops = list(updates)
        applied = skipped = checkpoints = 0
        try:
            try:
                report = self.maintainer.apply_batch(
                    ops, engine=engine, workers=workers
                )
            except GraphError:
                self.stats.skipped += len(ops)
                skipped = len(ops)
                if self.policy is ErrorPolicy.FAIL:
                    raise
            else:
                applied = report.applied
                self.stats.applied += report.applied
                self._since_checkpoint += report.applied
                if self._since_checkpoint >= self.checkpoint_every:
                    self.checkpoint()
                    checkpoints = 1
        finally:
            self._journal.commit()
        return ApplyReport(
            applied=applied, skipped=skipped, checkpoints=checkpoints
        )

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal and apply one insertion (no automatic checkpoint)."""
        self._ensure_open()
        try:
            self._apply_one(OP_INSERT, u, v)
            self.stats.applied += 1
            self._since_checkpoint += 1
        finally:
            self._journal.commit()

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal and apply one deletion (no automatic checkpoint)."""
        self._ensure_open()
        try:
            self._apply_one(OP_DELETE, u, v)
            self.stats.applied += 1
            self._since_checkpoint += 1
        finally:
            self._journal.commit()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _fault(self, stage: str) -> None:
        if self._fault_hook is not None:
            self._fault_hook(stage)

    def checkpoint(self) -> int:
        """Write a full checkpoint; returns the sequence cut it covers.

        Protocol order (each file write is individually atomic):
        journal fsync -> graph edge list -> index snapshot -> manifest
        replace -> journal compaction -> stale-file cleanup.  The
        manifest replace is the commit point; everything after it is
        hygiene that recovery does not depend on.
        """
        self._ensure_open()
        graph = self.maintainer.graph
        seq = self._journal.last_seq
        self._journal.commit()
        self._fault("journal-committed")

        labels_int = [isinstance(v, int) for v in graph.vertices()]
        if labels_int and any(labels_int) and not all(labels_int):
            raise IndexPersistenceError(
                "graphs mixing int and non-int vertex labels cannot be "
                "checkpointed (the edge-list text format loses the types)",
                path=self.directory,
            )
        int_vertices = all(labels_int)
        isolated = [v for v in graph.vertices() if graph.degree(v) == 0]

        graph_name = f"checkpoint-{seq}.graph.txt"
        index_name = f"checkpoint-{seq}.index.json"
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        _atomic_write_text(self._path(graph_name), buffer.getvalue())
        self._fault("graph-written")
        self.maintainer.index.save(
            self._path(index_name), fingerprint=graph_fingerprint(graph)
        )
        self._fault("index-written")

        manifest = {
            "format_version": _MANIFEST_FORMAT_VERSION,
            "seq": seq,
            "graph": graph_name,
            "index": index_name,
            "int_vertices": int_vertices,
            "isolated": isolated,
        }
        self._fault("before-manifest")
        _atomic_write_text(
            self._path(MANIFEST_NAME),
            json.dumps(manifest, separators=(",", ":")),
        )
        self._fault("manifest-written")

        self._compact_journal(seq)
        self._cleanup_stale({graph_name, index_name})
        self.stats.checkpoints += 1
        self._since_checkpoint = 0
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.SERVICE_CHECKPOINTS)
        return seq

    def _compact_journal(self, cut_seq: int) -> None:
        """Drop journal records the manifest's checkpoint now covers."""
        next_seq = self._journal.next_seq
        self._journal.close()
        tail = read_journal(self._path(JOURNAL_NAME), after_seq=cut_seq)
        self._fault("compaction")
        lines = "".join(record.to_line() + "\n" for record in tail)
        _atomic_write_text(self._path(JOURNAL_NAME), lines)
        self._journal = UpdateJournal(
            self._path(JOURNAL_NAME), start_seq=next_seq
        )

    def _cleanup_stale(self, keep: set[str]) -> None:
        for name in os.listdir(self.directory):
            if name.startswith("checkpoint-") and name not in keep:
                try:
                    os.unlink(self._path(name))
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # recovery internals
    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _read_manifest(self) -> dict | None:
        path = self._path(MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        try:
            manifest = json.loads(text)
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not an object")
            version = manifest["format_version"]
            if version != _MANIFEST_FORMAT_VERSION:
                raise ValueError(f"unsupported manifest version {version!r}")
            int(manifest["seq"])
            str(manifest["graph"])
            str(manifest["index"])
        except (KeyError, TypeError, ValueError) as error:
            raise IndexPersistenceError(
                f"corrupt manifest: {error}", path=path
            ) from error
        return manifest

    def _load_checkpoint(
        self, manifest: dict
    ) -> tuple[int, Graph, KPIndex]:
        seq = int(manifest["seq"])
        graph_path = self._path(str(manifest["graph"]))
        index_path = self._path(str(manifest["index"]))
        try:
            graph = read_edge_list(
                graph_path, int_vertices=bool(manifest.get("int_vertices", True))
            )
        except FileNotFoundError as error:
            raise IndexPersistenceError(
                f"manifest references missing graph file {manifest['graph']!r}",
                path=self.directory,
            ) from error
        for v in manifest.get("isolated", []):
            graph.add_vertex(v)
        try:
            index = KPIndex.load(index_path)
        except FileNotFoundError as error:
            raise IndexPersistenceError(
                f"manifest references missing index file {manifest['index']!r}",
                path=self.directory,
            ) from error
        if index.fingerprint is None:
            raise IndexPersistenceError(
                "checkpoint index snapshot carries no graph fingerprint",
                path=index_path,
            )
        if not index.fingerprint.matches(graph):
            raise IndexPersistenceError(
                "checkpoint graph does not match the index fingerprint "
                f"(expected n={index.fingerprint.num_vertices} "
                f"m={index.fingerprint.num_edges}, loaded n={graph.num_vertices} "
                f"m={graph.num_edges})",
                path=self.directory,
            )
        return seq, graph, index

    def _replay(self, tail: list[JournalRecord]) -> int:
        """Apply the journal tail; GraphError records are skipped.

        Skipping is sound *and* required: the journal is written ahead of
        application, so a record may describe an update that failed (or
        never ran) before the crash — exactly the updates that raise
        :class:`~repro.errors.GraphError` when replayed.
        """
        skipped = 0
        for record in tail:
            try:
                if record.op == OP_BATCH:
                    # A journaled batch passed whole-batch validation, so
                    # replay is all-or-nothing too: GraphError here means
                    # the record describes a batch that never applied
                    # against *this* state — skip the whole record.
                    self.maintainer.apply_batch(record.ops or ())
                else:
                    self._apply_one(record.op, record.u, record.v)
            except GraphError:
                skipped += 1
        self.stats.replayed += len(tail)
        self.stats.skipped += skipped
        return skipped

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise IndexPersistenceError(
                "durable maintainer is closed", path=self.directory
            )

    def close(self) -> None:
        if not self._closed:
            self._journal.close()
            self._closed = True

    def __enter__(self) -> "DurableMaintainer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
