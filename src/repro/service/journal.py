"""Append-only write-ahead journal of edge updates (JSONL).

One record per line::

    {"op": "insert", "u": 3, "v": 7, "seq": 42}

or, for a coalesced batch journaled as **one atomic record-group**::

    {"op": "batch", "ops": [["insert", 3, 7], ["delete", 1, 2]], "seq": 43}

``seq`` is a strictly increasing global sequence number; a checkpoint
records the last sequence it covers, and recovery replays exactly the
records after it (the *journal tail*).  A batch record consumes a single
sequence number, and — because it is a single line — the torn-final-line
rule below makes it all-or-nothing on disk for free: a crash mid-append
drops the *whole* batch, never a prefix of it.

Durability discipline: :meth:`UpdateJournal.append` writes and flushes the
record to the OS **before** the update is applied to the in-memory index
(the write-ahead property — it is installed as a
:attr:`~repro.core.maintenance.KPIndexMaintainer.update_hooks` hook), and
:meth:`UpdateJournal.commit` fsyncs once per *batch* rather than per
record.  A crash can therefore tear at most the final line of the file;
:func:`read_journal` tolerates exactly that — an unparseable **last** line
is dropped, while an unparseable earlier line means real corruption and
raises :class:`~repro.errors.IndexPersistenceError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import IO, Sequence

from repro.errors import IndexPersistenceError
from repro.graph.adjacency import Vertex

__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "OP_BATCH",
    "JournalRecord",
    "UpdateJournal",
    "read_journal",
]

OP_INSERT = "insert"
OP_DELETE = "delete"
#: Record type of a coalesced batch: one line, one seq, many edge ops.
OP_BATCH = "batch"
_OPS = frozenset((OP_INSERT, OP_DELETE))


@dataclass(frozen=True)
class JournalRecord:
    """One journaled update: a single edge op, or a whole batch.

    For ``op == OP_BATCH`` the edge ops live in ``ops`` (each an
    ``(op, u, v)`` triple) and ``u``/``v`` are ``None``; otherwise
    ``ops`` is ``None`` and ``u``/``v`` carry the single edge.
    """

    op: str
    u: Vertex | None
    v: Vertex | None
    seq: int
    ops: tuple[tuple[str, Vertex, Vertex], ...] | None = None

    def to_line(self) -> str:
        if self.op == OP_BATCH:
            return json.dumps(
                {
                    "op": self.op,
                    "ops": [list(entry) for entry in self.ops or ()],
                    "seq": self.seq,
                },
                separators=(",", ":"),
            )
        return json.dumps(
            {"op": self.op, "u": self.u, "v": self.v, "seq": self.seq},
            separators=(",", ":"),
        )

    @classmethod
    def from_line(
        cls, line: str, line_number: int | None = None
    ) -> "JournalRecord":
        where = "" if line_number is None else f" at line {line_number}"
        try:
            payload = json.loads(line)
            op = payload["op"]
            if op == OP_BATCH:
                ops: list[tuple[str, Vertex, Vertex]] = []
                for entry in payload["ops"]:
                    inner, u, v = entry
                    if inner not in _OPS:
                        raise ValueError(f"unknown batched op {inner!r}")
                    ops.append((inner, u, v))
                return cls(
                    op=op, u=None, v=None,
                    seq=int(payload["seq"]), ops=tuple(ops),
                )
            if op not in _OPS:
                raise ValueError(f"unknown op {op!r}")
            return cls(op=op, u=payload["u"], v=payload["v"], seq=int(payload["seq"]))
        except (KeyError, TypeError, ValueError) as error:
            raise IndexPersistenceError(
                f"corrupt journal record{where}: {line!r} ({error})"
            ) from error


class UpdateJournal:
    """Appender over one journal file.

    ``append`` writes + flushes each record (so the write-ahead ordering
    holds at the OS level); ``commit`` fsyncs everything appended since
    the previous commit — call it once per applied batch and before every
    checkpoint.
    """

    def __init__(self, path: str, start_seq: int = 0) -> None:
        self.path = path
        self._next_seq = start_seq
        self._handle: IO[str] | None = open(path, "a", encoding="utf-8")
        self._pending = 0

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record (or
        ``start_seq - 1`` if nothing has been appended yet)."""
        return self._next_seq - 1

    def append(self, op: str, u: Vertex, v: Vertex) -> JournalRecord:
        if self._handle is None:
            raise IndexPersistenceError(
                "journal is closed", path=self.path
            )
        if op not in _OPS:
            raise IndexPersistenceError(
                f"unknown journal op {op!r}", path=self.path
            )
        record = JournalRecord(op=op, u=u, v=v, seq=self._next_seq)
        self._handle.write(record.to_line() + "\n")
        self._handle.flush()
        self._next_seq += 1
        self._pending += 1
        return record

    def append_batch(
        self, ops: Sequence[tuple[str, Vertex, Vertex]]
    ) -> JournalRecord:
        """Append a coalesced batch as one atomic single-line record.

        The whole batch takes one sequence number and one line, so the
        torn-final-line tolerance of :func:`read_journal` gives it
        all-or-nothing crash semantics without any extra framing.
        """
        if self._handle is None:
            raise IndexPersistenceError(
                "journal is closed", path=self.path
            )
        for op, _, _ in ops:
            if op not in _OPS:
                raise IndexPersistenceError(
                    f"unknown journal op {op!r}", path=self.path
                )
        record = JournalRecord(
            op=OP_BATCH, u=None, v=None,
            seq=self._next_seq, ops=tuple(ops),
        )
        self._handle.write(record.to_line() + "\n")
        self._handle.flush()
        self._next_seq += 1
        self._pending += 1
        return record

    def commit(self) -> int:
        """fsync records appended since the last commit; return how many."""
        committed = self._pending
        if self._handle is not None and committed:
            os.fsync(self._handle.fileno())
        self._pending = 0
        return committed

    def close(self) -> None:
        if self._handle is not None:
            self.commit()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "UpdateJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: str, after_seq: int = -1) -> list[JournalRecord]:
    """Read journal records with ``seq > after_seq``, in order.

    A missing file reads as empty (a fresh deployment has no journal).  A
    torn **final** line — the signature of a crash mid-append — is
    silently dropped; any earlier unparseable line, or a non-increasing
    sequence number, raises :class:`~repro.errors.IndexPersistenceError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.readlines()
    except FileNotFoundError:
        return []
    numbered = [
        (number, line.strip())
        for number, line in enumerate(raw_lines, start=1)
        if line.strip()
    ]
    records: list[JournalRecord] = []
    last = len(numbered) - 1
    previous_seq: int | None = None
    for position, (number, line) in enumerate(numbered):
        try:
            record = JournalRecord.from_line(line, line_number=number)
        except IndexPersistenceError as error:
            if position == last:
                break  # torn tail: the crash interrupted this append
            error.path = path
            raise
        if previous_seq is not None and record.seq <= previous_seq:
            raise IndexPersistenceError(
                f"journal sequence regressed at line {number}: "
                f"{record.seq} after {previous_seq}",
                path=path,
            )
        previous_seq = record.seq
        if record.seq > after_seq:
            records.append(record)
    return records
