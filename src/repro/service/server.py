"""Concurrent query serving with a version-keyed result cache.

:class:`KPCoreServer` turns a :class:`~repro.service.durable.
DurableMaintainer` into a thread-safe serving surface:

* **Reader-writer lock** — any number of query threads proceed
  concurrently; :meth:`apply` / :meth:`insert_edge` / :meth:`delete_edge`
  / :meth:`checkpoint` take exclusive access.  The lock is
  writer-preferring so a steady query stream cannot starve updates.
* **Versioned result cache** — every ``A_k`` carries a monotonic version
  counter (see :meth:`~repro.core.index.KPIndex.version`) that the
  maintenance layer bumps exactly when it mutates the array.  Answers
  are cached under ``(k, p)`` together with the version they were
  computed at; the theorem-driven skip logic of Algorithms 4/5 (Thms.
  2, 6, 7) therefore doubles as the cache-invalidation oracle: an update
  that provably leaves ``A_k`` untouched leaves its cached answers
  serving.  After each write the server eagerly purges every entry whose
  version moved, so the cache never *holds* a stale answer, not merely
  never serves one.
* **Batch queries** — :meth:`query_many` answers a list of ``(k, p)``
  pairs under a single read-lock acquisition.

Consistency guarantees under concurrency:

* A query observes the index state at some write boundary (reads hold
  the read lock across version capture, compute, and cache fill — no
  torn answers).
* A cached entry is served only while ``entry.version ==
  index.version(k)``; both are read under the same read lock.

The cache is in-memory state of the server, not of the durable
directory: restarts begin cold (and versions restart at 0, which is
consistent because the cache restarts empty too).  Metric collection
(``REPRO_OBS=1``) records ``service.cache.hits`` / ``.misses`` /
``.invalidations`` / ``.evictions`` and ``service.server.queries``;
see ``docs/serving.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Vertex
from repro.core.index import KPIndex
from repro.core.pvalue import check_p
from repro.obs import names as metric
from repro.obs.instrumentation import get_collector
from repro.obs.trace import (
    NULL_TRACE_SPAN,
    NullTraceSpan,
    TraceSpan,
    get_tracer,
    maybe_trace_span,
)
from repro.service.durable import ApplyReport, DurableMaintainer
from repro.service.stream import UpdateOp

__all__ = [
    "RWLock",
    "CacheStats",
    "QueryCache",
    "KPCoreServer",
    "DEFAULT_CACHE_SIZE",
]

DEFAULT_CACHE_SIZE = 4096


class RWLock:
    """A writer-preferring readers-writer lock.

    Many readers may hold the lock at once; a writer waits for active
    readers to drain and blocks new readers while it waits (otherwise a
    busy query stream would starve updates forever).  Not reentrant: a
    thread must not acquire the write lock while holding the read lock
    (or vice versa).

    When tracing is on (``REPRO_TRACE=1``), each acquisition records a
    ``trace.lock.*.wait`` event (time blocked before entry) and wraps
    the scope body in a ``trace.lock.*.hold`` span, both attributed to
    the caller-supplied ``site`` label — the data behind the lock-wait /
    lock-hold buckets of the attribution table.  With tracing off, the
    cost is one cached ``None`` check per acquisition.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def _acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def _release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def _acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def _release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self, site: str = "") -> Iterator[None]:
        tracer = get_tracer()
        if tracer is None:
            self._acquire_read()
            try:
                yield
            finally:
                self._release_read()
            return
        wait_start = time.perf_counter()
        self._acquire_read()
        tracer.record(
            metric.TRACE_LOCK_READ_WAIT,
            wait_start,
            time.perf_counter(),
            site=site,
        )
        try:
            with tracer.span(metric.TRACE_LOCK_READ_HOLD, site=site):
                yield
        finally:
            self._release_read()

    @contextmanager
    def write_locked(self, site: str = "") -> Iterator[None]:
        tracer = get_tracer()
        if tracer is None:
            self._acquire_write()
            try:
                yield
            finally:
                self._release_write()
            return
        wait_start = time.perf_counter()
        self._acquire_write()
        tracer.record(
            metric.TRACE_LOCK_WRITE_WAIT,
            wait_start,
            time.perf_counter(),
            site=site,
        )
        try:
            with tracer.span(metric.TRACE_LOCK_WRITE_HOLD, site=site):
                yield
        finally:
            self._release_write()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`QueryCache` (and so of its server)."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class QueryCache:
    """LRU cache of query answers keyed ``(k, p)``, guarded by versions.

    Each entry stores the ``A_k`` version it was computed at.  A lookup
    hits only when the stored version equals the current one; a lookup
    that finds an outdated entry drops it (counted as an invalidation)
    and reports a miss.  :meth:`purge_k` drops every entry of one ``k``
    — the eager path the server runs for each array an update actually
    mutated.  All operations take the internal mutex, so concurrent
    readers may share one cache (the LRU reordering is a mutation even
    on the hit path).
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ParameterError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._mutex = threading.Lock()
        # (k, p) -> (version, answer); insertion order = LRU order.
        self._entries: OrderedDict[
            tuple[int, float], tuple[int, tuple[Vertex, ...]]
        ] = OrderedDict()
        # k -> set of cached p values, for O(|entries of k|) purges.
        self._by_k: dict[int, set[float]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def get(
        self, k: int, p: float, version: int
    ) -> tuple[Vertex, ...] | None:
        """The cached answer for ``(k, p)`` at exactly ``version``."""
        tracer = get_tracer()
        if tracer is None:
            return self._get(k, p, version)
        start = time.perf_counter()
        cached = self._get(k, p, version)
        tracer.record(
            metric.TRACE_CACHE_PROBE,
            start,
            time.perf_counter(),
            k=k,
            p=p,
            hit=cached is not None,
        )
        return cached

    def _get(
        self, k: int, p: float, version: int
    ) -> tuple[Vertex, ...] | None:
        obs = get_collector()
        with self._mutex:
            entry = self._entries.get((k, p))
            if entry is not None and entry[0] == version:
                self._entries.move_to_end((k, p))
                self.hits += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_HITS)
                return entry[1]
            if entry is not None:
                # Outdated leftover (the eager purge runs under the write
                # lock, so this is only reachable through direct cache
                # use); drop it rather than let it linger.
                self._drop(k, p)
                self.invalidations += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_INVALIDATIONS)
            self.misses += 1
            if obs is not None:
                obs.inc(metric.SERVER_CACHE_MISSES)
            return None

    def put(
        self, k: int, p: float, version: int, answer: tuple[Vertex, ...]
    ) -> None:
        tracer = get_tracer()
        if tracer is None:
            self._put(k, p, version, answer)
            return
        start = time.perf_counter()
        self._put(k, p, version, answer)
        tracer.record(
            metric.TRACE_CACHE_FILL,
            start,
            time.perf_counter(),
            k=k,
            p=p,
            answer_size=len(answer),
        )

    def _put(
        self, k: int, p: float, version: int, answer: tuple[Vertex, ...]
    ) -> None:
        obs = get_collector()
        with self._mutex:
            key = (k, p)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (version, answer)
            self._by_k.setdefault(k, set()).add(p)
            while len(self._entries) > self.capacity:
                (old_k, old_p), _ = self._entries.popitem(last=False)
                self._discard_by_k(old_k, old_p)
                self.evictions += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_EVICTIONS)

    def purge_k(self, k: int) -> int:
        """Drop every entry of ``k``; returns how many were dropped."""
        tracer = get_tracer()
        if tracer is None:
            return self._purge_k(k)
        start = time.perf_counter()
        dropped = self._purge_k(k)
        tracer.record(
            metric.TRACE_CACHE_PURGE,
            start,
            time.perf_counter(),
            k=k,
            dropped=dropped,
        )
        return dropped

    def _purge_k(self, k: int) -> int:
        obs = get_collector()
        with self._mutex:
            ps = self._by_k.pop(k, None)
            if not ps:
                return 0
            for p in ps:
                self._entries.pop((k, p), None)
            dropped = len(ps)
            self.invalidations += dropped
            if obs is not None:
                obs.add(metric.SERVER_CACHE_INVALIDATIONS, dropped)
            return dropped

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self._by_k.clear()

    def _drop(self, k: int, p: float) -> None:
        self._entries.pop((k, p), None)
        self._discard_by_k(k, p)

    def _discard_by_k(self, k: int, p: float) -> None:
        ps = self._by_k.get(k)
        if ps is not None:
            ps.discard(p)
            if not ps:
                del self._by_k[k]

    def contents(self) -> dict[tuple[int, float], int]:
        """``{(k, p): version}`` of everything cached (tests/debugging)."""
        with self._mutex:
            return {key: entry[0] for key, entry in self._entries.items()}

    def stats(self) -> CacheStats:
        with self._mutex:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)


class KPCoreServer:
    """Thread-safe (k,p)-core query serving over a durable index.

    Parameters
    ----------
    durable:
        The :class:`~repro.service.durable.DurableMaintainer` to serve
        from.  The server takes ownership of its write path: route every
        update through :meth:`apply` / :meth:`insert_edge` /
        :meth:`delete_edge` (writing to ``durable`` directly would bypass
        both the write lock and the cache purge).
    cache_size:
        Capacity of the LRU result cache.
    cache_enabled:
        ``False`` serves every query straight from Algorithm 3 — the
        ablation/soak configuration.
    """

    def __init__(
        self,
        durable: DurableMaintainer,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_enabled: bool = True,
    ) -> None:
        self._durable = durable
        self._lock = RWLock()
        self._cache: QueryCache | None = (
            QueryCache(cache_size) if cache_enabled else None
        )
        self._queries = 0
        self._queries_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def durable(self) -> DurableMaintainer:
        return self._durable

    @property
    def index(self) -> KPIndex:
        return self._durable.index

    @property
    def cache_enabled(self) -> bool:
        return self._cache is not None

    @property
    def queries_served(self) -> int:
        with self._queries_mutex:
            return self._queries

    def cache_stats(self) -> CacheStats:
        """Counters of the result cache (all-zero when disabled)."""
        if self._cache is None:
            return CacheStats(
                hits=0, misses=0, invalidations=0, evictions=0,
                size=0, capacity=0,
            )
        return self._cache.stats()

    def cache_contents(self) -> dict[tuple[int, float], int]:
        """``{(k, p): version}`` of the live cache (tests/debugging)."""
        if self._cache is None:
            return {}
        return self._cache.contents()

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(k: int, p: float) -> None:
        if k < 1:
            raise ParameterError(
                f"degree threshold k must be >= 1, got {k}"
            )
        check_p(p)

    def query(self, k: int, p: float) -> list[Vertex]:
        """Vertices of ``C_{k,p}`` on the current graph, cache-assisted.

        Validation runs before the cache is consulted, so out-of-range
        parameters raise (:class:`~repro.errors.ParameterError`) rather
        than ever touching — or poisoning — the cache.
        """
        self._validate(k, p)
        with maybe_trace_span(metric.TRACE_SERVER_QUERY, k=k, p=p) as span:
            with self._lock.read_locked(site="query"):
                return self._answer_locked(k, p, span)

    def query_many(
        self, pairs: Sequence[tuple[int, float]]
    ) -> list[list[Vertex]]:
        """Answer many ``(k, p)`` queries under one read-lock hold.

        All pairs are validated up front; the batch is all-or-nothing
        with respect to validation.  Every answer in the returned list
        reflects the same index state (no write interleaves mid-batch).
        """
        for k, p in pairs:
            self._validate(k, p)
        obs = get_collector()
        if obs is not None:
            obs.observe(metric.SERVER_BATCH_SIZE, len(pairs))
        with maybe_trace_span(
            metric.TRACE_SERVER_QUERY_MANY, pairs=len(pairs)
        ):
            with self._lock.read_locked(site="query_many"):
                tracer = get_tracer()
                if tracer is None:
                    return [self._answer_locked(k, p) for k, p in pairs]
                answers: list[list[Vertex]] = []
                for k, p in pairs:
                    with tracer.span(
                        metric.TRACE_SERVER_QUERY_ONE, k=k, p=p
                    ) as span:
                        answers.append(self._answer_locked(k, p, span))
                return answers

    def _answer_locked(
        self,
        k: int,
        p: float,
        span: TraceSpan | NullTraceSpan = NULL_TRACE_SPAN,
    ) -> list[Vertex]:
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.SERVER_QUERIES)
        with self._queries_mutex:
            self._queries += 1
        cache = self._cache
        if cache is None:
            answer = self._answer_built(k, p)
            span.set("cache_hit", False)
            span.set("answer_size", len(answer))
            return answer
        version = self.index.version(k)
        cached = cache.get(k, p, version)
        span.set("version", version)
        if cached is not None:
            span.set("cache_hit", True)
            span.set("answer_size", len(cached))
            return list(cached)
        answer = self._answer_built(k, p)
        cache.put(k, p, version, tuple(answer))
        span.set("cache_hit", False)
        span.set("answer_size", len(answer))
        return answer

    def _answer_built(self, k: int, p: float) -> list[Vertex]:
        """Run Algorithm 3 for a miss, under a ``trace.query.answer``
        span when tracing is on."""
        tracer = get_tracer()
        if tracer is None:
            return self._durable.query(k, p)
        with tracer.span(metric.TRACE_QUERY_ANSWER, k=k, p=p) as span:
            answer = self._durable.query(k, p)
            span.set("answer_size", len(answer))
            return answer

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def apply(self, updates: Iterable[UpdateOp]) -> ApplyReport:
        """Apply an update batch under the write lock, then purge.

        Delegates to :meth:`DurableMaintainer.apply` (write-ahead
        journaling, periodic checkpoints, the configured error policy)
        and afterwards — still exclusively — drops every cache entry
        whose ``A_k`` version moved.  The purge runs even when the batch
        raises under ``ErrorPolicy.FAIL``: whatever prefix was applied
        has mutated the index for good.
        """
        with maybe_trace_span(metric.TRACE_SERVER_APPLY):
            with self._lock.write_locked(site="apply"):
                before = self.index.versions()
                try:
                    # The WAL contract *requires* journal+fsync inside
                    # the exclusive section: it must be ordered with the
                    # mutation it logs.  noqa KP012: blocking by design.
                    return self._durable.apply(updates)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal, apply, and invalidate for one edge insertion."""
        with maybe_trace_span(metric.TRACE_SERVER_INSERT):
            with self._lock.write_locked(site="insert_edge"):
                before = self.index.versions()
                try:
                    self._durable.insert_edge(u, v)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal, apply, and invalidate for one edge deletion."""
        with maybe_trace_span(metric.TRACE_SERVER_DELETE):
            with self._lock.write_locked(site="delete_edge"):
                before = self.index.versions()
                try:
                    self._durable.delete_edge(u, v)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def checkpoint(self) -> int:
        """Write a durable checkpoint under the write lock.

        Checkpoints do not mutate any ``A_k``, so the cache keeps
        serving across them.
        """
        with maybe_trace_span(metric.TRACE_SERVER_CHECKPOINT):
            with self._lock.write_locked(site="checkpoint"):
                # Checkpoints block writers on purpose; readers drain
                # first because the RWLock prefers writers.
                return self._durable.checkpoint()  # noqa: KP012 atomic checkpoint

    def _purge_changed(self, before: dict[int, int]) -> int:
        cache = self._cache
        if cache is None:
            return 0
        purged = 0
        for k, version in self.index.versions().items():
            if before.get(k, 0) != version:
                purged += cache.purge_k(k)
        return purged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock.write_locked(site="close"):
            self._durable.close()  # noqa: KP012 final flush at shutdown
            if self._cache is not None:
                self._cache.clear()

    def __enter__(self) -> "KPCoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
