"""Concurrent query serving with a version-keyed result cache.

:class:`KPCoreServer` turns a :class:`~repro.service.durable.
DurableMaintainer` into a thread-safe serving surface:

* **Reader-writer lock** — any number of query threads proceed
  concurrently; :meth:`apply` / :meth:`insert_edge` / :meth:`delete_edge`
  / :meth:`checkpoint` take exclusive access.  The lock is
  writer-preferring so a steady query stream cannot starve updates.
* **Versioned result cache** — every ``A_k`` carries a monotonic version
  counter (see :meth:`~repro.core.index.KPIndex.version`) that the
  maintenance layer bumps exactly when it mutates the array.  Answers
  are cached under ``(k, level)`` — the float ``p`` is resolved to its
  canonical grid level once via
  :meth:`~repro.core.index.KPIndex.level_index`, so ``0.3`` and a
  grid-produced ``0.30000000000000004`` share one entry — together with
  the version they were computed at; the theorem-driven skip logic of
  Algorithms 4/5 (Thms. 2, 6, 7) therefore doubles as the
  cache-invalidation oracle: an update that provably leaves ``A_k``
  untouched leaves its cached answers serving.  After each write the
  server eagerly purges every entry whose version moved, so the cache
  never *holds* a stale answer, not merely never serves one.
* **Stored-tuple answers** — :meth:`query` / :meth:`query_many` return
  ``Sequence[Vertex]``: the index's precomputed per-level slice tuple
  (or the cached reference to it), never a per-query list rebuild.  No
  list materialization happens while the read lock is held; callers
  that need a mutable list call ``list(...)`` outside the lock.
* **Cache admission control** — answers smaller than
  ``min_answer_size`` are not admitted (tiny answers are cheaper to
  re-fetch from the slice store than to LRU-shuffle past large ones);
  rejects are counted as ``service.cache.admission_rejects``.  The
  default ``min_answer_size=0`` admits everything.
* **Batch queries** — :meth:`query_many` answers a list of ``(k, p)``
  pairs under a single read-lock acquisition.

Consistency guarantees under concurrency:

* A query observes the index state at some write boundary (reads hold
  the read lock across version capture, compute, and cache fill — no
  torn answers).
* A cached entry is served only while ``entry.version ==
  index.version(k)``; both are read under the same read lock.

The cache is in-memory state of the server, not of the durable
directory: restarts begin cold (and versions restart at 0, which is
consistent because the cache restarts empty too).  Metric collection
(``REPRO_OBS=1``) records ``service.cache.hits`` / ``.misses`` /
``.invalidations`` / ``.evictions`` and ``service.server.queries``;
see ``docs/serving.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Vertex
from repro.core.index import KPIndex
from repro.core.peel_engines import DEFAULT_ENGINE
from repro.core.pvalue import check_p
from repro.obs import names as metric
from repro.obs.instrumentation import get_collector
from repro.obs.trace import (
    NULL_TRACE_SPAN,
    NullTraceSpan,
    TraceSpan,
    get_tracer,
    maybe_trace_span,
)
from repro.service.durable import ApplyReport, DurableMaintainer
from repro.service.stream import UpdateOp

__all__ = [
    "RWLock",
    "CacheStats",
    "QueryCache",
    "KPCoreServer",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MIN_ANSWER_SIZE",
]

DEFAULT_CACHE_SIZE = 4096
DEFAULT_MIN_ANSWER_SIZE = 0


class RWLock:
    """A writer-preferring readers-writer lock.

    Many readers may hold the lock at once; a writer waits for active
    readers to drain and blocks new readers while it waits (otherwise a
    busy query stream would starve updates forever).  Not reentrant: a
    thread must not acquire the write lock while holding the read lock
    (or vice versa).

    When tracing is on (``REPRO_TRACE=1``), each acquisition records a
    ``trace.lock.*.wait`` event (time blocked before entry) and wraps
    the scope body in a ``trace.lock.*.hold`` span, both attributed to
    the caller-supplied ``site`` label — the data behind the lock-wait /
    lock-hold buckets of the attribution table.  With tracing off, the
    cost is one cached ``None`` check per acquisition.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def _acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def _release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def _acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def _release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self, site: str = "") -> Iterator[None]:
        tracer = get_tracer()
        if tracer is None:
            self._acquire_read()
            try:
                yield
            finally:
                self._release_read()
            return
        wait_start = time.perf_counter()
        self._acquire_read()
        tracer.record(
            metric.TRACE_LOCK_READ_WAIT,
            wait_start,
            time.perf_counter(),
            site=site,
        )
        try:
            with tracer.span(metric.TRACE_LOCK_READ_HOLD, site=site):
                yield
        finally:
            self._release_read()

    @contextmanager
    def write_locked(self, site: str = "") -> Iterator[None]:
        tracer = get_tracer()
        if tracer is None:
            self._acquire_write()
            try:
                yield
            finally:
                self._release_write()
            return
        wait_start = time.perf_counter()
        self._acquire_write()
        tracer.record(
            metric.TRACE_LOCK_WRITE_WAIT,
            wait_start,
            time.perf_counter(),
            site=site,
        )
        try:
            with tracer.span(metric.TRACE_LOCK_WRITE_HOLD, site=site):
                yield
        finally:
            self._release_write()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`QueryCache` (and so of its server)."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    admission_rejects: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class QueryCache:
    """LRU cache of answers keyed ``(k, level)``, guarded by versions.

    Keys are canonical integer grid levels (see
    :meth:`~repro.core.index.KPIndex.level_index`), not raw float
    ``p`` values — every float spelling of one level shares one entry.
    Each entry stores the ``A_k`` version it was computed at.  A lookup
    hits only when the stored version equals the current one; a lookup
    that finds an outdated entry drops it (counted as an invalidation)
    and reports a miss.  :meth:`purge_k` drops every entry of one ``k``
    — the eager path the server runs for each array an update actually
    mutated.  Answers shorter than ``min_answer_size`` are refused
    admission (counted as ``admission_rejects``): re-fetching a tiny
    answer from the index's slice store costs about as much as a cache
    hit, so letting it in only churns the LRU order against answers
    that are worth keeping.  All operations take the internal mutex, so
    concurrent readers may share one cache (the LRU reordering is a
    mutation even on the hit path).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        min_answer_size: int = DEFAULT_MIN_ANSWER_SIZE,
    ) -> None:
        if capacity < 1:
            raise ParameterError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if min_answer_size < 0:
            raise ParameterError(
                f"min_answer_size must be >= 0, got {min_answer_size}"
            )
        self.capacity = capacity
        self.min_answer_size = min_answer_size
        self._mutex = threading.Lock()
        # (k, level) -> (version, answer); insertion order = LRU order.
        self._entries: OrderedDict[
            tuple[int, int], tuple[int, tuple[Vertex, ...]]
        ] = OrderedDict()
        # k -> set of cached levels, for O(|entries of k|) purges.
        self._by_k: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.admission_rejects = 0

    def get(
        self, k: int, level: int, version: int
    ) -> tuple[Vertex, ...] | None:
        """The cached answer for ``(k, level)`` at exactly ``version``."""
        tracer = get_tracer()
        if tracer is None:
            # Untraced hit fast path, duplicated from _get to skip one
            # call frame — see _get for why it is safe without the lock.
            key = (k, level)
            entry = self._entries.get(key)
            if entry is not None and entry[0] == version:
                try:
                    self._entries.move_to_end(key)
                except KeyError:
                    pass  # concurrently evicted; the answer stays fresh
                self.hits += 1
                obs = get_collector()
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_HITS)
                return entry[1]
            return self._get(k, level, version)
        start = time.perf_counter()
        cached = self._get(k, level, version)
        tracer.record(
            metric.TRACE_CACHE_PROBE,
            start,
            time.perf_counter(),
            k=k,
            level=level,
            hit=cached is not None,
        )
        return cached

    def _get(
        self, k: int, level: int, version: int
    ) -> tuple[Vertex, ...] | None:
        # Lock-free hit path: C-implemented OrderedDict ops are atomic
        # under the GIL, the entry tuple is immutable, and purges run
        # under the server's exclusive write lock (no concurrent
        # readers then).  The only race left is a concurrent _put
        # evicting the key between the get and the move_to_end — caught
        # below; the already-fetched answer stays valid.  The mutex is
        # reserved for the mutating slow paths (fill, invalidate,
        # purge), which keeps a hit cheaper than recomputing the answer
        # slice — the whole economic case for this cache.  `hits` may
        # undercount by a hair under reader races; it is a statistic,
        # not a correctness input.
        key = (k, level)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == version:
            try:
                self._entries.move_to_end(key)
            except KeyError:
                pass  # concurrently evicted; the answer is still fresh
            self.hits += 1
            obs = get_collector()
            if obs is not None:
                obs.inc(metric.SERVER_CACHE_HITS)
            return entry[1]
        obs = get_collector()
        with self._mutex:
            stale = self._entries.get(key)
            if stale is not None and stale[0] != version:
                # Outdated leftover (the eager purge runs under the write
                # lock, so this is only reachable through direct cache
                # use); drop it rather than let it linger.
                self._drop(k, level)
                self.invalidations += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_INVALIDATIONS)
            self.misses += 1
            if obs is not None:
                obs.inc(metric.SERVER_CACHE_MISSES)
            return None

    def put(
        self, k: int, level: int, version: int, answer: tuple[Vertex, ...]
    ) -> None:
        tracer = get_tracer()
        if tracer is None:
            self._put(k, level, version, answer)
            return
        start = time.perf_counter()
        admitted = self._put(k, level, version, answer)
        tracer.record(
            metric.TRACE_CACHE_FILL,
            start,
            time.perf_counter(),
            k=k,
            level=level,
            answer_size=len(answer),
            admitted=admitted,
        )

    def _put(
        self, k: int, level: int, version: int, answer: tuple[Vertex, ...]
    ) -> bool:
        obs = get_collector()
        with self._mutex:
            if len(answer) < self.min_answer_size:
                self.admission_rejects += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_ADMISSION_REJECTS)
                return False
            key = (k, level)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (version, answer)
            self._by_k.setdefault(k, set()).add(level)
            while len(self._entries) > self.capacity:
                (old_k, old_level), _ = self._entries.popitem(last=False)
                self._discard_by_k(old_k, old_level)
                self.evictions += 1
                if obs is not None:
                    obs.inc(metric.SERVER_CACHE_EVICTIONS)
            return True

    def purge_k(self, k: int) -> int:
        """Drop every entry of ``k``; returns how many were dropped."""
        tracer = get_tracer()
        if tracer is None:
            return self._purge_k(k)
        start = time.perf_counter()
        dropped = self._purge_k(k)
        tracer.record(
            metric.TRACE_CACHE_PURGE,
            start,
            time.perf_counter(),
            k=k,
            dropped=dropped,
        )
        return dropped

    def _purge_k(self, k: int) -> int:
        obs = get_collector()
        with self._mutex:
            levels = self._by_k.pop(k, None)
            if not levels:
                return 0
            for level in levels:
                self._entries.pop((k, level), None)
            dropped = len(levels)
            self.invalidations += dropped
            if obs is not None:
                obs.add(metric.SERVER_CACHE_INVALIDATIONS, dropped)
            return dropped

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self._by_k.clear()

    def _drop(self, k: int, level: int) -> None:
        self._entries.pop((k, level), None)
        self._discard_by_k(k, level)

    def _discard_by_k(self, k: int, level: int) -> None:
        levels = self._by_k.get(k)
        if levels is not None:
            levels.discard(level)
            if not levels:
                del self._by_k[k]

    def contents(self) -> dict[tuple[int, int], int]:
        """``{(k, level): version}`` of everything cached (tests/debug)."""
        with self._mutex:
            return {key: entry[0] for key, entry in self._entries.items()}

    def stats(self) -> CacheStats:
        with self._mutex:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                evictions=self.evictions,
                admission_rejects=self.admission_rejects,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)


class KPCoreServer:
    """Thread-safe (k,p)-core query serving over a durable index.

    Parameters
    ----------
    durable:
        The :class:`~repro.service.durable.DurableMaintainer` to serve
        from.  The server takes ownership of its write path: route every
        update through :meth:`apply` / :meth:`insert_edge` /
        :meth:`delete_edge` (writing to ``durable`` directly would bypass
        both the write lock and the cache purge).
    cache_size:
        Capacity of the LRU result cache.
    cache_enabled:
        ``False`` serves every query straight from Algorithm 3 — the
        ablation/soak configuration.
    min_answer_size:
        Admission threshold: answers with fewer vertices than this are
        served but never cached (see :class:`QueryCache`).  ``0`` (the
        default) admits everything.
    """

    def __init__(
        self,
        durable: DurableMaintainer,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_enabled: bool = True,
        min_answer_size: int = DEFAULT_MIN_ANSWER_SIZE,
    ) -> None:
        self._durable = durable
        # The maintainer's index object is stable for the server's
        # lifetime (updates mutate it in place); binding it here skips
        # two property hops per query on the hot path.
        self._index = durable.index
        self._lock = RWLock()
        self._cache: QueryCache | None = (
            QueryCache(cache_size, min_answer_size=min_answer_size)
            if cache_enabled
            else None
        )
        self._queries = 0
        self._queries_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def durable(self) -> DurableMaintainer:
        return self._durable

    @property
    def index(self) -> KPIndex:
        return self._index

    @property
    def cache_enabled(self) -> bool:
        return self._cache is not None

    @property
    def queries_served(self) -> int:
        with self._queries_mutex:
            return self._queries

    def cache_stats(self) -> CacheStats:
        """Counters of the result cache (all-zero when disabled)."""
        if self._cache is None:
            return CacheStats(
                hits=0, misses=0, invalidations=0, evictions=0,
                admission_rejects=0, size=0, capacity=0,
            )
        return self._cache.stats()

    def cache_contents(self) -> dict[tuple[int, int], int]:
        """``{(k, level): version}`` of the live cache (tests/debug)."""
        if self._cache is None:
            return {}
        return self._cache.contents()

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(k: int, p: float) -> None:
        if k < 1:
            raise ParameterError(
                f"degree threshold k must be >= 1, got {k}"
            )
        check_p(p)

    def query(self, k: int, p: float) -> Sequence[Vertex]:
        """Vertices of ``C_{k,p}`` on the current graph, cache-assisted.

        Returns the index's stored answer tuple (possibly via the
        cache) — treat it as immutable and ``list(...)`` it outside the
        lock if a mutable copy is needed.  Validation runs before the
        cache is consulted, so out-of-range parameters raise
        (:class:`~repro.errors.ParameterError`) rather than ever
        touching — or poisoning — the cache.
        """
        self._validate(k, p)
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.SERVER_QUERIES)
        with self._queries_mutex:
            self._queries += 1
        with maybe_trace_span(metric.TRACE_SERVER_QUERY, k=k, p=p) as span:
            with self._lock.read_locked(site="query"):
                return self._answer_locked(k, p, span)

    def query_many(
        self, pairs: Sequence[tuple[int, float]]
    ) -> list[Sequence[Vertex]]:
        """Answer many ``(k, p)`` queries under one read-lock hold.

        All pairs are validated up front; the batch is all-or-nothing
        with respect to validation.  Every answer in the returned list
        is a stored tuple (see :meth:`query`) reflecting the same index
        state (no write interleaves mid-batch).
        """
        for k, p in pairs:
            self._validate(k, p)
        obs = get_collector()
        if obs is not None:
            obs.observe(metric.SERVER_BATCH_SIZE, len(pairs))
            obs.inc(metric.SERVER_QUERIES, len(pairs))
        with self._queries_mutex:
            self._queries += len(pairs)
        with maybe_trace_span(
            metric.TRACE_SERVER_QUERY_MANY, pairs=len(pairs)
        ):
            with self._lock.read_locked(site="query_many"):
                tracer = get_tracer()
                if tracer is None:
                    return [self._answer_locked(k, p) for k, p in pairs]
                answers: list[Sequence[Vertex]] = []
                for k, p in pairs:
                    with tracer.span(
                        metric.TRACE_SERVER_QUERY_ONE, k=k, p=p
                    ) as span:
                        answers.append(self._answer_locked(k, p, span))
                return answers

    def _answer_locked(
        self,
        k: int,
        p: float,
        span: TraceSpan | NullTraceSpan = NULL_TRACE_SPAN,
    ) -> Sequence[Vertex]:
        # The served-queries counter and obs bump happen once per entry
        # point (query / query_many batch), not here: a mutex hold per
        # answer on the batched read path cost more than a cache hit.
        traced = span is not NULL_TRACE_SPAN
        cache = self._cache
        if cache is None:
            answer = self._answer_built(k, p)
            if traced:
                span.set("cache_hit", False)
                span.set("answer_size", len(answer))
            return answer
        version, level = self._index.answer_key(k, p)
        cached = cache.get(k, level, version)
        if cached is not None:
            if traced:
                span.set("version", version)
                span.set("cache_hit", True)
                span.set("answer_size", len(cached))
            return cached
        answer = self._answer_built(k, p)
        cache.put(k, level, version, answer)
        if traced:
            span.set("version", version)
            span.set("cache_hit", False)
            span.set("answer_size", len(answer))
        return answer

    def _answer_built(self, k: int, p: float) -> tuple[Vertex, ...]:
        """Fetch the stored answer slice for a miss, under a
        ``trace.query.answer`` span when tracing is on."""
        tracer = get_tracer()
        if tracer is None:
            return self._durable.query_slice(k, p)
        with tracer.span(metric.TRACE_QUERY_ANSWER, k=k, p=p) as span:
            answer = self._durable.query_slice(k, p)
            span.set("answer_size", len(answer))
            return answer

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def apply(self, updates: Iterable[UpdateOp]) -> ApplyReport:
        """Apply an update batch under the write lock, then purge.

        Delegates to :meth:`DurableMaintainer.apply` (write-ahead
        journaling, periodic checkpoints, the configured error policy)
        and afterwards — still exclusively — drops every cache entry
        whose ``A_k`` version moved.  The purge runs even when the batch
        raises under ``ErrorPolicy.FAIL``: whatever prefix was applied
        has mutated the index for good.
        """
        with maybe_trace_span(metric.TRACE_SERVER_APPLY):
            with self._lock.write_locked(site="apply"):
                before = self.index.versions()
                try:
                    # The WAL contract *requires* journal+fsync inside
                    # the exclusive section: it must be ordered with the
                    # mutation it logs.  noqa KP012: blocking by design.
                    return self._durable.apply(updates)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def apply_batch(
        self,
        updates: Iterable[UpdateOp],
        *,
        engine: str = DEFAULT_ENGINE,
        workers: int = 1,
    ) -> ApplyReport:
        """Apply a coalesced batch under one write-lock hold.

        Delegates to :meth:`DurableMaintainer.apply_batch` — one journal
        record, one fsync, at most one re-peel per affected ``A_k`` —
        and afterwards, still exclusively, purges every cache entry
        whose version moved.  Each touched array's version bumps exactly
        once per batch regardless of how many batch edges touch it, so
        the purge-and-refill churn is amortized the same way the
        re-peels are.  Readers never observe a half-applied batch: the
        write lock spans validation, mutation, and purge.
        """
        with maybe_trace_span(metric.TRACE_SERVER_APPLY):
            with self._lock.write_locked(site="apply_batch"):
                before = self.index.versions()
                try:
                    # Same WAL ordering argument as apply(): the batch
                    # journal record + fsync must stay inside the
                    # exclusive section.  noqa KP012: blocking by design.
                    return self._durable.apply_batch(  # noqa: KP012 WAL ordering
                        updates, engine=engine, workers=workers
                    )
                finally:
                    self._purge_changed(before)

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal, apply, and invalidate for one edge insertion."""
        with maybe_trace_span(metric.TRACE_SERVER_INSERT):
            with self._lock.write_locked(site="insert_edge"):
                before = self.index.versions()
                try:
                    self._durable.insert_edge(u, v)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Journal, apply, and invalidate for one edge deletion."""
        with maybe_trace_span(metric.TRACE_SERVER_DELETE):
            with self._lock.write_locked(site="delete_edge"):
                before = self.index.versions()
                try:
                    self._durable.delete_edge(u, v)  # noqa: KP012 WAL ordering
                finally:
                    self._purge_changed(before)

    def checkpoint(self) -> int:
        """Write a durable checkpoint under the write lock.

        Checkpoints do not mutate any ``A_k``, so the cache keeps
        serving across them.
        """
        with maybe_trace_span(metric.TRACE_SERVER_CHECKPOINT):
            with self._lock.write_locked(site="checkpoint"):
                # Checkpoints block writers on purpose; readers drain
                # first because the RWLock prefers writers.
                return self._durable.checkpoint()  # noqa: KP012 atomic checkpoint

    def _purge_changed(self, before: dict[int, int]) -> int:
        cache = self._cache
        if cache is None:
            return 0
        purged = 0
        for k, version in self.index.versions().items():
            if before.get(k, 0) != version:
                purged += cache.purge_k(k)
        return purged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock.write_locked(site="close"):
            self._durable.close()  # noqa: KP012 final flush at shutdown
            if self._cache is not None:
                self._cache.clear()

    def __enter__(self) -> "KPCoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
