"""Edge-update stream files: the dynamic-graph input format.

A stream file is line-oriented text, ``#`` comments and blank lines
skipped::

    + 1 2     # insert edge (1, 2)
    - 1 2     # delete edge (1, 2)
    3 4       # bare pair: insert (the common SNAP-dump case)

Trailing columns beyond the vertex pair (timestamps/weights in temporal
SNAP dumps) are rejected by default with the offending line number;
``extra_tokens="ignore"`` opts in to dropping them, mirroring
:func:`repro.graph.io.iter_edge_list`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EdgeListParseError, ParameterError, VertexLabelError
from repro.graph.adjacency import Vertex
from repro.graph.io import PathOrFile, _open_for_read
from repro.service.journal import OP_DELETE, OP_INSERT

__all__ = ["UpdateOp", "iter_update_stream", "read_update_stream"]

#: One parsed stream entry: ``(op, u, v)`` with op in {"insert", "delete"}.
UpdateOp = tuple[str, Vertex, Vertex]

_PREFIX_OPS = {"+": OP_INSERT, "-": OP_DELETE}


def iter_update_stream(
    source: PathOrFile,
    comment: str = "#",
    int_vertices: bool = True,
    extra_tokens: str = "error",
) -> Iterator[UpdateOp]:
    """Yield ``(op, u, v)`` updates from a stream file.

    Raises :class:`~repro.errors.EdgeListParseError` (with the line
    number) for malformed lines, and its subclass
    :class:`~repro.errors.VertexLabelError` when only the integer-label
    assumption failed, so callers can probe the label convention the same
    way the edge-list reader does.
    """
    if extra_tokens not in ("error", "ignore"):
        raise ParameterError(
            f"extra_tokens must be 'error' or 'ignore', got {extra_tokens!r}"
        )
    stream, owned = _open_for_read(source)
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            tokens = line.split()
            op = OP_INSERT
            if tokens[0] in _PREFIX_OPS:
                op = _PREFIX_OPS[tokens[0]]
                tokens = tokens[1:]
            if len(tokens) < 2:
                raise EdgeListParseError(
                    f"expected an op prefix and two vertex tokens, got {line!r}",
                    line_number,
                )
            if len(tokens) > 2 and extra_tokens == "error":
                raise EdgeListParseError(
                    f"unexpected extra tokens in {line!r} "
                    "(a temporal/weighted stream? pass extra_tokens='ignore')",
                    line_number,
                )
            u_token, v_token = tokens[0], tokens[1]
            if int_vertices:
                try:
                    yield (op, int(u_token), int(v_token))
                except ValueError:
                    raise VertexLabelError(
                        f"non-integer vertex in {line!r}", line_number
                    ) from None
            else:
                yield (op, u_token, v_token)
    finally:
        if owned:
            stream.close()


def read_update_stream(
    source: PathOrFile,
    comment: str = "#",
    int_vertices: bool = True,
    extra_tokens: str = "error",
) -> list[UpdateOp]:
    """Materialized form of :func:`iter_update_stream`."""
    return list(
        iter_update_stream(
            source,
            comment=comment,
            int_vertices=int_vertices,
            extra_tokens=extra_tokens,
        )
    )
