"""Engagement analysis by decomposition layer (Fig. 10).

Given per-user activity counts (check-ins for Gowalla), the paper plots:

* Fig. 10(a): average check-ins per **core number** ``k`` (k-core
  decomposition) overlaid with average check-ins per **(k, p-number)**
  stratum plotted at ``x = k + p - 0.5`` ((k,p)-core decomposition),
* Fig. 10(b): the same (k,p)-core series against average check-ins per
  **onion layer**, showing that onion layers do not separate users of one
  core level by activity.

All three series here take the raw counts and a decomposition — they never
see the generative model behind the synthetic counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graph.adjacency import Graph, Vertex
from repro.kcore.onion import onion_decomposition
from repro.core.decomposition import KPDecomposition, kp_core_decomposition

__all__ = [
    "EngagementPoint",
    "engagement_by_core_number",
    "engagement_by_kp_stratum",
    "engagement_by_onion_layer",
    "stratum_spread",
]


@dataclass(frozen=True)
class EngagementPoint:
    """One plotted point: x position, average activity, population size."""

    x: float
    average: float
    count: int


def _averages(groups: Mapping[float, list[int]]) -> list[EngagementPoint]:
    return [
        EngagementPoint(x=x, average=sum(vals) / len(vals), count=len(vals))
        for x, vals in sorted(groups.items())
    ]


def engagement_by_core_number(
    graph: Graph,
    activity: Mapping[Vertex, int],
    decomposition: KPDecomposition | None = None,
) -> list[EngagementPoint]:
    """Fig. 10(a) baseline series: average activity per core number."""
    decomposition = decomposition or kp_core_decomposition(graph)
    groups: dict[float, list[int]] = {}
    for v, cn in decomposition.core_numbers.items():
        groups.setdefault(float(cn), []).append(activity.get(v, 0))
    return _averages(groups)


def engagement_by_kp_stratum(
    graph: Graph,
    activity: Mapping[Vertex, int],
    decomposition: KPDecomposition | None = None,
) -> list[EngagementPoint]:
    """Fig. 10(a) main series: per-(k, pn) stratum at ``x = k + p - 0.5``.

    Each vertex contributes at its core number ``k = cn(v)`` with the
    p-number it holds there, exactly as the paper plots the (k,p)-core
    decomposition against the k-core decomposition.
    """
    decomposition = decomposition or kp_core_decomposition(graph)
    groups: dict[float, list[int]] = {}
    for k, fixed in decomposition.arrays.items():
        for v, pn in zip(fixed.order, fixed.p_numbers):
            if decomposition.core_numbers[v] != k:
                continue  # the vertex belongs to a deeper stratum
            x = k + pn - 0.5
            groups.setdefault(x, []).append(activity.get(v, 0))
    return _averages(groups)


def engagement_by_onion_layer(
    graph: Graph, activity: Mapping[Vertex, int]
) -> list[EngagementPoint]:
    """Fig. 10(b) comparison series: average activity per onion layer."""
    onion = onion_decomposition(graph)
    groups: dict[float, list[int]] = {}
    for v, layer in onion.layers.items():
        groups.setdefault(float(layer), []).append(activity.get(v, 0))
    return _averages(groups)


def stratum_spread(points: list[EngagementPoint]) -> float:
    """Max/min ratio of the series' averages (population-weighted guards
    against empty series).

    A series that *separates* engaged from disengaged users has a large
    spread; Fig. 10(b)'s onion layers show a small spread within each core
    level while p-number strata show a large one.
    """
    averages = [p.average for p in points if p.count > 0]
    if not averages or min(averages) <= 0:
        return float("inf") if averages else 0.0
    return max(averages) / min(averages)
