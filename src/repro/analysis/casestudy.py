"""Connected-component case studies (Fig. 9).

The paper visualizes one connected component of the DBLP k-core,
highlights which members survive into the (k,p)-core, sizes vertices by
fraction value, and narrates the cascade: the author with the minimum
fraction leaves first and drags a group of collaborators out with them.

This module produces the same story as data: per-component membership and
fraction values, the minimum-fraction vertex, and the exact departure
cascade triggered by removing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.traversal import connected_components
from repro.kcore.compute import k_core_vertices
from repro.core.kpcore import kp_core_vertices
from repro.core.pvalue import check_p, fraction_threshold, fraction_value

__all__ = ["ComponentReport", "CascadeStep", "case_study", "departure_cascade"]


@dataclass(frozen=True)
class CascadeStep:
    """One vertex leaving during the cascade, with the reason."""

    vertex: Vertex
    degree_left: int
    threshold: int


@dataclass(frozen=True)
class ComponentReport:
    """Fig. 9 data for one connected component of the k-core."""

    k: int
    p: float
    members: frozenset[Vertex]
    kp_members: frozenset[Vertex]
    fractions: dict[Vertex, float]
    min_fraction_vertex: Vertex
    cascade: tuple[CascadeStep, ...]

    @property
    def trimmed(self) -> frozenset[Vertex]:
        """k-core members that the fraction constraint removed."""
        return self.members - self.kp_members

    def summary(self) -> str:
        """One-paragraph narration in the style of the paper's Fig. 9 text."""
        dropped = len(self.cascade)
        return (
            f"component of {len(self.members)} {self.k}-core vertices; "
            f"{len(self.kp_members)} survive the ({self.k},{self.p})-core. "
            f"Vertex {self.min_fraction_vertex!r} has the smallest fraction "
            f"({self.fractions[self.min_fraction_vertex]:.3f}); its leave "
            f"results in the departure of {max(0, dropped - 1)} other "
            f"member(s)."
        )


def departure_cascade(
    graph: Graph, members: Sequence[Vertex], leaver: Vertex, k: int, p: float
) -> tuple[CascadeStep, ...]:
    """Simulate the cascade after ``leaver`` departs the member set.

    Members are re-checked against the combined (k,p) threshold; every
    vertex falling below it leaves, possibly triggering more departures —
    the mechanism behind "the leave of X leads to the departure of N other
    authors" in Fig. 9.
    """
    check_p(p)
    alive = set(members)
    if leaver not in alive:
        raise ParameterError(f"leaver {leaver!r} is not a component member")
    thresholds = {
        v: max(k, fraction_threshold(p, graph.degree(v))) for v in alive
    }
    inside = {
        v: sum(1 for w in graph.neighbors(v) if w in alive) for v in alive
    }
    steps = [CascadeStep(leaver, inside[leaver], thresholds[leaver])]
    alive.discard(leaver)
    queue = [leaver]
    while queue:
        gone = queue.pop()
        for w in graph.neighbors(gone):
            if w not in alive:
                continue
            inside[w] -= 1
            if inside[w] < thresholds[w]:
                steps.append(CascadeStep(w, inside[w], thresholds[w]))
                alive.discard(w)
                queue.append(w)
    return tuple(steps)


def case_study(
    graph: Graph, k: int, p: float, component_rank: int = 0
) -> ComponentReport:
    """Produce the Fig. 9 report for one k-core component.

    ``component_rank`` selects the component by descending size (0 = the
    largest).  Raises :class:`ParameterError` when the k-core is empty or
    has fewer components than requested.
    """
    check_p(p)
    core_members = k_core_vertices(graph, k)
    if not core_members:
        raise ParameterError(f"the {k}-core of this graph is empty")
    kcore = graph.induced_subgraph(core_members)
    components = connected_components(kcore)
    if component_rank >= len(components):
        raise ParameterError(
            f"component_rank {component_rank} out of range "
            f"({len(components)} components)"
        )
    component = components[component_rank]
    fractions = {
        v: fraction_value(
            sum(1 for w in graph.neighbors(v) if w in component),
            graph.degree(v),
        )
        for v in component
    }
    min_vertex = min(component, key=lambda v: (fractions[v], repr(v)))
    kp_members = kp_core_vertices(graph, k, p) & component
    cascade = departure_cascade(graph, sorted(component, key=repr), min_vertex, k, p)
    return ComponentReport(
        k=k,
        p=p,
        members=frozenset(component),
        kp_members=frozenset(kp_members),
        fractions=fractions,
        min_fraction_vertex=min_vertex,
        cascade=cascade,
    )
