"""Effectiveness analyses behind the paper's Sec. VII-B figures.

* :mod:`repro.analysis.comparison` — k-core vs (k,p)-core size,
  clustering, density (Figs. 6-8),
* :mod:`repro.analysis.casestudy` — component reports and departure
  cascades (Fig. 9),
* :mod:`repro.analysis.engagement` — activity by core number / p-number
  stratum / onion layer (Fig. 10).
"""

from repro.analysis.casestudy import (
    CascadeStep,
    ComponentReport,
    case_study,
    departure_cascade,
)
from repro.analysis.comparison import (
    CoreComparison,
    compare_cores,
    comparison_table,
)
from repro.analysis.visualization import component_to_dot, write_component_dot
from repro.analysis.engagement import (
    EngagementPoint,
    engagement_by_core_number,
    engagement_by_kp_stratum,
    engagement_by_onion_layer,
    stratum_spread,
)

__all__ = [
    "CoreComparison",
    "compare_cores",
    "comparison_table",
    "ComponentReport",
    "CascadeStep",
    "case_study",
    "departure_cascade",
    "EngagementPoint",
    "engagement_by_core_number",
    "engagement_by_kp_stratum",
    "engagement_by_onion_layer",
    "stratum_spread",
    "component_to_dot",
    "write_component_dot",
]
