"""Graphviz DOT export of case-study components (the Fig. 9 artifact).

Fig. 9 of the paper is a picture: one connected component of a k-core,
with (k,p)-core survivors in blue, trimmed members in grey, vertex size
proportional to fraction value, and 1-hop neighbours in light grey around
it.  This module renders exactly that as a DOT document, so

    python -m repro report fig9 ...  |  dot -Tpdf ...

recreates the figure with any Graphviz installation (none is required to
run the library — the output is plain text).
"""

from __future__ import annotations

from typing import IO

from repro.graph.adjacency import Graph, Vertex
from repro.analysis.casestudy import ComponentReport

__all__ = ["component_to_dot", "write_component_dot"]

_SURVIVOR_COLOR = "#4477dd"  # blue: in the (k,p)-core
_TRIMMED_COLOR = "#555555"  # dark grey: k-core only
_HALO_COLOR = "#cccccc"  # light grey: 1-hop neighbours


def _quote(label: object) -> str:
    text = str(label).replace('"', '\\"')
    return f'"{text}"'


def component_to_dot(
    graph: Graph,
    report: ComponentReport,
    include_halo: bool = True,
    min_size: float = 0.25,
    max_size: float = 1.0,
) -> str:
    """Render a :class:`ComponentReport` as a Graphviz DOT string.

    Vertex diameter scales linearly with the fraction value between
    ``min_size`` and ``max_size`` (inches), matching the paper's "size of
    each vertex reflects the fraction value".
    """
    members = report.members
    lines = [
        "graph kp_case_study {",
        '  layout="neato";',
        "  overlap=false;",
        '  node [style="filled", fontsize=8, fixedsize=true];',
    ]
    fractions = report.fractions
    span = max(1e-9, max(fractions.values()) - min(fractions.values()))
    low = min(fractions.values())
    for v in sorted(members, key=repr):
        frac = fractions[v]
        size = min_size + (max_size - min_size) * (frac - low) / span
        color = _SURVIVOR_COLOR if v in report.kp_members else _TRIMMED_COLOR
        marker = " peripheries=2" if v == report.min_fraction_vertex else ""
        lines.append(
            f"  {_quote(v)} [fillcolor={_quote(color)} width={size:.2f} "
            f"height={size:.2f}{marker}];"
        )
    halo: set[Vertex] = set()
    if include_halo:
        for v in members:
            halo.update(w for w in graph.neighbors(v) if w not in members)
        for w in sorted(halo, key=repr):
            lines.append(
                f"  {_quote(w)} [fillcolor={_quote(_HALO_COLOR)} "
                f'width=0.12 height=0.12 label=""];'
            )
    drawn: set[frozenset] = set()
    for v in members:
        for w in graph.neighbors(v):
            if w not in members and w not in halo:
                continue
            key = frozenset((v, w))
            if key in drawn or len(key) == 1:
                continue
            drawn.add(key)
            style = "" if w in members else ' [color="#bbbbbb"]'
            lines.append(f"  {_quote(v)} -- {_quote(w)}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_component_dot(
    graph: Graph, report: ComponentReport, destination: str | IO[str], **kwargs
) -> None:
    """Write :func:`component_to_dot` output to a path or stream."""
    text = component_to_dot(graph, report, **kwargs)
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
