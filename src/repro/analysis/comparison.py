"""k-core vs (k,p)-core comparison statistics (Figs. 6-8).

For each dataset the paper reports, at the default ``k = 10``, ``p = 0.6``:

* Fig. 6 — vertex counts of the k-core and the (k,p)-core,
* Fig. 7 — global clustering coefficient of both subgraphs,
* Fig. 8 — graph density of both subgraphs.

:func:`compare_cores` computes all three pairs for one graph;
:func:`comparison_table` sweeps the dataset suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.adjacency import Graph
from repro.graph.metrics import density, global_clustering_coefficient
from repro.kcore.compute import k_core_vertices
from repro.core.kpcore import kp_core_vertices

__all__ = ["CoreComparison", "compare_cores", "comparison_table"]

DEFAULT_K = 10
DEFAULT_P = 0.6


@dataclass(frozen=True)
class CoreComparison:
    """Figs. 6-8 measurements for one graph at one (k, p)."""

    name: str
    k: int
    p: float
    kcore_vertices: int
    kpcore_vertices: int
    kcore_clustering: float
    kpcore_clustering: float
    kcore_density: float
    kpcore_density: float

    @property
    def size_ratio(self) -> float:
        """|k-core| / |(k,p)-core| (inf when the (k,p)-core is empty)."""
        if self.kpcore_vertices == 0:
            return float("inf")
        return self.kcore_vertices / self.kpcore_vertices


def compare_cores(
    graph: Graph, k: int = DEFAULT_K, p: float = DEFAULT_P, name: str = ""
) -> CoreComparison:
    """Compute the Figs. 6-8 statistics for one graph."""
    kcore = graph.induced_subgraph(k_core_vertices(graph, k))
    kpcore = graph.induced_subgraph(kp_core_vertices(graph, k, p))
    return CoreComparison(
        name=name,
        k=k,
        p=p,
        kcore_vertices=kcore.num_vertices,
        kpcore_vertices=kpcore.num_vertices,
        kcore_clustering=global_clustering_coefficient(kcore),
        kpcore_clustering=global_clustering_coefficient(kpcore),
        kcore_density=density(kcore),
        kpcore_density=density(kpcore),
    )


def comparison_table(
    graphs: dict[str, Graph], k: int = DEFAULT_K, p: float = DEFAULT_P
) -> list[CoreComparison]:
    """Figs. 6-8 statistics for a named suite of graphs."""
    return [compare_cores(g, k, p, name=name) for name, g in graphs.items()]
