"""Trace exporters (JSONL, Chrome trace-event) and attribution tables.

Two serialization formats for :class:`~repro.obs.trace.TraceEvent`
buffers:

* **JSONL** — one ``TraceEvent.to_dict`` object per line; lossless,
  round-trips through :func:`read_jsonl`, greppable.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` subset
  with ``"ph": "X"`` complete events, loadable in ``chrome://tracing``
  and Perfetto.  Viewers nest same-``tid`` events by time containment,
  which matches span nesting because children start after and end
  before their parents.  :func:`validate_chrome_trace` checks the
  subset we emit (used by tests and the CI smoke).

The attribution half answers "where did the time go": every span name
maps to a latency *bucket* (lock-wait / lock-hold / cache-probe /
answer-build / other), and :func:`attribution_rows` aggregates **self
time** — a span's duration minus its children's — so the buckets sum to
the traced total instead of double-counting nested work.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import names
from repro.obs.trace import TraceEvent

__all__ = [
    "chrome_payload",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "BUCKETS",
    "bucket_of_span",
    "attribution_rows",
    "slowest_rows",
]

#: Latency buckets used by the attribution table, and the span-name
#: prefixes that land in each.  Unlisted names fall into ``other``.
BUCKETS: dict[str, tuple[str, ...]] = {
    "lock-wait": (names.TRACE_LOCK_READ_WAIT, names.TRACE_LOCK_WRITE_WAIT),
    "lock-hold": (names.TRACE_LOCK_READ_HOLD, names.TRACE_LOCK_WRITE_HOLD),
    "cache-probe": (
        names.TRACE_CACHE_PROBE,
        names.TRACE_CACHE_FILL,
        names.TRACE_CACHE_PURGE,
    ),
    "answer-build": (names.TRACE_QUERY_ANSWER, names.TRACE_PEEL_FIXED_K),
}

_NAME_TO_BUCKET: dict[str, str] = {
    span_name: bucket
    for bucket, span_names in BUCKETS.items()
    for span_name in span_names
}


def bucket_of_span(name: str) -> str:
    """The attribution bucket a span name belongs to (``other`` if none)."""
    return _NAME_TO_BUCKET.get(name, "other")


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_payload(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Chrome trace-event JSON object for a buffer of events.

    Timestamps are rebased to the earliest event (microseconds), ``ph``
    is always ``"X"`` (complete events carrying their own ``dur``), and
    the repro-specific identifiers ride along in ``args``.
    """
    event_list = list(events)
    base = min((event.ts for event in event_list), default=0.0)
    trace_events: list[dict[str, Any]] = []
    for event in event_list:
        args: dict[str, Any] = {
            "trace_id": event.trace_id,
            "span_id": event.span_id,
        }
        if event.parent_id is not None:
            args["parent_id"] = event.parent_id
        args.update(event.attrs)
        trace_events.append(
            {
                "name": event.name,
                "cat": bucket_of_span(event.name),
                "ph": "X",
                "ts": (event.ts - base) * 1e6,
                "dur": event.dur * 1e6,
                "pid": event.pid,
                "tid": event.tid,
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Mapping[str, Any]) -> list[str]:
    """Problems with ``payload`` as a Chrome trace-event object.

    Empty list means the payload conforms to the subset this module
    emits: a ``traceEvents`` array of ``"ph": "X"`` events with string
    ``name``/``cat``, numeric non-negative ``ts``/``dur``, integer
    ``pid``/``tid``, and an ``args`` object.
    """
    problems: list[str] = []
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing/empty name")
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: missing cat")
        if event.get("ph") != "X":
            problems.append(f"{where}: ph must be 'X'")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}: {field} must be a number")
            elif value < 0:
                problems.append(f"{where}: {field} must be >= 0")
        for field in ("pid", "tid"):
            value = event.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{where}: {field} must be an integer")
        if not isinstance(event.get("args"), dict):
            problems.append(f"{where}: args must be an object")
    return problems


def write_chrome_trace(path: str | Path, events: Iterable[TraceEvent]) -> int:
    """Write the Chrome trace-event JSON file; returns the event count."""
    payload = chrome_payload(events)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(payload["traceEvents"])


# ----------------------------------------------------------------------
# JSONL export (lossless round-trip)
# ----------------------------------------------------------------------
def write_jsonl(path: str | Path, events: Iterable[TraceEvent]) -> int:
    """One ``TraceEvent.to_dict`` JSON object per line; returns count."""
    count = 0
    with open(Path(path), "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Parse a file written by :func:`write_jsonl` back into events."""
    events: list[TraceEvent] = []
    with open(Path(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# attribution: self-time aggregates and slowest spans
# ----------------------------------------------------------------------
def _self_times(events: Sequence[TraceEvent]) -> dict[str, float]:
    """Per-span self time: duration minus the sum of direct children.

    Keyed by ``span_id``; clamped at zero so clock jitter between a
    parent's and its children's readings never produces negative rows.
    """
    child_totals: dict[str, float] = {}
    for event in events:
        if event.parent_id is not None:
            child_totals[event.parent_id] = (
                child_totals.get(event.parent_id, 0.0) + event.dur
            )
    return {
        event.span_id: max(0.0, event.dur - child_totals.get(event.span_id, 0.0))
        for event in events
    }


def attribution_rows(
    events: Sequence[TraceEvent],
) -> tuple[list[str], list[list[str]]]:
    """The latency attribution table: per span name, aggregated self time.

    Returns ``(headers, rows)`` ready for
    :func:`repro.bench.reporting.format_table`.  Rows are sorted by
    total self time descending; the share column is the fraction of all
    self time (which equals the traced wall time, since self times of a
    span tree sum to the root duration).
    """
    self_times = _self_times(events)
    per_name: dict[str, tuple[int, float, float]] = {}
    for event in events:
        count, self_total, dur_total = per_name.get(event.name, (0, 0.0, 0.0))
        per_name[event.name] = (
            count + 1,
            self_total + self_times[event.span_id],
            dur_total + event.dur,
        )
    grand_self = sum(entry[1] for entry in per_name.values())
    rows: list[list[str]] = []
    ordered = sorted(per_name.items(), key=lambda item: -item[1][1])
    for name, (count, self_total, dur_total) in ordered:
        share = (self_total / grand_self) if grand_self > 0 else 0.0
        rows.append(
            [
                name,
                bucket_of_span(name),
                str(count),
                f"{self_total * 1e3:.3f}",
                f"{dur_total * 1e3:.3f}",
                f"{share * 100.0:5.1f}%",
            ]
        )
    headers = ["span", "bucket", "count", "self ms", "total ms", "share"]
    return headers, rows


def slowest_rows(
    events: Sequence[TraceEvent], top: int = 10
) -> tuple[list[str], list[list[str]]]:
    """The ``top`` slowest individual spans with their attributes."""
    ordered = sorted(events, key=lambda event: -event.dur)[: max(0, top)]
    rows: list[list[str]] = []
    for event in ordered:
        attrs = " ".join(
            f"{key}={event.attrs[key]}" for key in sorted(event.attrs)
        )
        rows.append(
            [
                event.name,
                f"{event.dur * 1e3:.3f}",
                event.trace_id,
                str(event.pid),
                attrs,
            ]
        )
    headers = ["span", "ms", "trace", "pid", "attrs"]
    return headers, rows
