"""Shared quantile math: interpolated percentiles and a reservoir sketch.

The serving benchmark used to compute percentiles with
``values[int(q * len(values))]`` — on a ~488-sample run that truncation
makes ``p99`` land on the last order statistic, i.e. ``p99 == max``,
which is exactly the degenerate tail the committed ``BENCH_serve.json``
showed.  This module is the one home for latency summary math so every
reporter (serve bench, trace attribution, ``bench diff``) agrees on the
method.

:func:`quantile` is the linearly interpolated quantile over a sorted
sample (the numpy/Excel ``linear`` definition): rank position
``q * (n - 1)`` blended between the two bracketing order statistics.

:class:`ReservoirSketch` bounds memory for long benchmark runs: up to
``capacity`` samples are kept exactly; beyond that, classic reservoir
sampling (Vitter's Algorithm R with a deterministic seeded RNG) keeps a
uniform sample.  ``count``/``total``/``min``/``max`` stay exact
regardless, and quantiles are exact whenever the stream fit in the
reservoir — which covers every committed baseline workload.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import ParameterError

__all__ = ["LATENCY_METHOD", "quantile", "ReservoirSketch"]

#: Tag written into bench JSON so diffs know which math produced the
#: numbers (the pre-fix files carry no tag at all).
LATENCY_METHOD = "interpolated-reservoir"

#: Reservoir capacity default: exact quantiles for any run up to this
#: many samples, bounded memory beyond.
DEFAULT_CAPACITY = 4096


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linearly interpolated ``q``-quantile of an ascending sample.

    >>> quantile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    >>> quantile([1.0, 2.0, 3.0, 4.0], 1.0)
    4.0
    """
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile q must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


class ReservoirSketch:
    """Streaming sample summarizer with exact extremes and interpolated
    quantiles over a bounded uniform reservoir.

    Deterministic for a fixed seed, so benchmark reruns on the same
    workload produce identical summaries.

    >>> sketch = ReservoirSketch()
    >>> for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
    ...     sketch.add(v)
    >>> sketch.count, sketch.minimum, sketch.maximum
    (5, 1.0, 5.0)
    >>> sketch.quantile(0.5)
    3.0
    """

    __slots__ = (
        "capacity",
        "count",
        "total",
        "minimum",
        "maximum",
        "_sample",
        "_rng",
        "_sorted",
        "_dirty",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY, seed: int = 0) -> None:
        if capacity < 1:
            raise ParameterError(
                f"reservoir capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._sample: list[float] = []
        self._rng = random.Random(seed)
        self._sorted: list[float] = []
        self._dirty = False

    def add(self, value: float) -> None:
        """Feed one observation into the sketch."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            self._dirty = True
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._sample[slot] = value
                self._dirty = True

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """Whether every observation is still in the reservoir."""
        return self.count <= self.capacity

    def _sorted_sample(self) -> list[float]:
        if self._dirty:
            self._sorted = sorted(self._sample)
            self._dirty = False
        return self._sorted

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile; ``q`` of 0/1 return the exact
        stream min/max even when the reservoir has been subsampling."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        return quantile(self._sorted_sample(), q)

    def summary(self) -> dict[str, float | int | str]:
        """The standard latency block written into bench JSON."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.maximum if self.count else 0.0,
            "min": self.minimum if self.count else 0.0,
            "method": LATENCY_METHOD,
        }

    def __len__(self) -> int:
        return len(self._sample)

    def __repr__(self) -> str:
        return (
            f"ReservoirSketch(count={self.count}, capacity={self.capacity}, "
            f"exact={self.exact})"
        )
