"""Immutable snapshots of collected metrics, with a JSON round-trip.

A :class:`MetricsSnapshot` is what an :class:`~repro.obs.instrumentation.
Instrumentation` collector exports: plain dictionaries of counters,
histogram summaries and span timings, detached from the live collector so
it can keep accumulating.  Snapshots serialize losslessly to JSON
(:meth:`MetricsSnapshot.to_dict` / :meth:`MetricsSnapshot.from_dict`) and
render to tables via :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import IO, Mapping

__all__ = ["HistogramSummary", "SpanSummary", "MetricsSnapshot"]


@dataclass(frozen=True)
class HistogramSummary:
    """Streaming summary of one observed value series."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HistogramSummary":
        return cls(
            count=int(payload["count"]),
            total=float(payload["total"]),
            minimum=float(payload["min"]),
            maximum=float(payload["max"]),
        )


@dataclass(frozen=True)
class SpanSummary:
    """Total wall time and entry count of one span path.

    ``path`` components are joined with ``/``: a span entered while
    another is open records under ``parent/child``.
    """

    count: int
    seconds: float

    def to_dict(self) -> dict:
        return {"count": self.count, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SpanSummary":
        return cls(count=int(payload["count"]), seconds=float(payload["seconds"]))


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time export of one collector's metrics."""

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)
    spans: dict[str, SpanSummary] = field(default_factory=dict)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (0 for never-incremented counters)."""
        return self.counters.get(name, default)

    def is_empty(self) -> bool:
        return not (self.counters or self.histograms or self.spans)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            "spans": {k: s.to_dict() for k, s in self.spans.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            histograms={
                k: HistogramSummary.from_dict(v)
                for k, v in payload.get("histograms", {}).items()
            },
            spans={
                k: SpanSummary.from_dict(v)
                for k, v in payload.get("spans", {}).items()
            },
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path_or_file: str | IO[str]) -> None:
        """Write the snapshot as JSON to a path or open text file.

        Path writes are atomic (temp file + ``os.replace``), so an
        interrupted dump never truncates a previously written snapshot.
        """
        if hasattr(path_or_file, "write"):
            path_or_file.write(self.to_json())  # type: ignore[union-attr]
            return
        path = os.fspath(path_or_file)  # type: ignore[arg-type]
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "MetricsSnapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
