"""Structured :mod:`logging` integration for collected metrics.

Two entry points:

* :func:`log_snapshot` — emit one record per metric to a standard
  logger, with the metric kind/name/value attached both in the message
  and as ``extra`` attributes (``metric_kind``, ``metric_name``,
  ``metric_value``), so structured handlers (JSON formatters, log
  shippers) can index them without parsing.
* :func:`span_logger` — a context manager that runs a collector around a
  block and logs its snapshot on exit; the convenience wrapper behind
  one-off investigations in a REPL.

The library itself never configures logging: records go to the
``repro.obs`` logger (or one the caller supplies) and follow whatever
handlers the application installed.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Iterator

from repro.obs.instrumentation import Instrumentation, collecting
from repro.obs.snapshot import MetricsSnapshot

__all__ = ["DEFAULT_LOGGER_NAME", "log_snapshot", "span_logger"]

#: Logger that receives metric records unless the caller supplies one.
DEFAULT_LOGGER_NAME = "repro.obs"


def log_snapshot(
    snapshot: MetricsSnapshot,
    logger: logging.Logger | None = None,
    level: int = logging.INFO,
) -> int:
    """Emit every metric in ``snapshot`` as one log record each.

    Returns the number of records emitted.  Records carry structured
    ``extra`` attributes; the human-readable message mirrors them.
    """
    log = logger if logger is not None else logging.getLogger(DEFAULT_LOGGER_NAME)
    emitted = 0
    for name, value in sorted(snapshot.counters.items()):
        log.log(
            level,
            "counter %s=%d",
            name,
            value,
            extra={
                "metric_kind": "counter",
                "metric_name": name,
                "metric_value": value,
            },
        )
        emitted += 1
    for name, hist in sorted(snapshot.histograms.items()):
        log.log(
            level,
            "histogram %s count=%d mean=%.6g min=%.6g max=%.6g",
            name,
            hist.count,
            hist.mean,
            hist.minimum,
            hist.maximum,
            extra={
                "metric_kind": "histogram",
                "metric_name": name,
                "metric_value": hist.to_dict(),
            },
        )
        emitted += 1
    for path, span in sorted(snapshot.spans.items()):
        log.log(
            level,
            "span %s count=%d seconds=%.6f",
            path,
            span.count,
            span.seconds,
            extra={
                "metric_kind": "span",
                "metric_name": path,
                "metric_value": span.to_dict(),
            },
        )
        emitted += 1
    return emitted


@contextmanager
def span_logger(
    logger: logging.Logger | None = None,
    level: int = logging.INFO,
) -> Iterator[Instrumentation]:
    """Collect metrics for the block, then log the snapshot on exit."""
    with collecting() as metrics:
        yield metrics
    log_snapshot(metrics.snapshot(), logger=logger, level=level)
