"""Canonical metric names recorded by the instrumented hot paths.

One module owns every counter/histogram/span name so the catalog in
``docs/observability.md``, the tests, and the recording sites cannot
drift apart.  Names are dotted paths: the first segment is the subsystem
(``kcore``, ``kpcore``, ``decomp``, ``maintenance``, ``index``,
``korder``, ``service``), the rest describes the quantity.

Counters count *operations* (monotone integers), histograms summarize
*values* (window widths, answer sizes, subcore sizes), and spans measure
nested wall-clock sections.
"""

from __future__ import annotations

__all__ = ["COUNTERS", "HISTOGRAMS", "SPANS", "TRACES", "catalog"]

# ----------------------------------------------------------------------
# k-core peeling (repro.kcore.compute) — Algorithm 1's engine
# ----------------------------------------------------------------------
KCORE_PEEL_CALLS = "kcore.peel.calls"
KCORE_PEEL_PEELED = "kcore.peel.vertices_peeled"
KCORE_PEEL_SURVIVORS = "kcore.peel.survivors"
KCORE_PEEL_EDGE_SCANS = "kcore.peel.edge_scans"
KCORE_PEEL_INITIAL_VIOLATORS = "kcore.peel.initial_violators"

# ----------------------------------------------------------------------
# core decomposition (repro.kcore.decomposition) — Batagelj–Zaveršnik
# ----------------------------------------------------------------------
KCORE_DECOMP_CALLS = "kcore.decomp.calls"
KCORE_DECOMP_EDGE_SCANS = "kcore.decomp.edge_scans"
KCORE_DECOMP_BUCKET_MOVES = "kcore.decomp.bucket_moves"

# ----------------------------------------------------------------------
# (k,p)-core computation (repro.core.kpcore) — Algorithm 1
# ----------------------------------------------------------------------
KPCORE_CALLS = "kpcore.calls"
KPCORE_THRESHOLDS_TOTAL = "kpcore.thresholds.total"
KPCORE_THRESHOLDS_FRACTION_DOMINANT = "kpcore.thresholds.fraction_dominant"
KPCORE_SPAN = "kpcore"
KPCORE_SPAN_SNAPSHOT = "snapshot"
KPCORE_SPAN_PEEL = "peel"

# ----------------------------------------------------------------------
# (k,p)-core decomposition (repro.core.decomposition) — Algorithm 2
# ----------------------------------------------------------------------
DECOMP_ROUNDS = "decomp.rounds"
DECOMP_PEELS = "decomp.peels"
DECOMP_REKEYS = "decomp.threshold_recomputations"
DECOMP_DEGREE_VIOLATIONS = "decomp.degree_violation_rekeys"
DECOMP_BUCKET_SCANS = "decomp.bucket_scans"
DECOMP_BUCKET_MOVES = "decomp.bucket_moves"
DECOMP_BUCKET_LEVELS = "decomp.bucket_levels"
DECOMP_FLAT_MOVES = "decomp.flat.moves"
DECOMP_FLAT_RANK_SKIPS = "decomp.flat.rank_skips"
DECOMP_FLAT_LEVELS = "decomp.flat.levels"
DECOMP_PARALLEL_TASKS = "decomp.parallel.tasks"
DECOMP_PARALLEL_CHUNKS = "decomp.parallel.chunks"
DECOMP_PARALLEL_WORKERS = "decomp.parallel.tasks_per_worker"
DECOMP_ARRAY_SIZE = "decomp.array_size"
DECOMP_SPAN = "kp_decomposition"
DECOMP_SPAN_CORE_NUMBERS = "core_numbers"
DECOMP_SPAN_SORT = "sort_neighbors"
DECOMP_SPAN_PEEL = "peel_all_k"

# ----------------------------------------------------------------------
# KP-Index maintenance (repro.core.maintenance) — Algorithms 4/5,
# one counter per theorem that fires
# ----------------------------------------------------------------------
MAINT_THM2_SKIPS = "maintenance.thm2.arrays_skipped"
MAINT_THM3_WINDOWS = "maintenance.thm3.p_minus_bounds"
MAINT_THM4_WINDOWS = "maintenance.thm4.p_plus_bounds"
MAINT_THM5_WINDOWS = "maintenance.thm5.support_windows"
MAINT_THM6_SKIPS = "maintenance.thm6.arrays_skipped"
MAINT_THM7_SKIPS = "maintenance.thm7.arrays_skipped"
MAINT_THM8_WINDOWS = "maintenance.thm8.p_minus_bounds"
MAINT_THM9_WINDOWS = "maintenance.thm9.p_plus_bounds"
MAINT_MINOR_CASES = "maintenance.minor_cases"
MAINT_ARRAYS_EXAMINED = "maintenance.arrays_examined"
MAINT_ARRAYS_REPEELED = "maintenance.arrays_repeeled"
MAINT_VERTICES_REPEELED = "maintenance.vertices_repeeled"
MAINT_EARLY_STOPS = "maintenance.early_stops"
MAINT_FALLBACK_REBUILDS = "maintenance.fallback_rebuilds"
MAINT_WINDOW_WIDTH = "maintenance.window_width"
MAINT_WINDOW_P_MINUS = "maintenance.window_p_minus"
MAINT_WINDOW_P_PLUS = "maintenance.window_p_plus"
MAINT_SPAN_INSERT = "maintenance.insert_edge"
MAINT_SPAN_DELETE = "maintenance.delete_edge"
MAINT_SPAN_BATCH = "maintenance.apply_batch"
MAINT_BATCH_BATCHES = "maintenance.batch.batches"
MAINT_BATCH_UPDATES = "maintenance.batch.updates"
MAINT_BATCH_CANCELLED = "maintenance.batch.cancelled_pairs"
MAINT_BATCH_ARRAYS = "maintenance.batch.arrays_repeeled"
MAINT_BATCH_WINDOW_UNIONS = "maintenance.batch.window_unions"
MAINT_BATCH_FULL_REPEELS = "maintenance.batch.full_repeels"

# ----------------------------------------------------------------------
# KP-Index queries (repro.core.index) — Algorithm 3
# ----------------------------------------------------------------------
INDEX_QUERIES = "index.queries"
INDEX_EMPTY_QUERIES = "index.empty_queries"
INDEX_VERTICES_TOUCHED = "index.vertices_touched"
INDEX_ANSWER_SIZE = "index.answer_size"
INDEX_LEVELS_SEARCHED = "index.levels_searched"
INDEX_SLICE_REBUILDS = "index.slice_rebuilds"

# ----------------------------------------------------------------------
# durable index service (repro.service) — checkpoints, journal, recovery
# ----------------------------------------------------------------------
SERVICE_CHECKPOINTS = "service.checkpoints"
SERVICE_JOURNAL_RECORDS = "service.journal_records"
SERVICE_REPLAYED = "service.replayed"
SERVICE_RECOVERIES = "service.recoveries"

# ----------------------------------------------------------------------
# concurrent query server (repro.service.server) — versioned result cache
# ----------------------------------------------------------------------
SERVER_QUERIES = "service.server.queries"
SERVER_CACHE_HITS = "service.cache.hits"
SERVER_CACHE_MISSES = "service.cache.misses"
SERVER_CACHE_INVALIDATIONS = "service.cache.invalidations"
SERVER_CACHE_EVICTIONS = "service.cache.evictions"
SERVER_CACHE_ADMISSION_REJECTS = "service.cache.admission_rejects"
SERVER_BATCH_SIZE = "service.server.batch_size"

# ----------------------------------------------------------------------
# incremental core maintenance (repro.kcore.maintenance /
# repro.kcore.order_maintenance)
# ----------------------------------------------------------------------
KCORE_MAINT_SUBCORE_SIZE = "kcore.maint.subcore_size"
KCORE_MAINT_PROMOTED = "kcore.maint.promoted"
KCORE_MAINT_DEMOTED = "kcore.maint.demoted"
KORDER_LEVELS_REBUILT = "korder.levels_rebuilt"
KORDER_VERTICES_SHIFTED = "korder.vertices_shifted"
KORDER_CHAIN_LENGTH = "korder.chain_length"

# ----------------------------------------------------------------------
# per-request trace spans (repro.obs.trace) — opt-in via REPRO_TRACE
# ----------------------------------------------------------------------
TRACE_COMMAND = "trace.command"
TRACE_SERVER_QUERY = "trace.server.query"
TRACE_SERVER_QUERY_MANY = "trace.server.query_many"
TRACE_SERVER_QUERY_ONE = "trace.server.query_one"
TRACE_SERVER_APPLY = "trace.server.apply"
TRACE_SERVER_INSERT = "trace.server.insert_edge"
TRACE_SERVER_DELETE = "trace.server.delete_edge"
TRACE_SERVER_CHECKPOINT = "trace.server.checkpoint"
TRACE_LOCK_READ_WAIT = "trace.lock.read.wait"
TRACE_LOCK_READ_HOLD = "trace.lock.read.hold"
TRACE_LOCK_WRITE_WAIT = "trace.lock.write.wait"
TRACE_LOCK_WRITE_HOLD = "trace.lock.write.hold"
TRACE_CACHE_PROBE = "trace.cache.probe"
TRACE_CACHE_FILL = "trace.cache.fill"
TRACE_CACHE_PURGE = "trace.cache.purge"
TRACE_QUERY_ANSWER = "trace.query.answer"
TRACE_PEEL_FIXED_K = "trace.peel.fixed_k"

#: name -> one-line description, grouped by kind, for the docs and report
COUNTERS: dict[str, str] = {
    KCORE_PEEL_CALLS: "threshold-peel invocations (kCoreComp/kpCoreComp)",
    KCORE_PEEL_PEELED: "vertices deleted by threshold peeling",
    KCORE_PEEL_SURVIVORS: "vertices surviving threshold peeling",
    KCORE_PEEL_EDGE_SCANS: "adjacency entries scanned while peeling (<= 2m)",
    KCORE_PEEL_INITIAL_VIOLATORS: "vertices below threshold before peeling",
    KCORE_DECOMP_CALLS: "bucket core-decomposition invocations",
    KCORE_DECOMP_EDGE_SCANS: "adjacency entries scanned by the bucket peel (= 2m)",
    KCORE_DECOMP_BUCKET_MOVES: "bucket demotions (= sum deg(v) - cn(v))",
    KPCORE_CALLS: "kpCore (Algorithm 1) invocations",
    KPCORE_THRESHOLDS_TOTAL: "combined thresholds computed (Alg. 1 line 1)",
    KPCORE_THRESHOLDS_FRACTION_DOMINANT: "thresholds where ceil(p*deg) > k",
    DECOMP_ROUNDS: "fixed-k peels run by Algorithm 2 (one per k)",
    DECOMP_PEELS: "peel operations across all k (O(d*m) claim)",
    DECOMP_REKEYS: "fraction re-keys after a neighbour deletion "
    "(each leaves one stale heap entry behind)",
    DECOMP_DEGREE_VIOLATIONS: "re-keys with the degree-violation sentinel",
    DECOMP_BUCKET_SCANS: "empty level buckets skipped by the bucket engine",
    DECOMP_BUCKET_MOVES: "vertex moves to a higher level bucket",
    DECOMP_FLAT_MOVES: "vertex re-parks into a lower rank chain "
    "(flat engines; batched to one park per vertex per round)",
    DECOMP_FLAT_RANK_SKIPS: "rank-cursor steps over empty/stale chains "
    "(flat engines)",
    DECOMP_PARALLEL_TASKS: "fixed-k peel tasks dispatched to the pool",
    DECOMP_PARALLEL_CHUNKS: "task chunks pulled from the shared pool queue",
    MAINT_THM2_SKIPS: "A_k skipped: k above both new core numbers (insert)",
    MAINT_THM3_WINDOWS: "p_- lower bounds from Theorem 3 (insert, both in k-core)",
    MAINT_THM4_WINDOWS: "p_+ upper bounds from Theorem 4 (insert, both in k-core)",
    MAINT_THM5_WINDOWS: "support windows via Theorem 5 (insert, one endpoint)",
    MAINT_THM6_SKIPS: "A_k skipped: Theorem 6 support bound certifies no change",
    MAINT_THM7_SKIPS: "A_k skipped: k above both old core numbers (delete)",
    MAINT_THM8_WINDOWS: "p_- lower bounds from Theorem 8 (delete)",
    MAINT_THM9_WINDOWS: "p_+ upper bounds from Theorem 9 (delete)",
    MAINT_MINOR_CASES: "arrays updated through the minor (core-change) case",
    MAINT_ARRAYS_EXAMINED: "arrays examined across all updates",
    MAINT_ARRAYS_REPEELED: "arrays actually re-peeled (not skipped)",
    MAINT_VERTICES_REPEELED: "vertices re-peeled across all arrays",
    MAINT_EARLY_STOPS: "re-peels stopped early at p_+ (Thms. 4/9)",
    MAINT_FALLBACK_REBUILDS: "defensive full array rebuilds",
    MAINT_BATCH_BATCHES: "apply_batch calls (one coalesced batch each)",
    MAINT_BATCH_UPDATES: "net updates applied through apply_batch",
    MAINT_BATCH_CANCELLED: "insert+delete pairs cancelled by coalescing",
    MAINT_BATCH_ARRAYS: "arrays re-peeled once per batch (windowed + full)",
    MAINT_BATCH_WINDOW_UNIONS: "membership-stable arrays re-peeled via a unioned window",
    MAINT_BATCH_FULL_REPEELS: "membership-churned arrays re-peeled in full per batch",
    INDEX_QUERIES: "KP-Index queries answered (Algorithm 3)",
    INDEX_EMPTY_QUERIES: "queries whose answer was empty",
    INDEX_VERTICES_TOUCHED: "vertices returned across all queries",
    INDEX_SLICE_REBUILDS: "per-(k, level) answer slices materialized (lazy, reset on array mutation)",
    SERVICE_CHECKPOINTS: "durable checkpoints written (graph + index + manifest)",
    SERVICE_JOURNAL_RECORDS: "write-ahead journal records appended",
    SERVICE_REPLAYED: "journal records replayed during recovery",
    SERVICE_RECOVERIES: "recoveries from persisted state (checkpoint and/or journal)",
    SERVER_QUERIES: "queries answered by the concurrent server (cached or not)",
    SERVER_CACHE_HITS: "server queries served from the versioned result cache",
    SERVER_CACHE_MISSES: "server queries that had to run Algorithm 3",
    SERVER_CACHE_INVALIDATIONS: "cache entries dropped because their A_k version moved",
    SERVER_CACHE_EVICTIONS: "cache entries evicted by the LRU capacity bound",
    SERVER_CACHE_ADMISSION_REJECTS: "answers below min_answer_size denied cache admission",
    KCORE_MAINT_PROMOTED: "vertices whose core number rose by an insert",
    KCORE_MAINT_DEMOTED: "vertices whose core number fell by a delete",
    KORDER_LEVELS_REBUILT: "k-order levels rebuilt after a core change",
    KORDER_VERTICES_SHIFTED: "vertices re-positioned by k-order rebuilds",
}

HISTOGRAMS: dict[str, str] = {
    DECOMP_ARRAY_SIZE: "per-k array size |V_k| built by Algorithm 2",
    DECOMP_BUCKET_LEVELS: "candidate fraction levels per fixed-k bucket peel",
    DECOMP_FLAT_LEVELS: "distinct fraction levels in the global flat ladder",
    DECOMP_PARALLEL_WORKERS: "peel tasks completed per pool worker",
    MAINT_WINDOW_WIDTH: "recomputed p-number window widths p_+ - p_-",
    MAINT_WINDOW_P_MINUS: "window lower ends p_- (Defs. 5-7 bounds)",
    MAINT_WINDOW_P_PLUS: "window upper ends p_+ (Defs. 5-7 bounds)",
    INDEX_ANSWER_SIZE: "per-query answer sizes (Theorem 1 output bound)",
    INDEX_LEVELS_SEARCHED: "|P_k| binary-searched per query",
    SERVER_BATCH_SIZE: "queries per query_many batch on the concurrent server",
    KCORE_MAINT_SUBCORE_SIZE: "subcore sizes walked per core update",
    KORDER_CHAIN_LENGTH: "forward-walk chain lengths per order insert",
}

SPANS: dict[str, str] = {
    KPCORE_SPAN: "one kpCore computation (with snapshot/peel children)",
    KPCORE_SPAN_SNAPSHOT: "compact adjacency snapshot build",
    KPCORE_SPAN_PEEL: "threshold peel over the snapshot",
    DECOMP_SPAN: "one full Algorithm 2 decomposition",
    DECOMP_SPAN_CORE_NUMBERS: "core numbers of the snapshot",
    DECOMP_SPAN_SORT: "neighbour sort by descending core number",
    DECOMP_SPAN_PEEL: "fixed-k peels for every k",
    MAINT_SPAN_INSERT: "one kpIndexInsert update",
    MAINT_SPAN_DELETE: "one kpIndexDelete update",
    MAINT_SPAN_BATCH: "one coalesced apply_batch (multi-update) application",
}


TRACES: dict[str, str] = {
    TRACE_COMMAND: "root span of a `repro trace <cmd>` run",
    TRACE_SERVER_QUERY: "one KPCoreServer.query request",
    TRACE_SERVER_QUERY_MANY: "one KPCoreServer.query_many batch",
    TRACE_SERVER_QUERY_ONE: "one (k, p) pair inside a query_many batch",
    TRACE_SERVER_APPLY: "one KPCoreServer.apply update batch",
    TRACE_SERVER_INSERT: "one KPCoreServer.insert_edge update",
    TRACE_SERVER_DELETE: "one KPCoreServer.delete_edge update",
    TRACE_SERVER_CHECKPOINT: "one KPCoreServer.checkpoint",
    TRACE_LOCK_READ_WAIT: "time blocked acquiring the read lock (per site)",
    TRACE_LOCK_READ_HOLD: "time the read lock was held (per site)",
    TRACE_LOCK_WRITE_WAIT: "time blocked acquiring the write lock (per site)",
    TRACE_LOCK_WRITE_HOLD: "time the write lock was held (per site)",
    TRACE_CACHE_PROBE: "QueryCache lookup (hit or miss)",
    TRACE_CACHE_FILL: "QueryCache insert of a freshly computed answer",
    TRACE_CACHE_PURGE: "QueryCache invalidation of changed-version entries",
    TRACE_QUERY_ANSWER: "Algorithm 3 answer build on a cache miss",
    TRACE_PEEL_FIXED_K: "one fixed-k peel (per worker when parallel)",
}


def catalog() -> dict[str, dict[str, str]]:
    """``{kind: {name: description}}`` — the documented metric surface."""
    return {
        "counters": dict(COUNTERS),
        "histograms": dict(HISTOGRAMS),
        "spans": dict(SPANS),
        "traces": dict(TRACES),
    }
