"""Observability: counters, histograms, and spans for every hot path.

The paper's efficiency claims rest on internal quantities — peel
operations per edge (O(m), Algorithm 1), per-``A_k`` skip decisions and
``[p_-, p_+]`` window widths (Theorems 2-9), output-proportional query
touches (Theorem 1) — that wall-clock seconds cannot show.  This package
collects exactly those quantities:

* :mod:`repro.obs.instrumentation` — the collector and the process-wide
  switch (``REPRO_OBS=1`` or :func:`collecting`),
* :mod:`repro.obs.names` — the documented metric catalog,
* :mod:`repro.obs.snapshot` — immutable, JSON-round-trippable exports,
* :mod:`repro.obs.report` — aligned-table rendering,
* :mod:`repro.obs.logsink` — structured ``logging`` emission,
* :mod:`repro.obs.trace` — opt-in per-request traces (``REPRO_TRACE=1``
  or :func:`tracing`): trace IDs and trees of timed spans with
  attributes, cross-process propagation for the worker pool,
* :mod:`repro.obs.trace_export` — JSONL and Chrome trace-event
  exporters plus the latency attribution tables,
* :mod:`repro.obs.quantiles` — shared interpolated-quantile math and
  the bounded :class:`~repro.obs.quantiles.ReservoirSketch`.

Usage::

    from repro.obs import collecting
    with collecting() as metrics:
        kp_core_vertices(graph, k=5, p=0.5)
    print(metrics.snapshot().counters["kcore.peel.edge_scans"])

or from the command line::

    REPRO_OBS=1 python -m repro kpcore graph.txt -k 5 -p 0.5
    python -m repro profile kpcore graph.txt -k 5 -p 0.5

Disabled collection (the default) costs each instrumented function one
cached ``None`` check — the peeling loops themselves are never touched;
see ``docs/observability.md`` for the overhead discipline and the KP007
lint rule that enforces it.
"""

from repro.obs.instrumentation import (
    ENV_VAR,
    Instrumentation,
    collecting,
    collection_active,
    get_collector,
    maybe_span,
    refresh_from_env,
    set_collector,
)
from repro.obs.logsink import log_snapshot, span_logger
from repro.obs.quantiles import LATENCY_METHOD, ReservoirSketch, quantile
from repro.obs.report import render_report
from repro.obs.snapshot import HistogramSummary, MetricsSnapshot, SpanSummary
from repro.obs.trace import (
    TRACE_ENV_VAR,
    NullTraceSpan,
    TraceEvent,
    Tracer,
    TraceSpan,
    get_tracer,
    maybe_trace_span,
    refresh_trace_from_env,
    set_tracer,
    trace_active,
    tracing,
)

__all__ = [
    "ENV_VAR",
    "TRACE_ENV_VAR",
    "LATENCY_METHOD",
    "Instrumentation",
    "MetricsSnapshot",
    "HistogramSummary",
    "SpanSummary",
    "Tracer",
    "TraceEvent",
    "TraceSpan",
    "NullTraceSpan",
    "collecting",
    "collection_active",
    "get_collector",
    "set_collector",
    "refresh_from_env",
    "maybe_span",
    "trace_active",
    "get_tracer",
    "set_tracer",
    "refresh_trace_from_env",
    "tracing",
    "maybe_trace_span",
    "quantile",
    "ReservoirSketch",
    "render_report",
    "log_snapshot",
    "span_logger",
]
