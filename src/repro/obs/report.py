"""Human-readable rendering of a :class:`~repro.obs.snapshot.MetricsSnapshot`.

One aligned table per metric kind (counters, histograms, spans), in the
same fixed-width style as the benchmark harness, plus descriptions from
the :mod:`repro.obs.names` catalog where a name is documented.  The
renderer works identically on a live snapshot and on one reloaded from
JSON, which is what lets ``python -m repro profile --json`` round-trip.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.names import COUNTERS, HISTOGRAMS, SPANS
from repro.obs.snapshot import MetricsSnapshot

__all__ = ["counter_rows", "histogram_rows", "span_rows", "render_report"]

Rows = tuple[Sequence[str], list[Sequence[object]]]


def counter_rows(snapshot: MetricsSnapshot) -> Rows:
    """``(headers, rows)`` for the counter table, sorted by name."""
    headers = ("counter", "value", "description")
    rows: list[Sequence[object]] = [
        (name, value, COUNTERS.get(name, ""))
        for name, value in sorted(snapshot.counters.items())
    ]
    return headers, rows


def histogram_rows(snapshot: MetricsSnapshot) -> Rows:
    """``(headers, rows)`` for the histogram table, sorted by name."""
    headers = ("histogram", "count", "mean", "min", "max", "description")
    rows: list[Sequence[object]] = [
        (
            name,
            hist.count,
            round(hist.mean, 6),
            round(hist.minimum, 6),
            round(hist.maximum, 6),
            HISTOGRAMS.get(name, ""),
        )
        for name, hist in sorted(snapshot.histograms.items())
    ]
    return headers, rows


def span_rows(snapshot: MetricsSnapshot) -> Rows:
    """``(headers, rows)`` for the span table, in path order.

    Path order keeps a child (``parent/child``) right under its parent;
    the rendered name indents children by nesting depth.
    """
    headers = ("span", "count", "seconds", "description")
    rows: list[Sequence[object]] = []
    for path, span in sorted(snapshot.spans.items()):
        depth = path.count("/")
        leaf = path.rsplit("/", 1)[-1]
        rows.append(
            (
                "  " * depth + leaf,
                span.count,
                round(span.seconds, 6),
                SPANS.get(leaf, ""),
            )
        )
    return headers, rows


def render_report(snapshot: MetricsSnapshot, title: str = "metrics") -> str:
    """The full report: banner plus one table per non-empty metric kind."""
    # Imported lazily: repro.bench pulls in the experiment drivers (and
    # through them the instrumented core modules), so a module-level
    # import here would be circular.
    from repro.bench.reporting import banner, format_table

    sections: list[str] = [banner(title).lstrip("\n")]
    if snapshot.is_empty():
        sections.append("(no metrics collected)")
        return "\n".join(sections)
    for headers, rows in (
        counter_rows(snapshot),
        histogram_rows(snapshot),
        span_rows(snapshot),
    ):
        if rows:
            sections.append(format_table(headers, rows))
    return "\n\n".join(sections)
