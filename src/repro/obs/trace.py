"""Per-request tracing: trace IDs, nested timed spans, a ring-buffer recorder.

Where :mod:`repro.obs.instrumentation` answers "how much work happened in
aggregate", this module answers "where did *this* request's time go".  A
trace is a tree of timed spans sharing one trace ID: the serving layer
opens a root span per query/update, and the instrumented sections below
it (lock wait/hold, cache probe/fill/purge, Algorithm 3 answer builds,
per-``k`` peels) attach themselves as children.

Design constraints, mirroring the metrics layer:

* **Disabled is the default and must stay near free.**  Every
  instrumented site fetches the active tracer once per call
  (:func:`get_tracer`) and branches on the cached result; the peeling
  loops themselves are never touched (rule KP007 covers the trace call
  names too).
* **Enabled via environment or explicitly.**  ``REPRO_TRACE=1`` installs
  a process-wide tracer at import time; :func:`tracing` scopes one to a
  ``with`` block (the programmatic equivalent used by ``python -m repro
  trace``).
* **Bounded memory.**  Completed spans land in a ring buffer
  (:data:`DEFAULT_BUFFER_SIZE` events, override with
  ``REPRO_TRACE_BUFFER``); the oldest events are dropped, and
  :attr:`Tracer.dropped` says how many.

Cross-process propagation: :meth:`Tracer.context` captures ``(trace_id,
span_id)`` of the innermost open span, worker processes build their own
``Tracer(context=...)`` so their spans parent correctly, and the parent
absorbs the serialized events back with :meth:`Tracer.absorb` — see
:mod:`repro.core.parallel` for the pool wiring.

Timestamps are wall-clock anchored (``time.time`` at tracer creation
plus ``time.perf_counter`` deltas), so events merged from several
processes order sensibly on one timeline.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ParameterError

__all__ = [
    "TRACE_ENV_VAR",
    "BUFFER_ENV_VAR",
    "DEFAULT_BUFFER_SIZE",
    "TraceEvent",
    "TraceSpan",
    "NullTraceSpan",
    "NULL_TRACE_SPAN",
    "Tracer",
    "trace_active",
    "get_tracer",
    "set_tracer",
    "refresh_trace_from_env",
    "tracing",
    "maybe_trace_span",
]

#: Environment variable that switches per-request tracing on.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable overriding the ring-buffer capacity (events).
BUFFER_ENV_VAR = "REPRO_TRACE_BUFFER"

#: Default ring-buffer capacity: completed spans kept before dropping.
DEFAULT_BUFFER_SIZE = 65536

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_active(value: str | None) -> bool:
    return value is not None and value.strip().lower() in _TRUTHY


def _env_buffer_size() -> int:
    raw = os.environ.get(BUFFER_ENV_VAR)
    if raw is None:
        return DEFAULT_BUFFER_SIZE
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_BUFFER_SIZE
    return size if size >= 1 else DEFAULT_BUFFER_SIZE


class TraceEvent:
    """One completed timed section of a trace.

    ``ts`` is wall-clock seconds (epoch), ``dur`` is seconds.  ``attrs``
    carries the span attributes (``k``, ``p``, ``cache_hit``, ...);
    ``parent_id`` is ``None`` for trace roots.  IDs are strings of the
    form ``pid.counter`` so events merged across processes never
    collide.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "ts",
        "dur",
        "pid",
        "tid",
        "thread",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        thread: str,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.thread = thread
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (and the pickle shipped across the pool)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else str(payload["parent_id"])
            ),
            ts=float(payload["ts"]),
            dur=float(payload["dur"]),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            thread=str(payload.get("thread", "")),
            attrs=dict(payload.get("attrs", {})),
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent({self.name!r}, trace={self.trace_id}, "
            f"span={self.span_id}, dur={self.dur:.6f}s)"
        )


class TraceSpan:
    """An open span; a context manager handed out by :meth:`Tracer.span`.

    Entering pushes the span onto the thread's stack (so nested spans and
    :meth:`Tracer.record` calls parent under it); exiting pops and
    records the completed :class:`TraceEvent`.  Attributes may be added
    while open via :meth:`set`.
    """

    __slots__ = ("_tracer", "name", "attrs", "trace_id", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: str | None = None
        self._start = 0.0

    def set(self, name: str, value: Any) -> None:
        """Attach (or overwrite) one attribute of the open span."""
        self.attrs[name] = value

    def __enter__(self) -> "TraceSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self.trace_id, self.parent_id = tracer._frame(stack)
        self.span_id = tracer._new_span_id()
        stack.append((self.trace_id, self.span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._stack().pop()
        tracer._append(
            TraceEvent(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                ts=tracer._to_wall(self._start),
                dur=end - self._start,
                pid=tracer._pid,
                tid=threading.get_ident(),
                thread=threading.current_thread().name,
                attrs=self.attrs,
            )
        )


class NullTraceSpan:
    """Reusable no-op span for disabled tracing (stateless singleton)."""

    __slots__ = ()

    def set(self, name: str, value: Any) -> None:
        return None

    def __enter__(self) -> "NullTraceSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The shared no-op span returned by :func:`maybe_trace_span` when off.
NULL_TRACE_SPAN = NullTraceSpan()


class Tracer:
    """Recorder of one process's trace events, with a bounded buffer.

    Span entry/exit and :meth:`record` are safe to call from several
    threads at once (each thread keeps its own span stack; the buffer
    append is atomic under the GIL).  A tracer created with ``context=
    (trace_id, span_id)`` parents its root spans under that foreign
    span instead of opening fresh traces — the worker-process half of
    cross-process propagation.
    """

    def __init__(
        self,
        buffer_size: int | None = None,
        context: tuple[str, str | None] | None = None,
    ) -> None:
        if buffer_size is None:
            buffer_size = _env_buffer_size()
        if buffer_size < 1:
            raise ParameterError(
                f"trace buffer size must be >= 1, got {buffer_size}"
            )
        self.buffer_size = buffer_size
        self._events: deque[TraceEvent] = deque(maxlen=buffer_size)
        self._recorded = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._context = context
        self._pid = os.getpid()
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()

    # ------------------------------------------------------------------
    # internals shared by spans and record()
    # ------------------------------------------------------------------
    def _stack(self) -> list[tuple[str, str]]:
        stack: list[tuple[str, str]] | None = getattr(
            self._local, "stack", None
        )
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _frame(
        self, stack: list[tuple[str, str]]
    ) -> tuple[str, str | None]:
        """``(trace_id, parent_span_id)`` for a section starting now."""
        if stack:
            return stack[-1]
        if self._context is not None:
            return self._context
        return self._new_trace_id(), None

    def _new_trace_id(self) -> str:
        return f"t{self._pid:x}.{next(self._ids):x}"

    def _new_span_id(self) -> str:
        return f"{self._pid:x}.{next(self._ids):x}"

    def _to_wall(self, perf_time: float) -> float:
        return self._anchor_wall + (perf_time - self._anchor_perf)

    def _append(self, event: TraceEvent) -> None:
        self._recorded += 1
        self._events.append(event)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> TraceSpan:
        """An open span context manager::

            with tracer.span("server.query", k=k, p=p) as span:
                ...
                span.set("answer_size", len(answer))
        """
        return TraceSpan(self, name, dict(attrs))

    def record(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> TraceEvent:
        """Record an already-measured section (``time.perf_counter``
        readings) as a child of the current open span.

        The instrumentation shape for sites that cannot wrap their work
        in a ``with`` block — lock acquisition waits, for example.
        """
        stack = self._stack()
        trace_id, parent_id = self._frame(stack)
        event = TraceEvent(
            name=name,
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            ts=self._to_wall(start),
            dur=max(0.0, end - start),
            pid=self._pid,
            tid=threading.get_ident(),
            thread=threading.current_thread().name,
            attrs=dict(attrs),
        )
        self._append(event)
        return event

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def context(self) -> tuple[str, str | None]:
        """``(trace_id, span_id)`` of this thread's innermost open span.

        Ship it to a worker process and build ``Tracer(context=ctx)``
        there; the worker's root spans then join this trace as children
        of the captured span.
        """
        return self._frame(self._stack())

    def absorb(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Merge serialized events (``TraceEvent.to_dict`` dicts) from a
        worker process into this buffer; returns how many were added."""
        count = 0
        for payload in payloads:
            self._append(TraceEvent.from_dict(payload))
            count += 1
        return count

    # ------------------------------------------------------------------
    # export / lifecycle
    # ------------------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first (a detached copy)."""
        return list(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including dropped ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring buffer by newer ones."""
        return self._recorded - len(self._events)

    def clear(self) -> None:
        """Drop every buffered event (open span stacks are preserved)."""
        self._events.clear()
        self._recorded = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"Tracer(events={len(self._events)}, dropped={self.dropped}, "
            f"buffer_size={self.buffer_size})"
        )


# ----------------------------------------------------------------------
# process-wide tracing switch (mirrors the metrics collector switch)
# ----------------------------------------------------------------------
_tracer: Tracer | None = (
    Tracer() if _env_active(os.environ.get(TRACE_ENV_VAR)) else None
)


def trace_active() -> bool:
    """Whether a tracer is currently installed."""
    return _tracer is not None


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off.

    Hot paths call this once per invocation and branch on the cached
    result — never inside their loops (rule KP007).
    """
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the process-wide tracer; returns the previous
    one so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def refresh_trace_from_env() -> bool:
    """Re-read :data:`TRACE_ENV_VAR`; installs/clears the tracer.

    Returns the resulting active state.  An already-installed tracer is
    kept (not replaced) when the environment still says on.
    """
    global _tracer
    if _env_active(os.environ.get(TRACE_ENV_VAR)):
        if _tracer is None:
            _tracer = Tracer()
    else:
        _tracer = None
    return _tracer is not None


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope a tracer to a ``with`` block; restores the previous one.

    >>> from repro.obs import tracing
    >>> with tracing() as tracer:
    ...     with tracer.span("example") as span:
    ...         span.set("k", 3)
    >>> [event.name for event in tracer.events()]
    ['example']
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def maybe_trace_span(name: str, **attrs: Any) -> TraceSpan | NullTraceSpan:
    """``tracer.span(name, ...)`` when tracing is on, else a no-op span.

    For request-level sections (server queries, update batches) — not
    for use inside peeling loops, where even the no-op ``with`` block
    per iteration would be measurable (rule KP007 flags it).
    """
    tracer = _tracer
    if tracer is None:
        return NULL_TRACE_SPAN
    return tracer.span(name, **attrs)
