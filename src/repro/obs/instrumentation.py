"""The metric collector and the process-wide collection switch.

Design constraints (mirroring :mod:`repro.devtools.contracts`):

* **Disabled is the default and must stay near free.**  Every hot path
  fetches the active collector once per call (:func:`get_collector`) and
  keeps the result in a local — the per-loop cost of disabled collection
  is that one cached ``None`` check, never a per-iteration branch.  The
  instrumented kernels derive most counts *after* their loops from state
  the algorithm already maintains, so the enabled path stays O(m) too.
* **Enabled via environment or explicitly.**  ``REPRO_OBS=1`` installs a
  process-wide collector at import time; :func:`collecting` scopes a
  fresh collector to a ``with`` block (the programmatic equivalent used
  by ``measure(capture_metrics=True)`` and ``python -m repro profile``).

Three metric kinds:

* **counters** — monotone integers (:meth:`Instrumentation.inc` /
  :meth:`~Instrumentation.add`),
* **histograms** — streaming count/total/min/max summaries of observed
  values (:meth:`~Instrumentation.observe`),
* **spans** — nested wall-clock sections (:meth:`~Instrumentation.span`);
  nesting is encoded in the recorded path (``parent/child``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.snapshot import HistogramSummary, MetricsSnapshot, SpanSummary

__all__ = [
    "ENV_VAR",
    "Instrumentation",
    "collection_active",
    "get_collector",
    "set_collector",
    "refresh_from_env",
    "collecting",
    "maybe_span",
]

#: Environment variable that switches metric collection on.
ENV_VAR = "REPRO_OBS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_active(value: str | None) -> bool:
    return value is not None and value.strip().lower() in _TRUTHY


class Instrumentation:
    """One registry of counters, histograms, and nested spans.

    Collectors are cheap to create and not thread-safe by design — the
    library is single-threaded per computation, and a fresh collector per
    measured region (see :func:`collecting`) keeps attribution simple.
    """

    __slots__ = ("_counters", "_hists", "_spans", "_span_stack")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        # name -> [count, total, min, max]
        self._hists: dict[str, list[float]] = {}
        # path -> [count, seconds]
        self._spans: dict[str, list[float]] = {}
        self._span_stack: list[str] = []

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` (default 1) to counter ``name``."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    #: Alias emphasizing bulk flushes of loop-local accumulators.
    add = inc

    def counter(self, name: str, default: int = 0) -> int:
        """Current value of one counter."""
        return self._counters.get(name, default)

    # ------------------------------------------------------------------
    # histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            self._hists[name] = [1, value, value, value]
            return
        hist[0] += 1
        hist[1] += value
        if value < hist[2]:
            hist[2] = value
        if value > hist[3]:
            hist[3] = value

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Measure a wall-clock section; nests via the recorded path."""
        stack = self._span_stack
        stack.append(name)
        path = "/".join(stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            span = self._spans.get(path)
            if span is None:
                self._spans[path] = [1, elapsed]
            else:
                span[0] += 1
                span[1] += elapsed

    def span_seconds(self, path: str) -> float:
        """Total seconds recorded under span ``path`` (0.0 if absent)."""
        span = self._spans.get(path)
        return span[1] if span is not None else 0.0

    # ------------------------------------------------------------------
    # export / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Detach an immutable copy of everything collected so far."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            histograms={
                name: HistogramSummary(
                    count=int(h[0]), total=h[1], minimum=h[2], maximum=h[3]
                )
                for name, h in self._hists.items()
            },
            spans={
                path: SpanSummary(count=int(s[0]), seconds=s[1])
                for path, s in self._spans.items()
            },
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a detached snapshot into this collector.

        Counters add, histograms fold count/total/min/max, span paths
        add count/seconds.  This is how worker-process metrics rejoin
        the parent collector after a :mod:`repro.core.parallel` run.
        """
        for name, value in snapshot.counters.items():
            self.inc(name, value)
        for name, summary in snapshot.histograms.items():
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [
                    summary.count,
                    summary.total,
                    summary.minimum,
                    summary.maximum,
                ]
                continue
            hist[0] += summary.count
            hist[1] += summary.total
            if summary.minimum < hist[2]:
                hist[2] = summary.minimum
            if summary.maximum > hist[3]:
                hist[3] = summary.maximum
        for path, span_summary in snapshot.spans.items():
            span = self._spans.get(path)
            if span is None:
                self._spans[path] = [span_summary.count, span_summary.seconds]
            else:
                span[0] += span_summary.count
                span[1] += span_summary.seconds

    def reset(self) -> None:
        """Drop every collected metric (open span nesting is preserved)."""
        self._counters.clear()
        self._hists.clear()
        self._spans.clear()

    def __repr__(self) -> str:
        return (
            f"Instrumentation(counters={len(self._counters)}, "
            f"histograms={len(self._hists)}, spans={len(self._spans)})"
        )


# ----------------------------------------------------------------------
# process-wide collection switch
# ----------------------------------------------------------------------
_collector: Instrumentation | None = (
    Instrumentation() if _env_active(os.environ.get(ENV_VAR)) else None
)


def collection_active() -> bool:
    """Whether a collector is currently installed."""
    return _collector is not None


def get_collector() -> Instrumentation | None:
    """The active collector, or ``None`` when collection is off.

    Hot paths call this once per invocation and branch on the cached
    result — never inside their loops.
    """
    return _collector


def set_collector(collector: Instrumentation | None) -> Instrumentation | None:
    """Install (or clear) the process-wide collector; returns the previous
    one so callers can restore it."""
    global _collector
    previous = _collector
    _collector = collector
    return previous


def refresh_from_env() -> bool:
    """Re-read :data:`ENV_VAR`; installs/clears the collector accordingly.

    Returns the resulting active state.  An already-installed collector
    is kept (not replaced) when the environment still says on.
    """
    global _collector
    if _env_active(os.environ.get(ENV_VAR)):
        if _collector is None:
            _collector = Instrumentation()
    else:
        _collector = None
    return _collector is not None


@contextmanager
def collecting(
    collector: Instrumentation | None = None,
) -> Iterator[Instrumentation]:
    """Scope a collector to a ``with`` block; restores the previous one.

    >>> from repro.obs import collecting
    >>> with collecting() as metrics:
    ...     pass  # run instrumented code
    >>> metrics.snapshot().is_empty()
    True
    """
    active = collector if collector is not None else Instrumentation()
    previous = set_collector(active)
    try:
        yield active
    finally:
        set_collector(previous)


class _NullSpan:
    """Reusable no-op context manager for disabled collection."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def maybe_span(name: str):
    """``collector.span(name)`` when collection is on, else a no-op.

    For wrapper-level sections (snapshot build, full decompositions) —
    not for use inside peeling loops, where even a no-op ``with`` block
    per iteration would be measurable.
    """
    collector = _collector
    if collector is None:
        return _NULL_SPAN
    return collector.span(name)
