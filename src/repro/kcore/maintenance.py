"""Incremental core-number maintenance under edge insertions/deletions.

The KP-Index maintenance algorithms (Sec. VI) need up-to-date core numbers
after every edge update; the paper delegates this to the order-based
algorithm of [30], which shares its correctness foundation with the earlier
traversal ("subcore") algorithm of [18]:

* an edge update changes the core number of a vertex by **at most 1**, and
* only vertices with ``cn == K`` (``K = min(cn(u), cn(v))``) that are
  reachable from the updated endpoints through vertices of core number
  ``K`` — the *subcore* — can change.

:class:`CoreMaintainer` implements the traversal algorithm: it walks the
subcore, then runs a local peeling over it to decide which members gain
(insertion) or lose (deletion) one level.  The asymptotics match [30] on
the evaluation's workloads and the implementation is validated against
from-scratch recomputation in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph, Vertex
from repro.kcore.decomposition import core_decomposition
from repro.obs import names
from repro.obs.instrumentation import get_collector

__all__ = ["CoreMaintainer"]


class CoreMaintainer:
    """Keeps ``cn(v, G)`` current while ``G`` receives edge updates.

    The maintainer owns its graph reference: all updates must go through
    :meth:`insert_edge` / :meth:`delete_edge` (or the vertex helpers), and
    callers must not mutate the graph behind its back.

    >>> g = Graph([(1, 2), (2, 3), (3, 1)])
    >>> maintainer = CoreMaintainer(g)
    >>> maintainer.core_number(1)
    2
    >>> changed = maintainer.delete_edge(1, 2)
    >>> sorted(changed)
    [1, 2, 3]
    >>> maintainer.core_number(1)
    1
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._core: dict[Vertex, int] = dict(
            core_decomposition(graph).core_numbers
        )
        #: total vertices whose promotion/demotion was evaluated — the
        #: work figure the backend ablation compares across algorithms
        self.candidates_evaluated = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def core_number(self, v: Vertex) -> int:
        """Current ``cn(v, G)``."""
        return self._core[v]

    def core_number_or(self, v: Vertex, default: int = 0) -> int:
        """``cn(v, G)`` or ``default`` for vertices not (yet) in the graph."""
        return self._core.get(v, default)

    def core_numbers(self) -> dict[Vertex, int]:
        """A snapshot copy of all current core numbers."""
        return dict(self._core)

    @property
    def degeneracy(self) -> int:
        """Current ``d(G)``."""
        return max(self._core.values(), default=0)

    # ------------------------------------------------------------------
    # vertex updates (Sec. VI preamble: vertex dynamics reduce to edges)
    # ------------------------------------------------------------------
    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> None:
        """Insert a (possibly isolated) vertex, then each incident edge."""
        self.graph.add_vertex(v)
        self._core.setdefault(v, 0)
        for w in neighbors:
            self.insert_edge(v, w)

    def delete_vertex(self, v: Vertex) -> None:
        """Delete ``v`` by removing its incident edges one at a time."""
        for w in list(self.graph.neighbors(v)):
            self.delete_edge(v, w)
        self.graph.remove_vertex(v)
        del self._core[v]

    # ------------------------------------------------------------------
    # edge insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Insert ``(u, v)``; return the vertices whose core number rose.

        Endpoints are created on demand with core number 0.  Raises
        :class:`~repro.errors.EdgeExistsError` for duplicate edges and
        :class:`~repro.errors.SelfLoopError` for self loops.
        """
        if u == v:
            raise SelfLoopError(u)
        if self.graph.has_edge(u, v):
            raise EdgeExistsError(u, v)
        self.graph.add_edge(u, v)
        self._core.setdefault(u, 0)
        self._core.setdefault(v, 0)

        core = self._core
        level = min(core[u], core[v])
        subcore = self._collect_subcore(
            [w for w in (u, v) if core[w] == level], level
        )
        self.candidates_evaluated += len(subcore)
        # Local peeling: a subcore member can rise to level+1 only if it
        # keeps > level neighbours that are themselves above the level or
        # rising with it.
        support = {
            w: sum(1 for x in self.graph.neighbors(w) if core[x] >= level)
            for w in subcore
        }
        evicted: set[Vertex] = set()
        queue = deque(w for w in subcore if support[w] <= level)
        while queue:
            w = queue.popleft()
            if w in evicted:
                continue
            evicted.add(w)
            for x in self.graph.neighbors(w):
                if x in subcore and x not in evicted:
                    support[x] -= 1
                    if support[x] <= level:
                        queue.append(x)
        promoted = subcore - evicted
        for w in promoted:
            core[w] = level + 1
        obs = get_collector()
        if obs is not None:
            obs.observe(names.KCORE_MAINT_SUBCORE_SIZE, len(subcore))
            obs.add(names.KCORE_MAINT_PROMOTED, len(promoted))
        return promoted

    # ------------------------------------------------------------------
    # edge deletion
    # ------------------------------------------------------------------
    def delete_edge(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Delete ``(u, v)``; return the vertices whose core number fell.

        Raises :class:`~repro.errors.EdgeNotFoundError` if absent.
        """
        if not self.graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self.graph.remove_edge(u, v)

        core = self._core
        level = min(core[u], core[v])
        if level == 0:
            return set()
        seeds = [w for w in (u, v) if core[w] == level]
        subcore = self._collect_subcore(seeds, level)
        self.candidates_evaluated += len(subcore)
        # Members whose support drops below the level cascade down by one.
        support = {
            w: sum(1 for x in self.graph.neighbors(w) if core[x] >= level)
            for w in subcore
        }
        demoted: set[Vertex] = set()
        queue = deque(w for w in subcore if support[w] < level)
        while queue:
            w = queue.popleft()
            if w in demoted:
                continue
            demoted.add(w)
            for x in self.graph.neighbors(w):
                if x in subcore and x not in demoted:
                    support[x] -= 1
                    if support[x] < level:
                        queue.append(x)
        for w in demoted:
            core[w] = level - 1
        obs = get_collector()
        if obs is not None:
            obs.observe(names.KCORE_MAINT_SUBCORE_SIZE, len(subcore))
            obs.add(names.KCORE_MAINT_DEMOTED, len(demoted))
        return demoted

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _collect_subcore(self, seeds: Iterable[Vertex], level: int) -> set[Vertex]:
        """Vertices with ``cn == level`` reachable from ``seeds`` through
        vertices of that same core number."""
        core = self._core
        found: set[Vertex] = set()
        queue = deque()
        for s in seeds:
            if s not in found:
                found.add(s)
                queue.append(s)
        while queue:
            w = queue.popleft()
            for x in self.graph.neighbors(w):
                if x not in found and core[x] == level:
                    found.add(x)
                    queue.append(x)
        return found
