"""Order-based incremental core maintenance (in the spirit of [30]).

The paper's maintenance layer cites the order-based algorithm of Zhang,
Yu, Zhang and Qin (ICDE 2017), whose key idea is to maintain a **k-order**
— a vertex sequence ``O_1 O_2 … O_d`` that witnesses the core
decomposition: core numbers are non-decreasing along it and every vertex
has at most ``cn(v)`` neighbours *after* itself.  An inserted edge can
only promote vertices reachable *forward* from the order-smaller endpoint
through its core level, which is typically a far smaller candidate set
than the whole subcore the traversal algorithm visits.

:class:`OrderBasedCoreMaintainer` implements that candidate generation
faithfully, with two simplifications relative to the full ICDE'17
machinery (both documented because they trade constants, not correctness):

* order positions are plain per-level lists re-indexed on change, instead
  of an O(1) order-maintenance structure;
* after a promotion or demotion, the affected levels' internal order is
  rebuilt by a local bucket peel over ``{cn >= k}`` rather than repaired
  in place.

When no core number changes — the common case — the order provably stays
valid and nothing is rebuilt.  When it does change, the rebuild costs
O(m_k); the full ICDE'17 structure repairs the order in place to avoid
exactly this, which is why the backend ablation
(``benchmarks/bench_ablation_core_backends.py``) shows the walk evaluating
fewer candidates while this implementation spends more wall time overall.
Exactness is property-tested against recomputation and against the
traversal maintainer; the k-order invariant is checked by
:func:`is_valid_k_order` in the suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.errors import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.kcore.decomposition import core_decomposition, core_numbers_compact
from repro.obs import names
from repro.obs.instrumentation import get_collector

__all__ = ["OrderBasedCoreMaintainer", "is_valid_k_order"]


def is_valid_k_order(
    graph: Graph,
    order: Sequence[Vertex],
    core_numbers: Mapping[Vertex, int],
) -> bool:
    """Check that ``order`` witnesses ``core_numbers`` as a peel order.

    Valid iff (i) every vertex appears exactly once, (ii) core numbers are
    non-decreasing along the order, and (iii) each vertex has at most
    ``cn(v)`` neighbours positioned after itself (its removal-time
    degree).
    """
    if sorted(order, key=repr) != sorted(graph.vertices(), key=repr):
        return False
    position = {v: i for i, v in enumerate(order)}
    previous = 0
    for v in order:
        cn = core_numbers[v]
        if cn < previous:
            return False
        previous = cn
        later = sum(1 for w in graph.neighbors(v) if position[w] > position[v])
        if later > cn:
            return False
    return True


class OrderBasedCoreMaintainer:
    """Incremental core numbers via k-order candidate walks.

    Mirrors :class:`repro.kcore.maintenance.CoreMaintainer`'s interface:
    :meth:`insert_edge` / :meth:`delete_edge` return the set of vertices
    whose core number changed.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        decomposition = core_decomposition(graph)
        self._core: dict[Vertex, int] = dict(decomposition.core_numbers)
        # per-level order lists, from the decomposition's peel order
        self._levels: dict[int, list[Vertex]] = {}
        for v in decomposition.peel_order:
            self._levels.setdefault(self._core[v], []).append(v)
        self._positions: dict[Vertex, int] = {}
        for members in self._levels.values():
            self._reindex(members)
        #: total vertices whose promotion/demotion was evaluated (the
        #: forward-walk chains for insertion, subcores for deletion)
        self.candidates_evaluated = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def core_number(self, v: Vertex) -> int:
        return self._core[v]

    def core_number_or(self, v: Vertex, default: int = 0) -> int:
        return self._core.get(v, default)

    def core_numbers(self) -> dict[Vertex, int]:
        return dict(self._core)

    @property
    def degeneracy(self) -> int:
        return max(self._core.values(), default=0)

    # ------------------------------------------------------------------
    # vertex dynamics (interface parity with CoreMaintainer)
    # ------------------------------------------------------------------
    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> None:
        if v not in self._core:
            self.graph.add_vertex(v)
            self._core[v] = 0
            self._levels.setdefault(0, []).append(v)
            self._positions[v] = len(self._levels[0]) - 1
        for w in neighbors:
            self.insert_edge(v, w)

    def delete_vertex(self, v: Vertex) -> None:
        for w in list(self.graph.neighbors(v)):
            self.delete_edge(v, w)
        self.graph.remove_vertex(v)
        del self._core[v]
        zero = self._levels.get(0)
        if zero and v in self._positions and v in zero:
            zero.remove(v)
            self._reindex(zero)
            if not zero:
                del self._levels[0]
        self._positions.pop(v, None)

    def k_order(self) -> list[Vertex]:
        """The maintained global k-order ``O_1 O_2 … O_d``."""
        out: list[Vertex] = []
        for k in sorted(self._levels):
            out.extend(self._levels[k])
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _reindex(self, members: Iterable[Vertex]) -> None:
        for i, v in enumerate(members):
            self._positions[v] = i

    def _order_before(self, a: Vertex, b: Vertex) -> bool:
        ka, kb = self._core[a], self._core[b]
        if ka != kb:
            return ka < kb
        return self._positions[a] < self._positions[b]

    def _deg_plus(self, v: Vertex) -> int:
        """Neighbours after ``v`` in the current k-order."""
        return sum(
            1 for w in self.graph.neighbors(v) if self._order_before(v, w)
        )

    def _rebuild_levels(self, ks: Iterable[Vertex]) -> None:
        """Recompute the internal order of the given levels by a local
        bucket peel over the induced subgraph on ``{cn >= min(ks)}``."""
        ks = sorted(set(ks))
        if not ks:
            return
        floor = ks[0]
        members = [v for v, c in self._core.items() if c >= floor]
        if not members:
            for k in ks:
                self._levels.pop(k, None)
            return
        obs = get_collector()
        if obs is not None:
            obs.add(names.KORDER_LEVELS_REBUILT, len(ks))
            obs.add(names.KORDER_VERTICES_SHIFTED, len(members))
        sub = self.graph.induced_subgraph(members)
        snapshot = CompactAdjacency(sub)
        _, peel = core_numbers_compact(snapshot)
        rebuilt = set(ks)
        for k in ks:
            self._levels[k] = []
        # The bucket peel removes vertices in non-decreasing core number,
        # so the per-level subsequences are valid internal orders.
        for i in peel:
            v = snapshot.labels[i]
            k = self._core[v]
            if k in rebuilt:
                self._levels[k].append(v)
        for k in ks:
            if self._levels[k]:
                self._reindex(self._levels[k])
            else:
                del self._levels[k]

    # ------------------------------------------------------------------
    # edge insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Insert ``(u, v)``; return the promoted set."""
        if u == v:
            raise SelfLoopError(u)
        if self.graph.has_edge(u, v):
            raise EdgeExistsError(u, v)
        for w in (u, v):
            if not self.graph.has_vertex(w) or w not in self._core:
                self.graph.add_vertex(w)
                self._core[w] = 0
                self._levels.setdefault(0, []).append(w)
                self._positions[w] = len(self._levels[0]) - 1
        self.graph.add_edge(u, v)

        first = u if self._order_before(u, v) else v
        level = self._core[first]
        if self._deg_plus(first) <= level:
            # The order remains a valid witness: nothing changes.
            return set()

        # Forward candidate walk along O_level from `first` (the order-
        # based insight: only forward chains through the level can rise).
        members = self._levels.get(level, [])
        positions = self._positions
        ext: dict[Vertex, int] = {first: 0}
        chain: list[Vertex] = []
        start = positions[first]
        for w in members[start:]:
            # value equality, not identity: vertex labels may be any
            # hashable (and CPython only interns small ints)
            if w != first and ext.get(w, 0) <= 0:
                continue
            if self._deg_plus(w) + ext.get(w, 0) > level:
                chain.append(w)
                for x in self.graph.neighbors(w):
                    if (
                        self._core.get(x) == level
                        and positions[x] > positions[w]
                    ):
                        ext[x] = ext.get(x, 0) + 1

        # Evaluation peel over the chain (identical to the traversal
        # algorithm's final step).
        candidates = set(chain)
        self.candidates_evaluated += len(candidates)
        obs = get_collector()
        if obs is not None:
            obs.observe(names.KORDER_CHAIN_LENGTH, len(chain))
        support = {
            w: sum(
                1
                for x in self.graph.neighbors(w)
                if self._core[x] > level or x in candidates
            )
            for w in candidates
        }
        evicted: set[Vertex] = set()
        queue = deque(w for w in candidates if support[w] <= level)
        while queue:
            w = queue.popleft()
            if w in evicted:
                continue
            evicted.add(w)
            for x in self.graph.neighbors(w):
                if x in candidates and x not in evicted:
                    support[x] -= 1
                    if support[x] <= level:
                        queue.append(x)
        promoted = candidates - evicted
        if promoted:
            for w in promoted:
                self._core[w] = level + 1
            self._rebuild_levels([level, level + 1])
        else:
            # Nobody rose, but `first` now has more than `level` later
            # neighbours: the ICDE'17 algorithm repairs the order by
            # moving the visited non-candidates backwards; rebuilding the
            # level's internal order achieves the same invariant.
            self._rebuild_levels([level])
        return promoted

    # ------------------------------------------------------------------
    # edge deletion
    # ------------------------------------------------------------------
    def delete_edge(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Delete ``(u, v)``; return the demoted set."""
        if not self.graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self.graph.remove_edge(u, v)
        level = min(self._core[u], self._core[v])
        if level == 0:
            return set()
        seeds = [w for w in (u, v) if self._core[w] == level]
        found: set[Vertex] = set()
        queue = deque(seeds)
        found.update(seeds)
        while queue:
            w = queue.popleft()
            for x in self.graph.neighbors(w):
                if x not in found and self._core[x] == level:
                    found.add(x)
                    queue.append(x)
        self.candidates_evaluated += len(found)
        support = {
            w: sum(1 for x in self.graph.neighbors(w) if self._core[x] >= level)
            for w in found
        }
        demoted: set[Vertex] = set()
        queue = deque(w for w in found if support[w] < level)
        while queue:
            w = queue.popleft()
            if w in demoted:
                continue
            demoted.add(w)
            for x in self.graph.neighbors(w):
                if x in found and x not in demoted:
                    support[x] -= 1
                    if support[x] < level:
                        queue.append(x)
        if demoted:
            for w in demoted:
                self._core[w] = level - 1
            self._rebuild_levels([level - 1, level])
        # Deleting an edge never invalidates the order otherwise: later
        # degrees only shrink.
        return demoted
