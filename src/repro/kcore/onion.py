"""Onion decomposition (peeling layers inside the core decomposition).

Figure 10(b) of the paper compares the (k,p)-core decomposition against
"onion layers", the round structure of the k-core peeling: every round of
simultaneous removals during core decomposition forms one layer.  Vertices
removed in the same round share a layer number; deeper layers sit closer to
the graph's degeneracy core.

The layer assignment follows the standard algorithm: repeatedly raise the
threshold to the current minimum degree and strip, in rounds, every vertex
at or below it.  The threshold at the moment a vertex is stripped is its
core number, so this module doubles as an independent implementation of
core decomposition (the test suite cross-checks the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency

__all__ = ["OnionDecomposition", "onion_decomposition"]


@dataclass(frozen=True)
class OnionDecomposition:
    """Onion layers plus the core numbers obtained along the way."""

    layers: Mapping[Vertex, int]
    core_numbers: Mapping[Vertex, int]

    @property
    def num_layers(self) -> int:
        return max(self.layers.values(), default=0)

    def layer_of(self, v: Vertex) -> int:
        return self.layers[v]

    def vertices_in_layer(self, layer: int) -> set[Vertex]:
        return {v for v, l in self.layers.items() if l == layer}


def onion_decomposition(graph: Graph) -> OnionDecomposition:
    """Compute onion layers and core numbers for ``graph``."""
    snapshot = CompactAdjacency(graph)
    n = snapshot.num_vertices
    degree = snapshot.degrees()
    alive = [True] * n
    layer = [0] * n
    core = [0] * n
    indptr, indices = snapshot.indptr, snapshot.indices

    remaining = n
    current_layer = 0
    threshold = 0
    alive_set = set(range(n))
    while remaining > 0:
        min_degree = min(degree[v] for v in alive_set)
        threshold = max(threshold, min_degree)
        current_layer += 1
        # One round strips every vertex at or below the threshold *at the
        # start of the round*; vertices dragged down by these removals wait
        # for the next round.  That per-round structure is what yields
        # several onion layers inside each k-shell.
        batch = [v for v in alive_set if degree[v] <= threshold]
        for v in batch:
            alive[v] = False
            alive_set.discard(v)
            layer[v] = current_layer
            core[v] = threshold
            for ptr in range(indptr[v], indptr[v + 1]):
                u = indices[ptr]
                if alive[u]:
                    degree[u] -= 1
        remaining -= len(batch)

    labels = snapshot.labels
    return OnionDecomposition(
        layers={labels[v]: layer[v] for v in range(n)},
        core_numbers={labels[v]: core[v] for v in range(n)},
    )
