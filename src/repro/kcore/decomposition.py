"""Linear-time core decomposition (Batagelj–Zaversnik, reference [3]).

``kcoreDecomp`` in the paper's evaluation.  The bucket ("bin sort")
algorithm peels vertices in non-decreasing order of current degree using
O(n + m) work; the degree at removal time is the vertex's **core number**.

The hot loop runs over a :class:`~repro.graph.compact.CompactAdjacency`
snapshot (flat lists, integer ids); the public entry point accepts a
:class:`~repro.graph.adjacency.Graph` and maps results back to vertex
labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.obs import names
from repro.obs.instrumentation import get_collector

__all__ = [
    "CoreDecomposition",
    "core_decomposition",
    "core_numbers_compact",
    "degeneracy",
    "degeneracy_ordering",
]


def core_numbers_compact(snapshot: CompactAdjacency) -> tuple[list[int], list[int]]:
    """Core numbers and peel order for a compact snapshot.

    Returns ``(core, order)`` where ``core[i]`` is the core number of
    internal vertex ``i`` and ``order`` lists internal ids in the order the
    bucket algorithm peels them (a degeneracy ordering).
    """
    n = snapshot.num_vertices
    if n == 0:
        return [], []
    degrees = snapshot.degrees()
    max_deg = max(degrees)

    # Counting sort of vertices by degree.
    bin_start = [0] * (max_deg + 2)
    for d in degrees:
        bin_start[d + 1] += 1
    for d in range(1, max_deg + 2):
        bin_start[d] += bin_start[d - 1]
    vert = [0] * n
    pos = [0] * n
    cursor = bin_start[: max_deg + 1].copy()
    for v in range(n):
        d = degrees[v]
        pos[v] = cursor[d]
        vert[pos[v]] = v
        cursor[d] += 1

    # Peel in degree order; `core` doubles as the current-degree array.
    core = degrees
    indptr, indices = snapshot.indptr, snapshot.indices
    for i in range(n):
        v = vert[i]
        cv = core[v]
        for ptr in range(indptr[v], indptr[v + 1]):
            u = indices[ptr]
            cu = core[u]
            if cu > cv:
                # Swap u to the front of its bucket, then shrink the bucket.
                pu = pos[u]
                pw = bin_start[cu]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bin_start[cu] += 1
                core[u] = cu - 1
    obs = get_collector()
    if obs is not None:
        # `core` started as the degree array and lost one per bucket
        # demotion, so the move count is derived after the loop: the
        # O(n + m) peel runs identically with collection on or off.
        total_degree = indptr[n]
        obs.inc(names.KCORE_DECOMP_CALLS)
        obs.add(names.KCORE_DECOMP_EDGE_SCANS, total_degree)
        obs.add(names.KCORE_DECOMP_BUCKET_MOVES, total_degree - sum(core))
    return core, vert


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a full core decomposition of one graph.

    Attributes
    ----------
    core_numbers:
        ``cn(v, G)`` for every vertex.
    peel_order:
        Vertices in removal order — a degeneracy ordering of ``G``.
    degeneracy:
        ``d(G) = max{k : C_k(G) != ∅}`` (0 for the empty graph).
    """

    core_numbers: Mapping[Vertex, int]
    peel_order: Sequence[Vertex]
    degeneracy: int = field(init=False)

    def __post_init__(self) -> None:
        max_core = max(self.core_numbers.values(), default=0)
        object.__setattr__(self, "degeneracy", max_core)

    def core_number(self, v: Vertex) -> int:
        """``cn(v, G)``; raises ``KeyError`` for unknown vertices."""
        return self.core_numbers[v]

    def k_core_vertices(self, k: int) -> set[Vertex]:
        """Vertex set of the k-core, ``{v : cn(v) >= k}``."""
        return {v for v, c in self.core_numbers.items() if c >= k}

    def core_size_profile(self) -> list[int]:
        """``profile[k]`` = |V(C_k(G))| for k in ``0..degeneracy``."""
        counts = [0] * (self.degeneracy + 1)
        for c in self.core_numbers.values():
            counts[c] += 1
        # Suffix-sum: the k-core contains every vertex with cn >= k.
        for k in range(self.degeneracy - 1, -1, -1):
            counts[k] += counts[k + 1]
        return counts


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Full core decomposition of ``graph`` (``kcoreDecomp``)."""
    snapshot = CompactAdjacency(graph)
    core, order = core_numbers_compact(snapshot)
    labels = snapshot.labels
    return CoreDecomposition(
        core_numbers={labels[i]: core[i] for i in range(len(labels))},
        peel_order=[labels[i] for i in order],
    )


def degeneracy(graph: Graph) -> int:
    """``d(G)``: the largest ``k`` with a non-empty k-core."""
    return core_decomposition(graph).degeneracy


def degeneracy_ordering(graph: Graph) -> list[Vertex]:
    """A degeneracy (smallest-degree-last) ordering of the vertices."""
    return list(core_decomposition(graph).peel_order)
