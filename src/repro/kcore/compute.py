"""Direct k-core computation (``kCoreComp`` in the paper's Fig. 11/12).

Computes the k-core of a graph for one given ``k`` by queue-based peeling:
repeatedly delete any vertex whose current degree is below ``k``.  This is
the baseline whose running time the paper compares against ``kpCoreComp``;
both are implemented over the same compact snapshot so the Fig. 11
comparison measures the algorithms, not the data structures.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.obs import names
from repro.obs.instrumentation import get_collector

__all__ = ["k_core_vertices_compact", "k_core_vertices", "k_core"]


def _check_k(k: int) -> None:
    if k < 0:
        raise ParameterError(f"degree threshold k must be >= 0, got {k}")


def k_core_vertices_compact(
    snapshot: CompactAdjacency, k: int, thresholds: Sequence[int] | None = None
) -> list[int]:
    """Internal ids of the vertices surviving threshold peeling.

    With ``thresholds=None`` every vertex gets threshold ``k`` (plain
    k-core).  A per-vertex ``thresholds`` array generalizes the peel to the
    combined thresholds of Algorithm 1; :func:`repro.core.kpcore.kp_core`
    reuses this loop so the two computations share one code path, as the
    paper's complexity discussion assumes.
    """
    _check_k(k)
    n = snapshot.num_vertices
    degree = snapshot.degrees()
    if thresholds is None:
        need = [k] * n
    else:
        if len(thresholds) != n:
            raise ParameterError(
                f"thresholds length {len(thresholds)} != vertex count {n}"
            )
        need = list(thresholds)

    alive = [True] * n
    queue = deque(v for v in range(n) if degree[v] < need[v])
    initial_violators = len(queue)
    for v in queue:
        alive[v] = False
    indptr, indices = snapshot.indptr, snapshot.indices
    while queue:
        v = queue.popleft()
        for ptr in range(indptr[v], indptr[v + 1]):
            u = indices[ptr]
            if alive[u]:
                degree[u] -= 1
                if degree[u] < need[u]:
                    alive[u] = False
                    queue.append(u)
    survivors = [v for v in range(n) if alive[v]]
    obs = get_collector()
    if obs is not None:
        # Operation counts are *derived* rather than accumulated: every
        # peeled vertex entered the queue exactly once and had its full
        # adjacency slice scanned, so the loop itself stays untouched and
        # disabled collection costs only the cached check above.
        obs.inc(names.KCORE_PEEL_CALLS)
        obs.add(names.KCORE_PEEL_PEELED, n - len(survivors))
        obs.add(names.KCORE_PEEL_SURVIVORS, len(survivors))
        obs.add(names.KCORE_PEEL_INITIAL_VIOLATORS, initial_violators)
        obs.add(
            names.KCORE_PEEL_EDGE_SCANS,
            sum(
                indptr[v + 1] - indptr[v] for v in range(n) if not alive[v]
            ),
        )
    return survivors


def k_core_vertices(graph: Graph, k: int) -> set[Vertex]:
    """Vertex set of ``C_k(G)`` (possibly empty)."""
    snapshot = CompactAdjacency(graph)
    survivors = k_core_vertices_compact(snapshot, k)
    return {snapshot.labels[v] for v in survivors}


def k_core(graph: Graph, k: int) -> Graph:
    """The k-core of ``graph`` as an induced subgraph."""
    return graph.induced_subgraph(k_core_vertices(graph, k))
