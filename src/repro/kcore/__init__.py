"""k-core substrate: computation, decomposition, onion layers, maintenance.

Everything in this package concerns the classical k-core model on which the
(k,p)-core is built:

* :func:`~repro.kcore.compute.k_core` — ``kCoreComp`` peeling for one ``k``,
* :func:`~repro.kcore.decomposition.core_decomposition` — ``kcoreDecomp``,
  the O(m) bucket algorithm of Batagelj–Zaversnik,
* :func:`~repro.kcore.onion.onion_decomposition` — onion layers
  (Fig. 10(b) comparison),
* :class:`~repro.kcore.maintenance.CoreMaintainer` — traversal/subcore
  incremental core-number maintenance used by the KP-Index update
  algorithms.
"""

from repro.kcore.compute import k_core, k_core_vertices, k_core_vertices_compact
from repro.kcore.decomposition import (
    CoreDecomposition,
    core_decomposition,
    core_numbers_compact,
    degeneracy,
    degeneracy_ordering,
)
from repro.kcore.maintenance import CoreMaintainer
from repro.kcore.order_maintenance import OrderBasedCoreMaintainer, is_valid_k_order
from repro.kcore.onion import OnionDecomposition, onion_decomposition

__all__ = [
    "k_core",
    "k_core_vertices",
    "k_core_vertices_compact",
    "CoreDecomposition",
    "core_decomposition",
    "core_numbers_compact",
    "degeneracy",
    "degeneracy_ordering",
    "CoreMaintainer",
    "OrderBasedCoreMaintainer",
    "is_valid_k_order",
    "OnionDecomposition",
    "onion_decomposition",
]
