"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing genuine programming errors (``TypeError`` and friends pass
through untouched).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "EdgeExistsError",
    "SelfLoopError",
    "ParameterError",
    "EdgeListParseError",
    "VertexLabelError",
    "DatasetError",
    "IndexStateError",
    "IndexPersistenceError",
    "ContractViolationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors involving graph structure."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation is not present in the graph."""

    def __init__(self, vertex: object):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:
        return f"vertex {self.vertex!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object):
        super().__init__((u, v))
        self.edge = (u, v)

    def __str__(self) -> str:
        u, v = self.edge
        return f"edge ({u!r}, {v!r}) is not in the graph"


class EdgeExistsError(GraphError, ValueError):
    """An edge insertion targeted an edge that is already present."""

    def __init__(self, u: object, v: object):
        super().__init__((u, v))
        self.edge = (u, v)

    def __str__(self) -> str:
        u, v = self.edge
        return f"edge ({u!r}, {v!r}) is already in the graph"


class SelfLoopError(GraphError, ValueError):
    """A self loop was supplied where only simple edges are allowed."""

    def __init__(self, vertex: object):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:
        return f"self loop on vertex {self.vertex!r} is not allowed in a simple graph"


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented domain."""


class EdgeListParseError(ReproError, ValueError):
    """An edge-list file or stream could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        super().__init__(message)
        self.line_number = line_number

    def __str__(self) -> str:
        base = super().__str__()
        if self.line_number is None:
            return base
        return f"line {self.line_number}: {base}"


class VertexLabelError(EdgeListParseError):
    """A vertex token did not parse under the requested label type.

    Distinguished from other parse failures so callers that *probe* a
    label convention (integer labels first, strings as fallback) can
    retry on exactly this condition without masking structural errors.
    """


class DatasetError(ReproError):
    """A synthetic dataset could not be produced as specified."""


class IndexStateError(ReproError, RuntimeError):
    """A KP-Index operation was attempted from an invalid state."""


class IndexPersistenceError(ReproError):
    """A persisted index artifact could not be read back.

    Covers every load-path failure mode — unparseable JSON, truncated
    files, checksum mismatches, foreign/unknown formats, corrupt journal
    records — so callers (the CLI in particular) can report corrupt
    on-disk state as a library error instead of leaking the underlying
    ``json``/``KeyError``/``TypeError`` traceback.
    """

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message)
        self.path = path

    def __str__(self) -> str:
        base = super().__str__()
        if self.path is None:
            return base
        return f"{self.path}: {base}"


class ContractViolationError(ReproError, AssertionError):
    """A runtime invariant contract (``REPRO_VERIFY=1``) was violated.

    Raised by :mod:`repro.devtools.contracts` when an algorithm's output
    fails its machine-checked postcondition; always indicates a library
    bug (or deliberately corrupted state in tests), never user error.
    """

