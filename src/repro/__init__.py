"""repro — a faithful Python implementation of the (k,p)-core paper.

Reproduction of C. Zhang et al., *Exploring Finer Granularity within the
Cores: Efficient (k,p)-Core Computation*, ICDE 2020.

Quick start
-----------
>>> from repro import Graph, kp_core_vertices, KPIndex
>>> g = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
>>> sorted(kp_core_vertices(g, k=2, p=0.5))
[0, 1, 2]
>>> index = KPIndex.build(g)
>>> sorted(index.query(k=2, p=0.5))
[0, 1, 2]

Packages
--------
``repro.graph``     graph substrate (structures, I/O, metrics, generators)
``repro.kcore``     classical k-core machinery
``repro.core``      the paper's (k,p)-core algorithms and KP-Index
``repro.datasets``  synthetic stand-ins for the paper's 8 datasets
``repro.analysis``  effectiveness analyses (Figs. 6-10)
``repro.bench``     shared benchmark harness
"""

from repro.errors import (
    DatasetError,
    EdgeExistsError,
    EdgeListParseError,
    EdgeNotFoundError,
    GraphError,
    IndexStateError,
    ParameterError,
    ReproError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph import Graph, read_edge_list, write_edge_list
from repro.kcore import (
    CoreMaintainer,
    core_decomposition,
    degeneracy,
    k_core,
    k_core_vertices,
    onion_decomposition,
)
from repro.core import (
    KPIndex,
    KPIndexMaintainer,
    MaintenanceMode,
    build_index,
    kp_core,
    kp_core_decomposition,
    kp_core_vertices,
    p_numbers_fixed_k,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "read_edge_list",
    "write_edge_list",
    # k-core substrate
    "k_core",
    "k_core_vertices",
    "core_decomposition",
    "degeneracy",
    "onion_decomposition",
    "CoreMaintainer",
    # (k,p)-core
    "kp_core",
    "kp_core_vertices",
    "kp_core_decomposition",
    "p_numbers_fixed_k",
    "KPIndex",
    "build_index",
    "KPIndexMaintainer",
    "MaintenanceMode",
    # errors
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "EdgeExistsError",
    "SelfLoopError",
    "ParameterError",
    "EdgeListParseError",
    "DatasetError",
    "IndexStateError",
]
