"""Command-line interface: ``python -m repro <command> ...``.

Glue for using the library without writing Python:

* ``stats FILE``            — Table II-style statistics of an edge list,
* ``kpcore FILE -k K -p P`` — the (k,p)-core's vertices (Algorithm 1),
* ``decompose FILE -k K``   — p-numbers for a fixed k (Algorithm 2),
* ``index build FILE -o I`` — build and save a KP-Index as JSON,
* ``index query I -k K -p P`` — answer a query from a saved index,
* ``index update DIR --stream F`` — maintain a durable index under an
  edge-update stream (write-ahead journal + periodic checkpoints),
* ``index recover DIR``         — recover a durable index after a crash
  and absorb the journal tail into a fresh checkpoint,
* ``index serve-bench DIR --workload SPEC --threads N --seed S`` — run a
  seeded query/update workload against the concurrent ``KPCoreServer``
  and report throughput, latency percentiles, and cache counters,
* ``dataset NAME [-o F]``   — materialize a synthetic stand-in,
* ``report EXPERIMENT``     — print one table/figure reproduction
  (``table2``, ``fig6`` … ``fig16``, ``ablation``),
* ``profile CMD ...``       — run any other command with metrics
  collection on and print the obs report afterwards,
* ``lint [PATH ...]``       — run the repo's KP lint rules (KP001-KP007
  per file, plus the KP008-KP012 whole-program analysis with
  ``--analysis``; ``--format text|json|sarif``),
* ``selfcheck [FILE]``      — run every runtime invariant contract.

All commands print to stdout; file arguments are SNAP-style edge lists,
or ``builtin:NAME`` to use a synthetic stand-in dataset in place.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError, VertexLabelError
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.metrics import summarize
from repro.core.decomposition import p_numbers_fixed_k
from repro.core.peel_engines import DEFAULT_ENGINE, available_engines
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices
from repro.kcore.decomposition import core_decomposition

__all__ = ["main", "build_parser"]


def _read_graph(path: str):
    # ``builtin:NAME`` loads a synthetic stand-in dataset, so commands
    # (and CI) can run without shipping edge-list files around.
    if path.startswith("builtin:"):
        from repro.datasets import load

        return load(path[len("builtin:"):])
    # SNAP files are usually integer-labelled; fall back to string labels
    # only when that assumption is what failed.  Every other parse error
    # (malformed lines, self loops, ...) propagates — retrying with string
    # labels would just mask it.
    try:
        return read_edge_list(path, int_vertices=True)
    except VertexLabelError:
        return read_edge_list(path, int_vertices=False)


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _read_graph(args.file)
    s = summarize(graph)
    d = core_decomposition(graph).degeneracy
    print(f"vertices      {s.num_vertices}")
    print(f"edges         {s.num_edges}")
    print(f"avg degree    {s.average_degree:.2f}")
    print(f"max degree    {s.max_degree}")
    print(f"degeneracy    {d}")
    return 0


def _cmd_kpcore(args: argparse.Namespace) -> int:
    graph = _read_graph(args.file)
    members = kp_core_vertices(graph, args.k, args.p)
    print(f"# ({args.k},{args.p})-core: {len(members)} vertices")
    for v in sorted(members, key=repr):
        print(v)
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    if args.k is not None and args.workers != 1:
        print("error: --workers applies to the full decomposition; "
              "it cannot be combined with -k", file=sys.stderr)
        return 2
    graph = _read_graph(args.file)
    if args.k is not None:
        pn = p_numbers_fixed_k(graph, args.k, engine=args.engine)
        print(f"# p-numbers for k={args.k}: {len(pn)} vertices in the k-core")
        for v, value in sorted(pn.items(), key=lambda item: (item[1], repr(item[0]))):
            print(f"{v}\t{value:.6f}")
        return 0
    from repro.core.decomposition import kp_core_decomposition

    decomposition = kp_core_decomposition(
        graph, engine=args.engine, workers=args.workers
    )
    print(f"# decomposition: degeneracy={decomposition.degeneracy}, "
          f"engine={args.engine}, workers={args.workers}")
    for k in range(1, decomposition.degeneracy + 1):
        fixed = decomposition.arrays[k]
        p_max = max(fixed.p_numbers, default=0.0)
        print(f"k={k}\t|V_k|={len(fixed)}\tp_max={p_max:.6f}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.graph.fingerprint import graph_fingerprint

    graph = _read_graph(args.file)
    index = KPIndex.build(graph)
    index.validate()
    index.save(args.output, fingerprint=graph_fingerprint(graph))
    stats = index.space_stats()
    print(f"wrote {args.output}: d={index.degeneracy}, "
          f"{stats.vertex_entries} vertex entries (2m={stats.two_m})")
    return 0


def _cmd_index_query(args: argparse.Namespace) -> int:
    index = KPIndex.load(args.index)
    answer = index.query(args.k, args.p)
    print(f"# ({args.k},{args.p})-core: {len(answer)} vertices")
    for v in answer:
        print(v)
    return 0


def _read_update_stream(path: str, extra_tokens: str):
    # Probe the label convention the same way _read_graph does: integers
    # first, strings only when exactly that assumption failed.
    from repro.service import read_update_stream

    try:
        return read_update_stream(
            path, int_vertices=True, extra_tokens=extra_tokens
        )
    except VertexLabelError:
        return read_update_stream(
            path, int_vertices=False, extra_tokens=extra_tokens
        )


def _print_durable_summary(durable) -> None:
    index = durable.index
    stats = index.space_stats()
    print(f"index: d={index.degeneracy}, {stats.vertex_entries} vertex "
          f"entries, n={durable.graph.num_vertices} m={durable.graph.num_edges}")


def _cmd_index_update(args: argparse.Namespace) -> int:
    from repro.service import DurableMaintainer

    extra = "ignore" if args.ignore_extra_tokens else "error"
    updates = _read_update_stream(args.stream, extra)
    with DurableMaintainer(
        args.dir,
        checkpoint_every=args.checkpoint_every,
        on_error=args.on_error,
    ) as durable:
        if durable.recovery is not None and durable.recovery.replayed:
            print(f"recovered: replayed {durable.recovery.replayed} "
                  f"journal records "
                  f"(checkpoint seq {durable.recovery.checkpoint_seq})")
        report = durable.apply(updates)
        durable.checkpoint()
        print(f"applied {report.applied} updates, skipped {report.skipped}, "
              f"wrote {report.checkpoints + 1} checkpoints")
        _print_durable_summary(durable)
    return 0


def _cmd_index_recover(args: argparse.Namespace) -> int:
    from repro.service import DurableMaintainer

    with DurableMaintainer(args.dir, must_exist=True) as durable:
        recovery = durable.recovery
        assert recovery is not None  # must_exist guarantees prior state
        durable.checkpoint()
        print(f"recovered from checkpoint seq {recovery.checkpoint_seq}: "
              f"replayed {recovery.replayed} journal records "
              f"({recovery.skipped} skipped), journal tail absorbed")
        _print_durable_summary(durable)
    return 0


def _cmd_index_serve_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench.serving import run_differential_probes, run_serve_bench
    from repro.service.workload import WorkloadSpec

    spec = WorkloadSpec.parse(args.workload)
    if args.batch_size:
        spec = dataclasses.replace(spec, batch=args.batch_size)
    result = run_serve_bench(
        args.dir,
        spec=spec,
        seed=args.seed,
        threads=args.threads,
        cache=not args.no_cache,
        cache_size=args.cache_size,
        min_answer_size=args.min_answer_size,
    )
    latency = result["latency_ms"]
    cache_stats = result["cache_stats"]
    print(f"workload: {result['spec']} (seed {result['seed']})")
    print(f"threads {result['threads']}  batch {result['batch']}  cache "
          f"{'on' if result['cache'] else 'off'}  "
          f"queries {result['queries']}  updates {result['updates']}")
    print(f"elapsed {result['elapsed_s']}s  throughput "
          f"{result['query_qps']} q/s (query wall)  "
          f"{result['ops_per_s']} ops/s (total)")
    print(f"latency ms  p50={latency['p50']}  p95={latency['p95']}  "
          f"p99={latency['p99']}  max={latency['max']}")
    print(f"cache  hits={cache_stats['hits']}  misses={cache_stats['misses']}  "
          f"invalidations={cache_stats['invalidations']}  "
          f"evictions={cache_stats['evictions']}  "
          f"admission_rejects={cache_stats['admission_rejects']}  "
          f"hit_rate={cache_stats['hit_rate']}")
    if args.probe_every:
        probe = run_differential_probes(
            spec=spec,
            seed=args.seed,
            cache=not args.no_cache,
            cache_size=args.cache_size,
            min_answer_size=args.min_answer_size,
            probe_every=args.probe_every,
        )
        result["probes"] = probe["probes"]
        result["stale_serves"] = probe["stale_serves"]
        print(f"probes {probe['probes']}  stale_serves "
              f"{probe['stale_serves']} (vs naive fixpoint)")
    if args.json:
        import json as json_module

        from repro.bench.provenance import run_provenance

        result["provenance"] = run_provenance()
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(result, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets import load, spec

    graph = load(args.name)
    meta = spec(args.name)
    if args.output:
        write_edge_list(
            graph,
            args.output,
            header=[
                f"synthetic stand-in for {meta.name} ({meta.character})",
                f"paper original: n={meta.paper_vertices} m={meta.paper_edges}",
            ],
        )
        print(f"wrote {args.output}: n={graph.num_vertices} m={graph.num_edges}")
    else:
        s = summarize(graph)
        print(f"{meta.name}: n={s.num_vertices} m={s.num_edges} "
              f"davg={s.average_degree:.2f} dmax={s.max_degree}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Instrumentation, render_report, set_collector

    rest = list(args.argv)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("error: profile needs a command to run, e.g. "
              "`repro profile kpcore builtin:facebook -k 4 -p 0.5`",
              file=sys.stderr)
        return 2
    if rest[0] == "profile":
        print("error: profile cannot wrap itself", file=sys.stderr)
        return 2
    collector = Instrumentation()
    previous = set_collector(collector)
    try:
        status = main(rest)
    finally:
        set_collector(previous)
    snapshot = collector.snapshot()
    print(render_report(snapshot, title=f"profile: {' '.join(rest)}"))
    if args.json:
        snapshot.save(args.json)
        print(f"wrote metrics snapshot to {args.json}")
    return status


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.bench.reporting import print_table
    from repro.obs import names as metric_names
    from repro.obs.trace import Tracer, set_tracer
    from repro.obs.trace_export import (
        attribution_rows,
        chrome_payload,
        slowest_rows,
        validate_chrome_trace,
        write_jsonl,
    )

    rest = list(args.argv)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("error: trace needs a command to run, e.g. "
              "`repro trace index serve-bench /tmp/state --threads 2`",
              file=sys.stderr)
        return 2
    if rest[0] == "trace":
        print("error: trace cannot wrap itself", file=sys.stderr)
        return 2
    tracer = Tracer(buffer_size=args.buffer)
    previous = set_tracer(tracer)
    try:
        with tracer.span(metric_names.TRACE_COMMAND, command=" ".join(rest)):
            status = main(rest)
    finally:
        set_tracer(previous)
    events = tracer.events()
    headers, rows = attribution_rows(events)
    print_table(headers, rows, title=f"trace attribution: {' '.join(rest)}")
    headers, rows = slowest_rows(events, args.top)
    print_table(headers, rows, title=f"top {args.top} slowest spans")
    if tracer.dropped:
        print(f"note: ring buffer dropped {tracer.dropped} of "
              f"{tracer.recorded} events (raise --buffer)")
    payload = chrome_payload(events)
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"error: invalid trace export: {problem}", file=sys.stderr)
        return 1
    with open(args.json, "w", encoding="utf-8") as handle:
        json_module.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {len(events)} events to {args.json} "
          "(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(args.jsonl, events)
        print(f"wrote raw events to {args.jsonl}")
    return status


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.bench.diffing import diff_files, render_diff

    diff = diff_files(args.old, args.new, tolerance=args.tolerance)
    print(render_diff(diff))
    return 1 if diff.regressed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import explain, run

    if args.explain:
        explain()
        return 0
    return run(
        args.paths or ["."],
        analysis=args.analysis,
        fmt=args.format,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
    )


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.devtools.selfcheck import run

    return run(args.file)


_REPORTS = {
    "table2": "table2_rows",
    "fig6": "fig6_rows",
    "fig7": "fig7_rows",
    "fig8": "fig8_rows",
    "fig11": "fig11_rows",
    "fig12": "fig12_rows",
    "fig13": "fig13_rows",
    "fig14": "fig14_rows",
    "fig15": "fig15_rows",
    "fig16": "fig16_rows",
    "ablation": "ablation_rows",
}


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench import experiments
    from repro.bench.reporting import print_table

    name = args.experiment
    if name == "fig9":
        for label, report in experiments.fig9_reports():
            print(f"=== {label} ===")
            print(report.summary())
        return 0
    if name == "fig10":
        for series_name, points in experiments.fig10_series().items():
            print_table(
                ("x", "avg", "count"),
                [(round(p.x, 3), round(p.average, 1), p.count) for p in points],
                title=f"Fig. 10 series: {series_name}",
            )
        return 0
    rows_fn = getattr(experiments, _REPORTS[name])
    headers, rows = rows_fn()
    print_table(headers, rows, title=f"Reproduction: {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(k,p)-core computation, indexing, and maintenance "
        "(ICDE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="edge-list statistics")
    p_stats.add_argument("file")
    p_stats.set_defaults(func=_cmd_stats)

    p_core = sub.add_parser("kpcore", help="compute one (k,p)-core")
    p_core.add_argument("file")
    p_core.add_argument("-k", type=int, required=True)
    p_core.add_argument("-p", type=float, required=True)
    p_core.set_defaults(func=_cmd_kpcore)

    p_dec = sub.add_parser(
        "decompose",
        help="p-numbers for a fixed k, or the full decomposition",
        description="With -k, print the p-number of every k-core vertex. "
        "Without -k, run the full Algorithm 2 decomposition (optionally "
        "over a process pool) and print a per-k summary.",
    )
    p_dec.add_argument("file")
    p_dec.add_argument(
        "-k", type=int, default=None,
        help="fixed degree threshold (omit for the full decomposition)",
    )
    p_dec.add_argument(
        "--engine", choices=available_engines(), default=DEFAULT_ENGINE,
        help="peeling backend (default: %(default)s)",
    )
    p_dec.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the full decomposition (default: 1)",
    )
    p_dec.set_defaults(func=_cmd_decompose)

    p_index = sub.add_parser("index", help="KP-Index operations")
    index_sub = p_index.add_subparsers(dest="index_command", required=True)
    p_build = index_sub.add_parser("build", help="build and save an index")
    p_build.add_argument("file")
    p_build.add_argument("-o", "--output", required=True)
    p_build.set_defaults(func=_cmd_index_build)
    p_query = index_sub.add_parser("query", help="query a saved index")
    p_query.add_argument("index")
    p_query.add_argument("-k", type=int, required=True)
    p_query.add_argument("-p", type=float, required=True)
    p_query.set_defaults(func=_cmd_index_query)
    p_update = index_sub.add_parser(
        "update",
        help="apply an edge-update stream to a durable index directory",
        description="Maintains a crash-safe KP-Index in DIR: every update "
        "is write-ahead journaled, and a checkpoint (graph + fingerprinted "
        "index snapshot) is written every N applied updates and at the "
        "end. A fresh DIR starts from the empty graph. Stream lines are "
        "'+ u v' (insert), '- u v' (delete), or bare 'u v' (insert).",
    )
    p_update.add_argument("dir")
    p_update.add_argument(
        "--stream", required=True, metavar="FILE",
        help="edge-update stream file",
    )
    p_update.add_argument(
        "--checkpoint-every", type=int, default=100, metavar="N",
        help="checkpoint after every N applied updates (default: %(default)s)",
    )
    p_update.add_argument(
        "--on-error", choices=["fail", "skip"], default="fail",
        help="what to do when an update cannot apply (default: %(default)s)",
    )
    p_update.add_argument(
        "--ignore-extra-tokens", action="store_true",
        help="drop trailing columns (timestamps/weights) on stream lines",
    )
    p_update.set_defaults(func=_cmd_index_update)
    p_recover = index_sub.add_parser(
        "recover",
        help="recover a durable index directory after a crash",
        description="Loads the last good checkpoint, replays the journal "
        "tail, and writes a fresh checkpoint absorbing it.",
    )
    p_recover.add_argument("dir")
    p_recover.set_defaults(func=_cmd_index_recover)
    p_serve = index_sub.add_parser(
        "serve-bench",
        help="benchmark the concurrent query server on a seeded workload",
        description="Generates a deterministic query/insert/delete "
        "workload (repro.service.workload), serves the queries from N "
        "reader threads through the KPCoreServer result cache while the "
        "update stream applies under the write lock, and reports "
        "throughput, latency percentiles, and cache counters. With "
        "--probe-every, additionally replays the workload sequentially "
        "and audits every Nth answer against the naive fixpoint "
        "(stale-serve detection).",
    )
    p_serve.add_argument("dir")
    p_serve.add_argument(
        "--workload", default="", metavar="SPEC",
        help="workload spec, e.g. 'ops=400,query=8,insert=1,delete=1,"
        "vertices=60,kmax=6' (empty = defaults)",
    )
    p_serve.add_argument(
        "--threads", type=int, default=2, metavar="N",
        help="reader threads (default: %(default)s)",
    )
    p_serve.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="workload seed (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="serve every query straight from Algorithm 3",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="result cache capacity (default: %(default)s)",
    )
    p_serve.add_argument(
        "--min-answer-size", type=int, default=0, metavar="N",
        help="cache admission threshold: answers smaller than N vertices "
        "are served but never cached (default: %(default)s)",
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=0, metavar="B",
        help="apply updates through apply_batch in coalesced groups of B "
        "(one re-peel per affected array per group); overrides the "
        "workload spec's batch key (0 = use the spec's value)",
    )
    p_serve.add_argument(
        "--probe-every", type=int, default=0, metavar="N",
        help="also audit every Nth query against the naive fixpoint "
        "(0 = skip the audit phase)",
    )
    p_serve.add_argument(
        "--json", metavar="FILE",
        help="also write the result record as JSON",
    )
    p_serve.set_defaults(func=_cmd_index_serve_bench)

    p_data = sub.add_parser("dataset", help="materialize a synthetic dataset")
    p_data.add_argument("name")
    p_data.add_argument("-o", "--output")
    p_data.set_defaults(func=_cmd_dataset)

    p_report = sub.add_parser("report", help="print one experiment's rows")
    p_report.add_argument(
        "experiment", choices=sorted(_REPORTS) + ["fig9", "fig10"]
    )
    p_report.set_defaults(func=_cmd_report)

    p_profile = sub.add_parser(
        "profile",
        help="run another repro command with metrics collection on",
        description="Runs the wrapped command with an obs collector "
        "installed (as if REPRO_OBS=1) and prints the metrics report "
        "after it finishes.",
    )
    p_profile.add_argument(
        "--json", metavar="FILE",
        help="also write the metrics snapshot as JSON",
    )
    p_profile.add_argument(
        "argv", nargs=argparse.REMAINDER, metavar="CMD",
        help="the repro command to profile, e.g. "
        "`kpcore builtin:facebook -k 4 -p 0.5`",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_trace = sub.add_parser(
        "trace",
        help="run another repro command with per-request tracing on",
        description="Runs the wrapped command with a tracer installed "
        "(as if REPRO_TRACE=1), prints the latency attribution and "
        "slowest-span tables, and writes a Chrome trace-event file "
        "loadable in chrome://tracing or Perfetto.",
    )
    p_trace.add_argument(
        "--json", metavar="FILE", default="trace.json",
        help="Chrome trace-event output file (default: %(default)s)",
    )
    p_trace.add_argument(
        "--jsonl", metavar="FILE",
        help="also write the raw events as JSON lines",
    )
    p_trace.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="slowest spans to list (default: %(default)s)",
    )
    p_trace.add_argument(
        "--buffer", type=int, default=None, metavar="N",
        help="ring-buffer capacity in events "
        "(default: REPRO_TRACE_BUFFER or 65536)",
    )
    p_trace.add_argument(
        "argv", nargs=argparse.REMAINDER, metavar="CMD",
        help="the repro command to trace, e.g. "
        "`index serve-bench /tmp/state --threads 2`",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="benchmark-file utilities (regression diffing)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bdiff = bench_sub.add_parser(
        "diff",
        help="regression-diff two bench JSON files",
        description="Matches entries of OLD and NEW on their identity "
        "keys (dataset/engine/workers/spec/seed/threads/cache), compares "
        "every directional metric, and exits nonzero when any metric "
        "regressed beyond the tolerance or an entry disappeared.",
    )
    p_bdiff.add_argument("old", help="baseline bench JSON (e.g. BENCH_serve.json)")
    p_bdiff.add_argument("new", help="fresh bench JSON to compare against it")
    p_bdiff.add_argument(
        "--tolerance", type=float, default=0.25, metavar="R",
        help="relative change treated as noise (default: %(default)s)",
    )
    p_bdiff.set_defaults(func=_cmd_bench_diff)

    p_lint = sub.add_parser(
        "lint", help="run the repo-specific AST lint rules (KP001-KP012)"
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories (default: current directory)",
    )
    p_lint.add_argument(
        "--explain", action="store_true",
        help="list the rule codes and exit",
    )
    p_lint.add_argument(
        "--analysis", action="store_true",
        help="also run the whole-program concurrency/durability rules "
        "(KP008-KP012: call graph + effect + lock-context analysis)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to keep (e.g. KP008,KP012)",
    )
    p_lint.add_argument(
        "--ignore", metavar="CODES", default=None,
        help="comma-separated rule codes to drop",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_check = sub.add_parser(
        "selfcheck", help="run the runtime invariant contracts on a graph"
    )
    p_check.add_argument(
        "file", nargs="?", default=None,
        help="SNAP edge list (default: a small builtin synthetic graph)",
    )
    p_check.set_defaults(func=_cmd_selfcheck)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        # OSError covers FileNotFoundError plus the rest of the I/O
        # failure family (PermissionError, IsADirectoryError, ...): all
        # are user-addressable conditions, not library bugs, so they get
        # an `error:` line and exit status 1 instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
