"""Plain-text tables for the benchmark harness.

Every figure/table reproduction prints its rows through these helpers so
the outputs share one look and are easy to diff across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # avoid a module-level cycle: timing imports obs, obs
    from repro.bench.timing import Timing  # reports through these tables

__all__ = [
    "format_table",
    "print_table",
    "format_seconds",
    "format_ms",
    "format_timing",
    "banner",
]


def format_seconds(seconds: float) -> str:
    """Human scale for wall times spanning micro-seconds to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_ms(milliseconds: float) -> str:
    """Millisecond rendering used by latency and diff tables."""
    return f"{milliseconds:.3f}ms"


def format_timing(timing: "Timing") -> str:
    """One-line summary of a :class:`~repro.bench.timing.Timing`.

    Single runs print just the time; repeated runs print best and median
    with the repeat count, so tables stay honest about what was measured.
    """
    best = format_seconds(timing.seconds)
    if timing.repeats <= 1:
        return best
    return (
        f"{best} (median {format_seconds(timing.median_seconds)}, "
        f"n={timing.repeats})"
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width table."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> None:
    """Print a table, optionally under a banner title."""
    if title:
        print(banner(title))
    print(format_table(headers, rows))


def banner(title: str) -> str:
    """A separator line announcing one experiment's output."""
    return f"\n=== {title} ==="
