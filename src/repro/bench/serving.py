"""Serving benchmark drivers: threaded throughput and differential soak.

Two entry points, shared by ``python -m repro index serve-bench`` and the
``benchmarks/bench_serve.py`` recorder:

* :func:`run_serve_bench` — the throughput/latency phase, in two parts.
  **Mixed phase:** a seeded workload (:mod:`repro.service.workload`) is
  split into its query and update streams; ``threads`` reader threads
  hammer the queries through
  :meth:`~repro.service.server.KPCoreServer.query_many` while the main
  thread applies the update stream in journaled batches.  This produces
  ``ops_per_s`` (queries + updates over elapsed — end-to-end, writer
  cost included) and the latency percentiles (lock waits included).
  **Steady phase:** once the update stream has drained, the same query
  stream is replayed without a writer; queries over the summed
  per-thread steady wall is ``query_qps`` — the cache-sensitive number.
  In the mixed phase, readers spend most of their wall blocked on the
  writer's exclusive lock (maintenance holds are milliseconds, queries
  are microseconds), so a single ``qps`` measured there says nothing
  about query service cost; the steady pass is what the cache can move,
  and the cache only gets there by surviving the mixed phase's version
  churn.
* :func:`run_differential_probes` — the correctness phase.  The same
  workload is replayed single-threaded against a throwaway server while
  a mirror :class:`~repro.graph.adjacency.Graph` tracks the updates;
  every ``probe_every``-th query is checked (as a set) against
  :func:`~repro.core.naive.naive_kp_core_vertices` on the mirror.  Any
  mismatch is a **stale-serve incident** — the number the committed
  ``BENCH_serve.json`` must show as zero.

Both drivers work on small synthetic workloads by design: the point is
the serving machinery (locking, cache versioning), not graph scale.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.core.naive import naive_kp_core_vertices
from repro.obs.quantiles import LATENCY_METHOD, ReservoirSketch, quantile
from repro.service.durable import DurableMaintainer
from repro.service.server import DEFAULT_CACHE_SIZE, KPCoreServer
from repro.service.workload import (
    WorkloadSpec,
    generate_workload,
    split_workload,
)

__all__ = ["run_serve_bench", "run_differential_probes", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending-sorted sample.

    Delegates to the shared interpolated quantile
    (:func:`repro.obs.quantiles.quantile`).  The previous index math
    (``values[int(q * len)]``) truncated straight to the last order
    statistic at the tail, which is why old baselines recorded
    ``p99 == max`` on ~500-sample runs.
    """
    return quantile(sorted_values, q)


def _reader(
    server: KPCoreServer,
    pairs: list[tuple[int, float]],
    batch: int,
    latencies: list[float],
    walls: list[float],
    errors: list[BaseException],
    start: threading.Event,
) -> None:
    start.wait()
    wall = 0.0
    try:
        for i in range(0, len(pairs), batch):
            chunk = pairs[i : i + batch]
            t0 = time.perf_counter()
            server.query_many(chunk)
            elapsed = time.perf_counter() - t0
            wall += elapsed
            # Attribute the batch latency evenly; percentiles stay in
            # per-query units either way.
            latencies.extend([elapsed / len(chunk)] * len(chunk))
    except BaseException as error:  # pragma: no cover - surfaced by caller
        errors.append(error)
    finally:
        walls.append(wall)


def _run_readers(
    server: KPCoreServer,
    per_thread: list[list[tuple[int, float]]],
    batch: int,
    latencies: list[float],
    walls: list[float],
    errors: list[BaseException],
) -> tuple[threading.Event, list[threading.Thread]]:
    """Start one reader thread per non-empty pair list.

    Returns the start gate and the (already started, gated) threads;
    callers set the gate to release the readers, then join.
    """
    start = threading.Event()
    workers = [
        threading.Thread(
            target=_reader,
            args=(server, pairs, batch, latencies, walls, errors, start),
            name=f"serve-bench-reader-{i}",
        )
        for i, pairs in enumerate(per_thread)
        if pairs
    ]
    for worker in workers:
        worker.start()
    return start, workers


def run_serve_bench(
    directory: str,
    spec: WorkloadSpec | str = "",
    seed: int = 0,
    threads: int = 2,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    min_answer_size: int = 0,
    query_batch: int = 8,
    update_batch: int = 8,
    checkpoint_every: int = 10_000,
    steady_rounds: int = 100,
) -> dict[str, object]:
    """Throughput/latency measurement of one server configuration.

    ``directory`` is the durable state directory (fresh directories start
    from the empty graph and are populated by the workload's prefill
    inserts).  Returns a JSON-friendly result dict.
    """
    if threads < 1:
        raise ParameterError(f"threads must be >= 1, got {threads}")
    if isinstance(spec, str):
        spec = WorkloadSpec.parse(spec)
    ops = generate_workload(spec, seed)
    queries, updates = split_workload(ops)
    per_thread: list[list[tuple[int, float]]] = [[] for _ in range(threads)]
    for i, pair in enumerate(queries):
        per_thread[i % threads].append(pair)

    durable = DurableMaintainer(directory, checkpoint_every=checkpoint_every)
    latencies: list[float] = []
    mixed_walls: list[float] = []
    steady_latencies: list[float] = []
    steady_walls: list[float] = []
    errors: list[BaseException] = []
    with KPCoreServer(
        durable,
        cache_size=cache_size,
        cache_enabled=cache,
        min_answer_size=min_answer_size,
    ) as server:
        # Mixed phase: readers and the writer contend for the server's
        # read/write lock, exactly like live traffic over a maintenance
        # stream.  Latency percentiles come from here (stalls included).
        start, workers = _run_readers(
            server, per_thread, query_batch, latencies, mixed_walls, errors
        )
        t0 = time.perf_counter()
        start.set()
        update_t0 = time.perf_counter()
        if spec.batch > 1:
            # Batched write path: each group journals as one record and
            # re-peels each affected array at most once (apply_batch).
            for i in range(0, len(updates), spec.batch):
                server.apply_batch(updates[i : i + spec.batch])
        else:
            for i in range(0, len(updates), update_batch):
                server.apply(updates[i : i + update_batch])
        update_wall = time.perf_counter() - update_t0
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - t0
        # Steady phase: the update stream has drained, so reader walls
        # now measure query service cost instead of write-lock convoys.
        # The cache enters with whatever survived the mixed phase's
        # invalidation churn.
        # One steady pass is ~1ms of work — scheduler jitter, not query
        # cost; ``steady_rounds`` replays stretch the measured window to
        # tens of milliseconds so the per-query marginal is resolvable.
        if not errors and steady_rounds > 0:
            steady_per_thread = [
                pairs * steady_rounds for pairs in per_thread
            ]
            start, workers = _run_readers(
                server, steady_per_thread, query_batch, steady_latencies,
                steady_walls, errors,
            )
            start.set()
            for worker in workers:
                worker.join()
        stats = server.cache_stats()
    if errors:
        raise errors[0]
    query_wall = sum(steady_walls)
    steady_queries = len(queries) * steady_rounds

    sketch = ReservoirSketch()
    sketch.extend(latencies)
    return {
        "spec": spec.to_string(),
        "workload_fingerprint": spec.fingerprint(),
        "seed": seed,
        "threads": threads,
        "batch": spec.batch,
        "cache": cache,
        "cache_size": cache_size if cache else 0,
        "min_answer_size": min_answer_size if cache else 0,
        "queries": len(queries),
        "updates": len(updates),
        "elapsed_s": round(elapsed, 4),
        "query_wall_s": round(query_wall, 4),
        "update_wall_s": round(update_wall, 4),
        # Steady-phase query throughput: the number the cache can move.
        # `qps = queries / elapsed_s` mixed writer and checkpoint cost
        # into every cache comparison, and even a mixed-phase query wall
        # is mostly write-lock convoy (maintenance holds are ~1000x a
        # cached answer), so only the drained-writer pass is reported.
        "steady_rounds": steady_rounds,
        "query_qps": (
            round(steady_queries / query_wall, 1) if query_wall > 0 else 0.0
        ),
        "ops_per_s": (
            round((len(queries) + len(updates)) / elapsed, 1)
            if elapsed > 0
            else 0.0
        ),
        "latency_method": LATENCY_METHOD,
        "latency_ms": {
            "p50": round(sketch.quantile(0.50) * 1e3, 4),
            "p95": round(sketch.quantile(0.95) * 1e3, 4),
            "p99": round(sketch.quantile(0.99) * 1e3, 4),
            "max": round(sketch.quantile(1.0) * 1e3, 4) if latencies else 0.0,
        },
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "invalidations": stats.invalidations,
            "evictions": stats.evictions,
            "admission_rejects": stats.admission_rejects,
            "hit_rate": round(stats.hit_rate, 4),
        },
    }


def run_differential_probes(
    spec: WorkloadSpec | str = "",
    seed: int = 0,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    min_answer_size: int = 0,
    probe_every: int = 1,
) -> dict[str, object]:
    """Replay a workload sequentially, auditing answers against naive.

    Returns probe/stale counts plus the cache stats of the run.  Uses a
    throwaway temporary state directory.
    """
    if probe_every < 1:
        raise ParameterError(f"probe_every must be >= 1, got {probe_every}")
    if isinstance(spec, str):
        spec = WorkloadSpec.parse(spec)
    ops = generate_workload(spec, seed)
    mirror = Graph()
    probes = 0
    stale = 0
    seen_queries = 0
    pending: list[tuple[str, int, int]] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        durable = DurableMaintainer(
            os.path.join(tmp, "state"), checkpoint_every=10_000
        )
        with KPCoreServer(
            durable,
            cache_size=cache_size,
            cache_enabled=cache,
            min_answer_size=min_answer_size,
        ) as server:

            def flush() -> None:
                # Batched audit mode (spec.batch > 1): updates accumulate
                # and go through apply_batch; the mirror applies the same
                # group at the same point, so every probed answer is
                # checked against a mirror at the same write boundary.
                if not pending:
                    return
                server.apply_batch(pending)
                for kind, a, b in pending:
                    if kind == "insert":
                        mirror.add_edge(a, b)
                    else:
                        mirror.remove_edge(a, b)
                pending.clear()

            for op in ops:
                if op[0] == "query":
                    flush()
                    _, k, p = op
                    answer = set(server.query(k, p))
                    seen_queries += 1
                    if seen_queries % probe_every == 0:
                        probes += 1
                        if answer != naive_kp_core_vertices(mirror, k, p):
                            stale += 1
                elif spec.batch > 1:
                    pending.append((op[0], op[1], op[2]))
                    if len(pending) >= spec.batch:
                        flush()
                elif op[0] == "insert":
                    server.insert_edge(op[1], op[2])
                    mirror.add_edge(op[1], op[2])
                else:
                    server.delete_edge(op[1], op[2])
                    mirror.remove_edge(op[1], op[2])
            flush()
            stats = server.cache_stats()
    return {
        "spec": spec.to_string(),
        "seed": seed,
        "cache": cache,
        "min_answer_size": min_answer_size if cache else 0,
        "probes": probes,
        "stale_serves": stale,
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "invalidations": stats.invalidations,
            "evictions": stats.evictions,
            "admission_rejects": stats.admission_rejects,
            "hit_rate": round(stats.hit_rate, 4),
        },
    }
