"""Serving benchmark drivers: threaded throughput and differential soak.

Two entry points, shared by ``python -m repro index serve-bench`` and the
``benchmarks/bench_serve.py`` recorder:

* :func:`run_serve_bench` — the throughput/latency phase.  A seeded
  workload (:mod:`repro.service.workload`) is split into its query and
  update streams; ``threads`` reader threads hammer the queries through
  :meth:`~repro.service.server.KPCoreServer.query_many` while the main
  thread applies the update stream in journaled batches.  Reports
  queries/second, latency percentiles, and the cache counters.
* :func:`run_differential_probes` — the correctness phase.  The same
  workload is replayed single-threaded against a throwaway server while
  a mirror :class:`~repro.graph.adjacency.Graph` tracks the updates;
  every ``probe_every``-th query is checked (as a set) against
  :func:`~repro.core.naive.naive_kp_core_vertices` on the mirror.  Any
  mismatch is a **stale-serve incident** — the number the committed
  ``BENCH_serve.json`` must show as zero.

Both drivers work on small synthetic workloads by design: the point is
the serving machinery (locking, cache versioning), not graph scale.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.core.naive import naive_kp_core_vertices
from repro.obs.quantiles import LATENCY_METHOD, ReservoirSketch, quantile
from repro.service.durable import DurableMaintainer
from repro.service.server import DEFAULT_CACHE_SIZE, KPCoreServer
from repro.service.workload import (
    WorkloadSpec,
    generate_workload,
    split_workload,
)

__all__ = ["run_serve_bench", "run_differential_probes", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending-sorted sample.

    Delegates to the shared interpolated quantile
    (:func:`repro.obs.quantiles.quantile`).  The previous index math
    (``values[int(q * len)]``) truncated straight to the last order
    statistic at the tail, which is why old baselines recorded
    ``p99 == max`` on ~500-sample runs.
    """
    return quantile(sorted_values, q)


def _reader(
    server: KPCoreServer,
    pairs: list[tuple[int, float]],
    batch: int,
    latencies: list[float],
    errors: list[BaseException],
    start: threading.Event,
) -> None:
    start.wait()
    try:
        for i in range(0, len(pairs), batch):
            chunk = pairs[i : i + batch]
            t0 = time.perf_counter()
            server.query_many(chunk)
            elapsed = time.perf_counter() - t0
            # Attribute the batch latency evenly; percentiles stay in
            # per-query units either way.
            latencies.extend([elapsed / len(chunk)] * len(chunk))
    except BaseException as error:  # pragma: no cover - surfaced by caller
        errors.append(error)


def run_serve_bench(
    directory: str,
    spec: WorkloadSpec | str = "",
    seed: int = 0,
    threads: int = 2,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    query_batch: int = 8,
    update_batch: int = 8,
    checkpoint_every: int = 10_000,
) -> dict[str, object]:
    """Throughput/latency measurement of one server configuration.

    ``directory`` is the durable state directory (fresh directories start
    from the empty graph and are populated by the workload's prefill
    inserts).  Returns a JSON-friendly result dict.
    """
    if threads < 1:
        raise ParameterError(f"threads must be >= 1, got {threads}")
    if isinstance(spec, str):
        spec = WorkloadSpec.parse(spec)
    ops = generate_workload(spec, seed)
    queries, updates = split_workload(ops)
    per_thread: list[list[tuple[int, float]]] = [[] for _ in range(threads)]
    for i, pair in enumerate(queries):
        per_thread[i % threads].append(pair)

    durable = DurableMaintainer(directory, checkpoint_every=checkpoint_every)
    latencies: list[float] = []
    errors: list[BaseException] = []
    start = threading.Event()
    with KPCoreServer(
        durable, cache_size=cache_size, cache_enabled=cache
    ) as server:
        workers = [
            threading.Thread(
                target=_reader,
                args=(server, pairs, query_batch, latencies, errors, start),
                name=f"serve-bench-reader-{i}",
            )
            for i, pairs in enumerate(per_thread)
            if pairs
        ]
        for worker in workers:
            worker.start()
        t0 = time.perf_counter()
        start.set()
        for i in range(0, len(updates), update_batch):
            server.apply(updates[i : i + update_batch])
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - t0
        stats = server.cache_stats()
    if errors:
        raise errors[0]

    sketch = ReservoirSketch()
    sketch.extend(latencies)
    return {
        "spec": spec.to_string(),
        "workload_fingerprint": spec.fingerprint(),
        "seed": seed,
        "threads": threads,
        "cache": cache,
        "cache_size": cache_size if cache else 0,
        "queries": len(queries),
        "updates": len(updates),
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(queries) / elapsed, 1) if elapsed > 0 else 0.0,
        "latency_method": LATENCY_METHOD,
        "latency_ms": {
            "p50": round(sketch.quantile(0.50) * 1e3, 4),
            "p95": round(sketch.quantile(0.95) * 1e3, 4),
            "p99": round(sketch.quantile(0.99) * 1e3, 4),
            "max": round(sketch.quantile(1.0) * 1e3, 4) if latencies else 0.0,
        },
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "invalidations": stats.invalidations,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
        },
    }


def run_differential_probes(
    spec: WorkloadSpec | str = "",
    seed: int = 0,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    probe_every: int = 1,
) -> dict[str, object]:
    """Replay a workload sequentially, auditing answers against naive.

    Returns probe/stale counts plus the cache stats of the run.  Uses a
    throwaway temporary state directory.
    """
    if probe_every < 1:
        raise ParameterError(f"probe_every must be >= 1, got {probe_every}")
    if isinstance(spec, str):
        spec = WorkloadSpec.parse(spec)
    ops = generate_workload(spec, seed)
    mirror = Graph()
    probes = 0
    stale = 0
    seen_queries = 0
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        durable = DurableMaintainer(
            os.path.join(tmp, "state"), checkpoint_every=10_000
        )
        with KPCoreServer(
            durable, cache_size=cache_size, cache_enabled=cache
        ) as server:
            for op in ops:
                if op[0] == "query":
                    _, k, p = op
                    answer = set(server.query(k, p))
                    seen_queries += 1
                    if seen_queries % probe_every == 0:
                        probes += 1
                        if answer != naive_kp_core_vertices(mirror, k, p):
                            stale += 1
                elif op[0] == "insert":
                    server.insert_edge(op[1], op[2])
                    mirror.add_edge(op[1], op[2])
                else:
                    server.delete_edge(op[1], op[2])
                    mirror.remove_edge(op[1], op[2])
            stats = server.cache_stats()
    return {
        "spec": spec.to_string(),
        "seed": seed,
        "cache": cache,
        "probes": probes,
        "stale_serves": stale,
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "invalidations": stats.invalidations,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
        },
    }
