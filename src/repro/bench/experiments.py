"""One entry point per paper experiment (Table II, Figs. 6-16).

Each ``fig*_rows`` / ``table2_rows`` function returns ``(headers, rows)``
ready for :func:`repro.bench.reporting.print_table`; the ``benchmarks/``
suite wraps them in pytest-benchmark cases and prints the same rows the
paper plots.  Keeping the logic here means examples, tests, and benchmarks
all regenerate identical numbers.

Where a paper parameter does not fit the scaled stand-ins (e.g. a 15-core
on the scaled DBLP-3), the function degrades the parameter and records the
substitution in the returned rows, never silently.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.metrics import summarize
from repro.graph.views import sample_edges, sample_ratios, sample_vertices
from repro.kcore.compute import k_core_vertices_compact
from repro.kcore.decomposition import core_decomposition, core_numbers_compact
from repro.core.decomposition import kp_core_decomposition
from repro.core.peel_engines import DEFAULT_ENGINE
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices_compact
from repro.core.maintenance import KPIndexMaintainer, MaintenanceMode
from repro.analysis.casestudy import case_study
from repro.analysis.comparison import compare_cores
from repro.analysis.engagement import (
    engagement_by_core_number,
    engagement_by_kp_stratum,
    engagement_by_onion_layer,
)
from repro.bench.timing import Timing, measure
from repro.obs import names as metric_names
from repro.obs.instrumentation import collection_active
from repro.obs.snapshot import MetricsSnapshot
from repro.datasets import load_all, simulate_checkins, spec
from repro.datasets.dblp import default_corpus

__all__ = [
    "DEFAULT_K",
    "DEFAULT_P",
    "table2_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_reports",
    "fig10_series",
    "fig11_rows",
    "fig12_rows",
    "fig13_rows",
    "fig14_rows",
    "fig15_rows",
    "fig16_rows",
    "ablation_rows",
]

DEFAULT_K = 10
DEFAULT_P = 0.6

Rows = tuple[Sequence[str], list[Sequence[object]]]


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def table2_rows() -> Rows:
    headers = (
        "dataset", "vertices", "edges", "d_avg", "d_max",
        "paper_vertices", "paper_edges", "paper_d_avg", "paper_d_max",
    )
    rows: list[Sequence[object]] = []
    for name, graph in load_all().items():
        s = summarize(graph)
        paper = spec(name)
        rows.append(
            (
                name, s.num_vertices, s.num_edges,
                round(s.average_degree, 2), s.max_degree,
                paper.paper_vertices, paper.paper_edges,
                paper.paper_avg_degree, paper.paper_max_degree,
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Figs. 6-8 — core size / clustering / density
# ----------------------------------------------------------------------
def _comparisons(k: int, p: float):
    return [
        compare_cores(graph, k, p, name=name)
        for name, graph in load_all().items()
    ]


def fig6_rows(k: int = DEFAULT_K, p: float = DEFAULT_P) -> Rows:
    headers = ("dataset", "|k-core|", "|(k,p)-core|", "ratio")
    rows = [
        (
            c.name,
            c.kcore_vertices,
            c.kpcore_vertices,
            "inf" if c.size_ratio == float("inf") else round(c.size_ratio, 2),
        )
        for c in _comparisons(k, p)
    ]
    return headers, rows


def fig7_rows(k: int = DEFAULT_K, p: float = DEFAULT_P) -> Rows:
    headers = ("dataset", "cc(k-core)", "cc((k,p)-core)")
    rows = [
        (c.name, round(c.kcore_clustering, 4), round(c.kpcore_clustering, 4))
        for c in _comparisons(k, p)
    ]
    return headers, rows


def fig8_rows(k: int = DEFAULT_K, p: float = DEFAULT_P) -> Rows:
    headers = ("dataset", "density(k-core)", "density((k,p)-core)")
    rows = [
        (c.name, round(c.kcore_density, 4), round(c.kpcore_density, 4))
        for c in _comparisons(k, p)
    ]
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 9 — DBLP case studies
# ----------------------------------------------------------------------
def _fit_k(graph: Graph, wanted_k: int) -> int:
    """Largest k <= wanted_k with a non-empty k-core on this graph."""
    d = core_decomposition(graph).degeneracy
    return min(wanted_k, d)


def fig9_reports() -> list[tuple[str, object]]:
    """Case-study reports for DBLP-3 (paper: k=15, p=0.5) and DBLP-10
    (paper: k=5, p=0.4), with ``k`` degraded to the scaled degeneracy when
    needed.  Returns ``[(label, ComponentReport), ...]``."""
    corpus = default_corpus()
    reports: list[tuple[str, object]] = []
    for threshold, wanted_k, p in ((3, 15, 0.5), (10, 5, 0.4)):
        graph = corpus.graph(min_papers=threshold)
        # The paper visualizes a component where the fraction constraint
        # trims *part* of the k-core.  On the scaled corpus the paper's
        # exact k may collapse (or spare) every component, so scan k
        # downward and pick the component that best balances survivors
        # against trimmed members (recorded in the label).
        best = None  # (score, k, report)
        for k in range(_fit_k(graph, wanted_k), 1, -1):
            rank = 0
            while True:
                try:
                    candidate = case_study(graph, k, p, component_rank=rank)
                except ParameterError:  # ran out of components
                    break
                rank += 1
                survivors = len(candidate.kp_members)
                trimmed = len(candidate.members) - survivors
                score = min(survivors, trimmed)
                if best is None or score > best[0]:
                    best = (score, k, candidate)
            if best is not None and best[0] >= 5:
                break
        assert best is not None  # every graph here has a non-empty 2-core
        _, k_used, report = best
        reports.append((f"DBLP-{threshold} (k={k_used}, p={p})", report))
    return reports


# ----------------------------------------------------------------------
# Fig. 10 — Gowalla engagement
# ----------------------------------------------------------------------
def fig10_series() -> dict[str, list]:
    """The three Fig. 10 series on the Gowalla stand-in."""
    graph = load_all()["gowalla"]
    decomposition = kp_core_decomposition(graph)
    checkins = simulate_checkins(graph, decomposition=decomposition)
    return {
        "core_number": engagement_by_core_number(graph, checkins, decomposition),
        "kp_stratum": engagement_by_kp_stratum(graph, checkins, decomposition),
        "onion_layer": engagement_by_onion_layer(graph, checkins),
    }


# ----------------------------------------------------------------------
# Figs. 11-12 — computation time
# ----------------------------------------------------------------------
def _per_run(snapshot: MetricsSnapshot | None, name: str, repeats: int) -> int:
    """A counter accumulated over ``repeats`` runs, averaged back to one."""
    if snapshot is None:
        return 0
    return snapshot.counter(name) // max(1, repeats)


def _computation_times(
    graph: Graph,
    k: int,
    p: float,
    index: KPIndex,
    repeat: int = 3,
    with_metrics: bool = False,
) -> tuple[Timing, Timing, Timing]:
    """Best-of-N timings of (kCoreComp, kpCoreComp, kpCoreQuery)."""
    snapshot = CompactAdjacency(graph)
    t_kcore = measure(lambda: k_core_vertices_compact(snapshot, k), repeat)
    t_kpcore = measure(
        lambda: kp_core_vertices_compact(snapshot, k, p),
        repeat,
        capture_metrics=with_metrics,
    )
    t_query = measure(
        lambda: index.query(k, p), repeat, capture_metrics=with_metrics
    )
    return t_kcore, t_kpcore, t_query


def fig11_rows(
    k: int = DEFAULT_K,
    p: float = DEFAULT_P,
    with_metrics: bool | None = None,
) -> Rows:
    """Fig. 11 timings; ``with_metrics`` appends per-run operation counts
    (defaults to on whenever an obs collector is active, e.g. REPRO_OBS=1).
    """
    if with_metrics is None:
        with_metrics = collection_active()
    headers: tuple[str, ...] = (
        "dataset", "kCoreComp_s", "kpCoreComp_s", "kpCoreQuery_s", "speedup",
    )
    if with_metrics:
        headers += ("kp_peeled", "kp_survivors", "query_touched")
    rows: list[Sequence[object]] = []
    for name, graph in load_all().items():
        index = KPIndex.build(graph)
        tk, tkp, tq = _computation_times(
            graph, k, p, index, with_metrics=with_metrics
        )
        row: list[object] = [
            name, round(tk.seconds, 5), round(tkp.seconds, 5),
            round(tq.seconds, 6),
            round(tkp.seconds / tq.seconds, 1) if tq.seconds > 0 else "inf",
        ]
        if with_metrics:
            row.extend(
                (
                    _per_run(
                        tkp.metrics, metric_names.KCORE_PEEL_PEELED, tkp.repeats
                    ),
                    _per_run(
                        tkp.metrics,
                        metric_names.KCORE_PEEL_SURVIVORS,
                        tkp.repeats,
                    ),
                    _per_run(
                        tq.metrics,
                        metric_names.INDEX_VERTICES_TOUCHED,
                        tq.repeats,
                    ),
                )
            )
        rows.append(tuple(row))
    return headers, rows


def fig12_rows(
    ks: Sequence[int] | None = None,
    ps: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
) -> Rows:
    """Effect of k and p on the Orkut stand-in (paper Fig. 12).

    The paper sweeps k = 5..25 against Orkut's degeneracy of 253; on the
    scaled stand-in the equivalent sweep covers the same *relative* range,
    so by default ``ks`` spans 20%..100% of the stand-in's degeneracy.
    """
    graph = load_all()["orkut"]
    index = KPIndex.build(graph)
    if ks is None:
        d = index.degeneracy
        ks = sorted({max(1, round(d * f)) for f in (0.2, 0.4, 0.6, 0.8, 1.0)})
    headers = ("sweep", "value", "kCoreComp_s", "kpCoreComp_s", "kpCoreQuery_s")
    rows: list[Sequence[object]] = []
    for k in ks:
        tk, tkp, tq = _computation_times(graph, k, DEFAULT_P, index)
        rows.append(
            ("vary-k", k, round(tk.seconds, 5), round(tkp.seconds, 5),
             round(tq.seconds, 6))
        )
    for p in ps:
        tk, tkp, tq = _computation_times(graph, DEFAULT_K, p, index)
        rows.append(
            ("vary-p", p, round(tk.seconds, 5), round(tkp.seconds, 5),
             round(tq.seconds, 6))
        )
    return headers, rows


# ----------------------------------------------------------------------
# Figs. 13-14 — decomposition time and scalability
# ----------------------------------------------------------------------
def _decomposition_times(
    graph: Graph,
    with_metrics: bool = False,
    engine: str = DEFAULT_ENGINE,
    workers: int = 1,
    repeat: int = 1,
) -> tuple[Timing, Timing]:
    t_core = measure(
        lambda: core_numbers_compact(CompactAdjacency(graph)), repeat
    )
    t_kp = measure(
        lambda: kp_core_decomposition(graph, engine=engine, workers=workers),
        repeat,
        capture_metrics=with_metrics,
    )
    return t_core, t_kp


def fig13_rows(
    with_metrics: bool | None = None,
    engines: Sequence[str] = (DEFAULT_ENGINE,),
) -> Rows:
    """Fig. 13 timings; ``with_metrics`` appends per-run peel/re-key counts
    (defaults to on whenever an obs collector is active, e.g. REPRO_OBS=1).
    ``engines`` grows the figure a peeling-backend dimension: one row per
    dataset per engine.
    """
    if with_metrics is None:
        with_metrics = collection_active()
    headers: tuple[str, ...] = (
        "dataset", "engine", "kcoreDecomp_s", "kpCoreDecomp_s", "slowdown",
    )
    if with_metrics:
        headers += ("peels", "rekeys")
    rows: list[Sequence[object]] = []
    for name, graph in load_all().items():
        for engine in engines:
            t_core, t_kp = _decomposition_times(
                graph, with_metrics=with_metrics, engine=engine
            )
            row: list[object] = [
                name, engine, round(t_core.seconds, 4), round(t_kp.seconds, 4),
                round(t_kp.seconds / t_core.seconds, 1)
                if t_core.seconds > 0 else "inf",
            ]
            if with_metrics:
                row.extend(
                    (
                        _per_run(
                            t_kp.metrics, metric_names.DECOMP_PEELS, t_kp.repeats
                        ),
                        _per_run(
                            t_kp.metrics, metric_names.DECOMP_REKEYS, t_kp.repeats
                        ),
                    )
                )
            rows.append(tuple(row))
    return headers, rows


def fig14_rows(
    dataset: str = "orkut", workers: Sequence[int] = (1,)
) -> Rows:
    """Fig. 14 scalability sweep; ``workers`` grows the figure a pool-size
    dimension: one row per sample per worker count."""
    headers = ("sample", "ratio", "vertices", "edges", "workers",
               "kcoreDecomp_s", "kpCoreDecomp_s")
    graph = load_all()[dataset]
    rows: list[Sequence[object]] = []
    for mode, sampler in (
        ("vertex", sample_vertices),
        ("edge", sample_edges),
    ):
        for ratio in sample_ratios:
            sampled = sampler(graph, ratio, seed=17)
            for n_workers in workers:
                t_core, t_kp = _decomposition_times(sampled, workers=n_workers)
                rows.append(
                    (mode, ratio, sampled.num_vertices, sampled.num_edges,
                     n_workers,
                     round(t_core.seconds, 4), round(t_kp.seconds, 4))
                )
    return headers, rows


# ----------------------------------------------------------------------
# Figs. 15-16 — index maintenance
# ----------------------------------------------------------------------
def _merge_counters(totals: dict[str, int], snapshot: MetricsSnapshot | None) -> None:
    if snapshot is None:
        return
    for name, value in snapshot.counters.items():
        totals[name] = totals.get(name, 0) + value


def _maintenance_times(
    graph: Graph,
    batch: int,
    seed: int = 23,
    mode: MaintenanceMode = MaintenanceMode.RANGE,
    with_metrics: bool = False,
) -> tuple[float, float, float, dict[str, int]]:
    """(avg insert, avg delete, rebuild) seconds for one graph, plus the
    obs counters summed over every maintained edge (empty unless
    ``with_metrics``).

    Mirrors the paper's protocol: remove ``batch`` random existing edges,
    insert them back, report per-edge averages, and compare against a full
    from-scratch decomposition per update.
    """
    rng = random.Random(seed)
    working = graph.copy()
    maintainer = KPIndexMaintainer(working, mode=mode)
    edges = list(working.edges())
    chosen = rng.sample(edges, min(batch, len(edges)))

    counters: dict[str, int] = {}
    delete_total = 0.0
    for u, v in chosen:
        t = measure(
            lambda u=u, v=v: maintainer.delete_edge(u, v),
            capture_metrics=with_metrics,
        )
        delete_total += t.seconds
        _merge_counters(counters, t.metrics)
    insert_total = 0.0
    for u, v in chosen:
        t = measure(
            lambda u=u, v=v: maintainer.insert_edge(u, v),
            capture_metrics=with_metrics,
        )
        insert_total += t.seconds
        _merge_counters(counters, t.metrics)
    rebuild = measure(lambda: KPIndex.build(graph)).seconds
    n = max(1, len(chosen))
    return insert_total / n, delete_total / n, rebuild, counters


def fig15_rows(batch: int = 50, with_metrics: bool | None = None) -> Rows:
    """Per-edge maintenance cost vs from-scratch rebuild (paper Fig. 15).

    The paper uses 500 edges on graphs three orders of magnitude bigger;
    ``batch`` is scaled accordingly but overridable.  ``with_metrics``
    appends the theorem-pruning counters summed over the whole batch
    (defaults to on whenever an obs collector is active, e.g. REPRO_OBS=1).
    """
    if with_metrics is None:
        with_metrics = collection_active()
    headers: tuple[str, ...] = (
        "dataset", "insert_s", "delete_s", "rebuild_s",
        "speedup_ins", "speedup_del",
    )
    if with_metrics:
        headers += ("thm_skips", "repeeled", "early_stops")
    rows: list[Sequence[object]] = []
    for name, graph in load_all().items():
        ins, dele, rebuild, counters = _maintenance_times(
            graph, batch, with_metrics=with_metrics
        )
        row: list[object] = [
            name, round(ins, 5), round(dele, 5), round(rebuild, 4),
            round(rebuild / ins, 1) if ins > 0 else "inf",
            round(rebuild / dele, 1) if dele > 0 else "inf",
        ]
        if with_metrics:
            skips = sum(
                counters.get(c, 0)
                for c in (
                    metric_names.MAINT_THM2_SKIPS,
                    metric_names.MAINT_THM6_SKIPS,
                    metric_names.MAINT_THM7_SKIPS,
                )
            )
            row.extend(
                (
                    skips,
                    counters.get(metric_names.MAINT_VERTICES_REPEELED, 0),
                    counters.get(metric_names.MAINT_EARLY_STOPS, 0),
                )
            )
        rows.append(tuple(row))
    return headers, rows


def fig16_rows(dataset: str = "orkut", batch: int = 25) -> Rows:
    headers = ("sample", "ratio", "edges", "insert_s", "delete_s", "rebuild_s")
    graph = load_all()[dataset]
    rows: list[Sequence[object]] = []
    for mode, sampler in (
        ("vertex", sample_vertices),
        ("edge", sample_edges),
    ):
        for ratio in sample_ratios:
            sampled = sampler(graph, ratio, seed=19)
            ins, dele, rebuild, _ = _maintenance_times(sampled, batch)
            rows.append(
                (mode, ratio, sampled.num_edges,
                 round(ins, 5), round(dele, 5), round(rebuild, 4))
            )
    return headers, rows


# ----------------------------------------------------------------------
# Ablation — what each maintenance ingredient buys (not in the paper's
# plots, but implied by its design discussion)
# ----------------------------------------------------------------------
def ablation_rows(dataset: str = "gowalla", batch: int = 40) -> Rows:
    headers = ("variant", "insert_s", "delete_s", "rebuild_s",
               "repeeled_vertices", "thm6_skips", "early_stops")
    graph = load_all()[dataset]
    rows: list[Sequence[object]] = []
    variants = (
        ("range", MaintenanceMode.RANGE, "traversal"),
        ("full-k", MaintenanceMode.FULL_K, "traversal"),
        ("range+order-cores", MaintenanceMode.RANGE, "order"),
    )
    for label, mode, backend in variants:
        rng = random.Random(29)
        working = graph.copy()
        maintainer = KPIndexMaintainer(working, mode=mode, core_backend=backend)
        chosen = rng.sample(list(working.edges()), batch)
        delete_total = insert_total = 0.0
        for u, v in chosen:
            delete_total += measure(
                lambda u=u, v=v: maintainer.delete_edge(u, v)
            ).seconds
        for u, v in chosen:
            insert_total += measure(
                lambda u=u, v=v: maintainer.insert_edge(u, v)
            ).seconds
        rebuild = measure(lambda: KPIndex.build(graph)).seconds
        stats = maintainer.stats
        rows.append(
            (label, round(insert_total / batch, 5),
             round(delete_total / batch, 5), round(rebuild, 4),
             stats.vertices_repeeled, stats.arrays_skipped_theorem6,
             stats.early_stops)
        )
    return headers, rows
