"""Run provenance for bench writers: what produced these numbers.

Every benchmark JSON written by this repository (the ``BENCH_*.json``
baselines and the CLI's ``--json`` outputs) carries a ``provenance``
block so ``repro bench diff`` can label what it is comparing — two runs
of the same commit on the same machine, or apples against oranges.

Kept deliberately small and dependency-free: the git commit comes from
``git rev-parse`` with a graceful ``"unknown"`` fallback (baselines can
be regenerated from a tarball), the timestamp is UTC ISO-8601.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import sys

__all__ = ["run_provenance"]


def _git_commit() -> str:
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = result.stdout.strip()
    return commit if result.returncode == 0 and commit else "unknown"


def run_provenance() -> dict[str, object]:
    """The provenance block stamped into every bench JSON payload."""
    return {
        "git_commit": _git_commit(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
    }
