"""Timing helpers shared by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["Timer", "Timing", "measure"]

T = TypeVar("T")


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass(frozen=True)
class Timing:
    """Result and wall time of one measured call."""

    result: object
    seconds: float


def measure(fn: Callable[[], T], repeat: int = 1) -> Timing:
    """Run ``fn`` ``repeat`` times; report the best time and last result.

    Best-of-N is the standard way to suppress scheduler noise for
    single-shot algorithm timings.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return Timing(result=result, seconds=best)
