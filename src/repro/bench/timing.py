"""Timing helpers shared by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, TypeVar

from repro.obs.instrumentation import Instrumentation, set_collector
from repro.obs.snapshot import MetricsSnapshot

__all__ = ["Timer", "Timing", "measure"]

T = TypeVar("T")


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass(frozen=True)
class Timing:
    """Result and wall time of one measured call.

    ``seconds`` is the best (minimum) over the repeats, the standard
    figure for suppressing scheduler noise; ``median_seconds`` is the
    robust central tendency over the same runs, and ``repeats`` records
    how many runs both summarize.  ``metrics`` carries the algorithm
    counters collected across all repeats when the measurement asked for
    them (see :func:`measure`), else ``None``.
    """

    result: object
    seconds: float
    median_seconds: float = 0.0
    repeats: int = 1
    metrics: MetricsSnapshot | None = field(default=None, compare=False)


def measure(
    fn: Callable[[], T],
    repeat: int = 1,
    capture_metrics: bool = False,
) -> Timing:
    """Run ``fn`` ``repeat`` times; report min/median times and last result.

    Best-of-N (``Timing.seconds``) is the standard way to suppress
    scheduler noise for single-shot algorithm timings; the median is
    reported alongside so harnesses can show both.

    With ``capture_metrics=True`` a fresh :class:`Instrumentation`
    collector is installed for the duration of every repeat (replacing —
    and afterwards restoring — any active collector), and its snapshot is
    returned in ``Timing.metrics``.  Counters therefore accumulate over
    all ``repeat`` runs; divide by ``Timing.repeats`` for per-run
    figures.  The instrumented runs are the timed runs — the collection
    overhead is part of the reported time, which keeps the timing honest
    for closures that mutate state and cannot be re-run separately.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    collector = Instrumentation() if capture_metrics else None
    previous = set_collector(collector) if capture_metrics else None
    try:
        times: list[float] = []
        result: object = None
        for _ in range(repeat):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
    finally:
        if capture_metrics:
            set_collector(previous)
    return Timing(
        result=result,
        seconds=min(times),
        median_seconds=median(times),
        repeats=repeat,
        metrics=collector.snapshot() if collector is not None else None,
    )
