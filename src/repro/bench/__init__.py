"""Benchmark harness: timing, table rendering, and per-experiment drivers.

The ``benchmarks/`` directory wraps these drivers in pytest-benchmark
cases; ``examples/`` and EXPERIMENTS.md reuse the same functions so every
reported number has exactly one source.
"""

from repro.bench.reporting import banner, format_seconds, format_table, print_table
from repro.bench.timing import Timer, Timing, measure
from repro.bench import experiments

__all__ = [
    "Timer",
    "Timing",
    "measure",
    "format_table",
    "print_table",
    "format_seconds",
    "banner",
    "experiments",
]
