"""Structured regression diffing over committed ``BENCH_*.json`` files.

``python -m repro bench diff OLD NEW [--tolerance R]`` compares two
bench payloads entry by entry.  Entries are matched on their *identity
keys* (``dataset``, ``engine``, ``workers``, ``spec``, ``seed``,
``threads``, ``cache``, ``cache_size``, ``min_answer_size``,
``steady_rounds`` — whichever subset an entry carries), and within each
matched pair every known *directional metric* is compared:

* lower is better — ``min_s``, ``median_s``, ``elapsed_s``,
  ``query_wall_s``, every ``latency_ms.*`` percentile, ``stale_serves``;
* higher is better — ``qps`` (legacy), ``query_qps``, ``ops_per_s``,
  ``cache_stats.hit_rate``.

A metric **regresses** when it moves in the bad direction by more than
the relative tolerance.  A matched entry missing from the new payload
is a regression outright (coverage must not silently shrink).  Metrics
present on only one side are reported but never regress — that is how
schema additions like ``latency_method`` stay diffable against
pre-provenance baselines.

The module is pure data-in/data-out (:func:`diff_payloads` returns a
:class:`BenchDiff`); file loading and rendering live in thin wrappers so
tests can exercise the comparison logic without touching disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_TOLERANCE",
    "MetricDelta",
    "EntryDiff",
    "BenchDiff",
    "diff_payloads",
    "diff_files",
    "render_diff",
]

#: Default relative tolerance: changes within +-25% are noise on the
#: small synthetic workloads the committed baselines use.
DEFAULT_TOLERANCE = 0.25

#: Entry fields that identify *what* was measured (not how fast).
_IDENTITY_KEYS = (
    "dataset",
    "engine",
    "workers",
    "spec",
    "workload_fingerprint",
    "seed",
    "threads",
    "batch",
    "cache",
    "cache_size",
    "min_answer_size",
    # Measurement methodology: a query_qps from a different steady-phase
    # round count is a different experiment, not a regression signal.
    "steady_rounds",
)

#: Dotted metric path -> direction ("lower" / "higher" is better).
_DIRECTIONS: dict[str, str] = {
    "min_s": "lower",
    "median_s": "lower",
    "elapsed_s": "lower",
    "latency_ms.p50": "lower",
    "latency_ms.p95": "lower",
    "latency_ms.p99": "lower",
    "latency_ms.max": "lower",
    "stale_serves": "lower",
    "query_wall_s": "lower",
    "qps": "higher",
    "query_qps": "higher",
    "ops_per_s": "higher",
    "cache_stats.hit_rate": "higher",
}


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the two payloads."""

    name: str
    old: float
    new: float
    direction: str
    regressed: bool
    improved: bool

    @property
    def relative_change(self) -> float:
        if self.old == 0.0:
            return 0.0 if self.new == 0.0 else float("inf")
        return (self.new - self.old) / abs(self.old)


@dataclass(frozen=True)
class EntryDiff:
    """One matched (or unmatched) bench entry."""

    identity: str
    status: str  # "matched" | "missing_in_new" | "missing_in_old"
    deltas: tuple[MetricDelta, ...] = ()

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)


@dataclass(frozen=True)
class BenchDiff:
    """The full comparison: entries, tolerance, provenance labels."""

    entries: tuple[EntryDiff, ...]
    tolerance: float
    old_label: str
    new_label: str
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def regressed(self) -> bool:
        return any(
            entry.status == "missing_in_new" or entry.regressions
            for entry in self.entries
        )


def _identity(entry: Mapping[str, Any]) -> str:
    parts = [
        f"{key}={entry[key]}" for key in _IDENTITY_KEYS if key in entry
    ]
    return " ".join(parts) if parts else "<anonymous>"


def _flatten_metrics(
    entry: Mapping[str, Any], prefix: str = ""
) -> dict[str, float]:
    flat: dict[str, float] = {}
    for key, value in entry.items():
        if key in _IDENTITY_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(_flatten_metrics(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


def _provenance_label(payload: Mapping[str, Any]) -> str:
    prov = payload.get("provenance")
    if not isinstance(prov, Mapping):
        return "no provenance recorded"
    return (
        f"commit {prov.get('git_commit', '?')} at "
        f"{prov.get('recorded_at', '?')} "
        f"(python {prov.get('python', '?')}, {prov.get('cpus', '?')} cpus)"
    )


def _entry_lists(payload: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    """Every comparable entry in a bench payload.

    ``entries`` plus ``audits`` when present; a payload that is itself a
    bare list of entries is accepted too.
    """
    if isinstance(payload, list):
        return [e for e in payload if isinstance(e, Mapping)]
    collected: list[Mapping[str, Any]] = []
    for key in ("entries", "audits"):
        block = payload.get(key)
        if isinstance(block, list):
            collected.extend(e for e in block if isinstance(e, Mapping))
    return collected


def _compare_entry(
    identity: str,
    old_entry: Mapping[str, Any],
    new_entry: Mapping[str, Any],
    tolerance: float,
) -> EntryDiff:
    old_metrics = _flatten_metrics(old_entry)
    new_metrics = _flatten_metrics(new_entry)
    deltas: list[MetricDelta] = []
    for name in sorted(set(old_metrics) & set(new_metrics)):
        direction = _DIRECTIONS.get(name, "")
        old_value = old_metrics[name]
        new_value = new_metrics[name]
        regressed = False
        improved = False
        if direction:
            if old_value == 0.0:
                bad = new_value > 0.0 if direction == "lower" else False
                good = new_value > 0.0 if direction == "higher" else False
            else:
                rel = (new_value - old_value) / abs(old_value)
                bad = rel > tolerance if direction == "lower" else rel < -tolerance
                good = rel < -tolerance if direction == "lower" else rel > tolerance
            regressed = bad
            improved = good
        deltas.append(
            MetricDelta(
                name=name,
                old=old_value,
                new=new_value,
                direction=direction,
                regressed=regressed,
                improved=improved,
            )
        )
    return EntryDiff(identity=identity, status="matched", deltas=tuple(deltas))


def diff_payloads(
    old_payload: Mapping[str, Any],
    new_payload: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchDiff:
    """Compare two parsed bench payloads; see the module docstring."""
    if tolerance < 0:
        raise ParameterError(f"tolerance must be >= 0, got {tolerance}")
    old_entries = {_identity(e): e for e in _entry_lists(old_payload)}
    new_entries = {_identity(e): e for e in _entry_lists(new_payload)}
    diffs: list[EntryDiff] = []
    for identity, old_entry in old_entries.items():
        new_entry = new_entries.get(identity)
        if new_entry is None:
            diffs.append(EntryDiff(identity=identity, status="missing_in_new"))
        else:
            diffs.append(
                _compare_entry(identity, old_entry, new_entry, tolerance)
            )
    for identity in new_entries:
        if identity not in old_entries:
            diffs.append(EntryDiff(identity=identity, status="missing_in_old"))
    notes: list[str] = []
    old_method = old_payload.get("latency_method") if isinstance(
        old_payload, Mapping
    ) else None
    new_method = new_payload.get("latency_method") if isinstance(
        new_payload, Mapping
    ) else None
    if old_method != new_method:
        notes.append(
            f"latency methods differ: old={old_method!r} new={new_method!r} "
            "(tail percentiles are not directly comparable)"
        )
    return BenchDiff(
        entries=tuple(diffs),
        tolerance=tolerance,
        old_label=_provenance_label(old_payload)
        if isinstance(old_payload, Mapping)
        else "no provenance recorded",
        new_label=_provenance_label(new_payload)
        if isinstance(new_payload, Mapping)
        else "no provenance recorded",
        notes=tuple(notes),
    )


def diff_files(
    old_path: str | Path,
    new_path: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchDiff:
    """Load two bench JSON files and compare them."""
    payloads = []
    for path in (old_path, new_path):
        try:
            payloads.append(
                json.loads(Path(path).read_text(encoding="utf-8"))
            )
        except FileNotFoundError:
            raise ParameterError(f"bench file not found: {path}") from None
        except json.JSONDecodeError as error:
            raise ParameterError(
                f"bench file is not valid JSON: {path} ({error})"
            ) from None
    return diff_payloads(payloads[0], payloads[1], tolerance)


def render_diff(diff: BenchDiff) -> str:
    """Human-readable regression report (one line per changed metric)."""
    lines = [
        f"old: {diff.old_label}",
        f"new: {diff.new_label}",
        f"tolerance: +-{diff.tolerance * 100:.0f}% relative",
    ]
    for note in diff.notes:
        lines.append(f"note: {note}")
    lines.append("")
    regressions = 0
    for entry in diff.entries:
        if entry.status == "missing_in_new":
            regressions += 1
            lines.append(f"REGRESSION  [{entry.identity}] missing from NEW")
            continue
        if entry.status == "missing_in_old":
            lines.append(f"new entry   [{entry.identity}] (not in OLD)")
            continue
        shown: list[str] = []
        for delta in entry.deltas:
            if not delta.direction:
                continue
            rel = delta.relative_change
            rel_text = (
                f"{rel * 100:+.1f}%" if rel != float("inf") else "+inf%"
            )
            if delta.regressed:
                regressions += 1
                shown.append(
                    f"  REGRESSION  {delta.name}: {delta.old:g} -> "
                    f"{delta.new:g} ({rel_text}, {delta.direction} is better)"
                )
            elif delta.improved:
                shown.append(
                    f"  improved    {delta.name}: {delta.old:g} -> "
                    f"{delta.new:g} ({rel_text})"
                )
        status = "REGRESSED" if any(
            line.lstrip().startswith("REGRESSION") for line in shown
        ) else "ok"
        lines.append(f"[{entry.identity}] {status}")
        lines.extend(shown)
    lines.append("")
    lines.append(
        f"{regressions} regression(s) across {len(diff.entries)} entries"
        if regressions
        else f"no regressions across {len(diff.entries)} entries"
    )
    return "\n".join(lines)
