"""(k,p)-core decomposition — Algorithm 2 (kpCoreDecom).

For every ``k`` from 1 to the degeneracy ``d(G)``, the decomposition
computes the **p-number** ``pn(v, k)`` of every k-core vertex: the largest
``p`` for which ``v`` is still in the (k,p)-core.  The paper's formulation
peels the k-core in rounds — find the minimum fraction ``p_min``, delete
every vertex whose fraction is dragged to ``<= p_min`` (or whose degree
falls below ``k``), repeat — and the round level at deletion time is the
vertex's p-number.

Implementation notes
--------------------
* The per-``k`` peel is delegated to a selectable engine
  (:mod:`repro.core.peel_engines`): the default ``"flat"`` engine drains
  bin-sorted integer-rank chains over a global composite-key ladder
  (:mod:`repro.core.peel_flat`), ``"flat-numpy"`` vectorizes its setup
  when numpy is importable, ``"bucket"`` keeps vertices in an array of
  exact fraction-level buckets, and ``"heap"`` is the original lazy
  min-heap backend kept for cross-checking.  All emit identical
  canonical output; see ``docs/performance.md`` for the selection guide.
* Serial full decompositions build one engine scratch
  (:func:`repro.core.peel_engines.make_scratch`) and thread it through
  every ``k``, so ladders/buckets are allocated once per decomposition
  rather than once per ``k``.
* The per-``k`` peels after core-number computation are independent, so
  ``workers=N`` fans them out over a :mod:`multiprocessing` pool
  (:mod:`repro.core.parallel`), shipping the frozen snapshot once per
  worker and merging deterministically.
* Neighbour lists are pre-sorted by descending core number once, so for
  each ``k`` the k-core neighbours of ``v`` are a prefix of its slice
  (:meth:`~repro.graph.compact.CompactAdjacency.rank_prefix_length`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.devtools.contracts import verify_decomposition
from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.kcore.decomposition import core_numbers_compact
from repro.core.peel_engines import DEFAULT_ENGINE, get_engine, make_scratch
from repro.obs import names
from repro.obs.instrumentation import maybe_span

__all__ = [
    "FixedKDecomposition",
    "KPDecomposition",
    "kp_core_decomposition",
    "p_numbers_fixed_k",
]


@dataclass(frozen=True)
class FixedKDecomposition:
    """Peeling result for one ``k``: deletion order and p-numbers.

    ``order[i]`` is the i-th vertex deleted by Algorithm 2 at this ``k``
    and ``p_numbers[i]`` its p-number; p-numbers are non-decreasing along
    the order.
    """

    k: int
    order: Sequence[Vertex]
    p_numbers: Sequence[float]

    def pn_map(self) -> dict[Vertex, float]:
        """``{vertex: pn(vertex, k)}`` for every k-core vertex."""
        return dict(zip(self.order, self.p_numbers))

    def __len__(self) -> int:
        return len(self.order)


@dataclass(frozen=True)
class KPDecomposition:
    """Full output of Algorithm 2: one :class:`FixedKDecomposition` per k.

    ``arrays[k]`` exists for every ``k`` in ``1..degeneracy``.
    """

    arrays: Mapping[int, FixedKDecomposition]
    core_numbers: Mapping[Vertex, int]
    degeneracy: int
    # Lazily built {k: pn_map} lookup cache; mutating dict contents is
    # compatible with the frozen dataclass (no attribute rebinding).
    _pn_maps: dict[int, dict[Vertex, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def p_number(self, v: Vertex, k: int) -> float:
        """``pn(v, k, G)``; raises ``KeyError`` if ``v`` is not in the k-core."""
        fixed = self.arrays.get(k)
        if fixed is None:
            raise KeyError(f"no {k}-core in this graph (degeneracy {self.degeneracy})")
        pn_map = self._pn_maps.get(k)
        if pn_map is None:
            pn_map = fixed.pn_map()
            self._pn_maps[k] = pn_map
        try:
            return pn_map[v]
        except KeyError:
            raise KeyError(f"vertex {v!r} is not in the {k}-core") from None


@verify_decomposition
def kp_core_decomposition(
    graph: Graph, *, engine: str = DEFAULT_ENGINE, workers: int = 1
) -> KPDecomposition:
    """Run Algorithm 2: p-numbers of every vertex for every valid ``k``.

    ``engine`` selects the per-``k`` peeling backend
    (:func:`repro.core.peel_engines.available_engines`); every engine
    produces the identical canonical result.  ``workers > 1`` distributes
    the independent per-``k`` peels over a process pool — output is
    identical to the serial run for any worker count.

    Under ``REPRO_VERIFY=1`` the output is re-checked: arrays sorted in
    deletion order, k-cores nested, p-numbers non-increasing in ``k``.
    Under ``REPRO_OBS`` the run records per-round peel/re-key counters
    and a ``kp_decomposition`` span with per-phase children.
    """
    peel = get_engine(engine)
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    with maybe_span(names.DECOMP_SPAN):
        snapshot = CompactAdjacency(graph)
        with maybe_span(names.DECOMP_SPAN_CORE_NUMBERS):
            core, _ = core_numbers_compact(snapshot)
        with maybe_span(names.DECOMP_SPAN_SORT):
            snapshot.sort_neighbors_by_rank_desc(core)
        labels = snapshot.labels
        degeneracy = max(core, default=0)
        arrays: dict[int, FixedKDecomposition] = {}
        with maybe_span(names.DECOMP_SPAN_PEEL):
            if workers > 1 and degeneracy > 1:
                from repro.core.parallel import peel_all_k

                peeled = peel_all_k(
                    snapshot, core, degeneracy, engine=engine, workers=workers
                )
            else:
                scratch = make_scratch(engine, snapshot, core)
                peeled = {
                    k: peel(snapshot, core, k, scratch=scratch)
                    for k in range(1, degeneracy + 1)
                }
            for k in range(1, degeneracy + 1):
                order, p_numbers = peeled[k]
                arrays[k] = FixedKDecomposition(
                    k=k,
                    order=[labels[v] for v in order],
                    p_numbers=p_numbers,
                )
        return KPDecomposition(
            arrays=arrays,
            core_numbers={labels[i]: core[i] for i in range(len(labels))},
            degeneracy=degeneracy,
        )


def p_numbers_fixed_k(
    graph: Graph, k: int, *, engine: str = DEFAULT_ENGINE
) -> dict[Vertex, float]:
    """p-numbers for one ``k`` only (the inner loop of Algorithm 2)."""
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    peel = get_engine(engine)
    snapshot = CompactAdjacency(graph)
    core, _ = core_numbers_compact(snapshot)
    snapshot.sort_neighbors_by_rank_desc(core)
    order, p_numbers = peel(snapshot, core, k)
    labels = snapshot.labels
    return {labels[v]: pn for v, pn in zip(order, p_numbers)}
