"""(k,p)-core decomposition — Algorithm 2 (kpCoreDecom).

For every ``k`` from 1 to the degeneracy ``d(G)``, the decomposition
computes the **p-number** ``pn(v, k)`` of every k-core vertex: the largest
``p`` for which ``v`` is still in the (k,p)-core.  The paper's formulation
peels the k-core in rounds — find the minimum fraction ``p_min``, delete
every vertex whose fraction is dragged to ``<= p_min`` (or whose degree
falls below ``k``), repeat — and the round level at deletion time is the
vertex's p-number.

Implementation notes
--------------------
* The round structure is realized with a lazy min-heap keyed by current
  fraction.  A vertex whose residual degree falls below ``k`` is re-keyed
  with a sentinel below every fraction so it cascades out within the
  current round, exactly as the paper's Line 5 requires.  Stale heap
  entries are recognized because a vertex's key strictly decreases with
  every update.  This gives O(m_k log n) per ``k`` instead of the paper's
  O(n)-per-round scan; the output is identical and the constant factor is
  what pure Python needs.
* Neighbour lists are pre-sorted by descending core number once, so for
  each ``k`` the k-core neighbours of ``v`` are a prefix of its slice
  (:meth:`~repro.graph.compact.CompactAdjacency.rank_prefix_length`).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush, heappop, heapify
from typing import Mapping, Sequence

from repro.devtools.contracts import verify_decomposition
from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.kcore.decomposition import core_numbers_compact
from repro.obs import names
from repro.obs.instrumentation import get_collector, maybe_span

__all__ = [
    "FixedKDecomposition",
    "KPDecomposition",
    "kp_core_decomposition",
    "p_numbers_fixed_k",
]

#: Heap key marking "degree below k: peel within the current round".
_DEGREE_VIOLATION = -1.0


@dataclass(frozen=True)
class FixedKDecomposition:
    """Peeling result for one ``k``: deletion order and p-numbers.

    ``order[i]`` is the i-th vertex deleted by Algorithm 2 at this ``k``
    and ``p_numbers[i]`` its p-number; p-numbers are non-decreasing along
    the order.
    """

    k: int
    order: Sequence[Vertex]
    p_numbers: Sequence[float]

    def pn_map(self) -> dict[Vertex, float]:
        """``{vertex: pn(vertex, k)}`` for every k-core vertex."""
        return dict(zip(self.order, self.p_numbers))

    def __len__(self) -> int:
        return len(self.order)


@dataclass(frozen=True)
class KPDecomposition:
    """Full output of Algorithm 2: one :class:`FixedKDecomposition` per k.

    ``arrays[k]`` exists for every ``k`` in ``1..degeneracy``.
    """

    arrays: Mapping[int, FixedKDecomposition]
    core_numbers: Mapping[Vertex, int]
    degeneracy: int

    def p_number(self, v: Vertex, k: int) -> float:
        """``pn(v, k, G)``; raises ``KeyError`` if ``v`` is not in the k-core."""
        fixed = self.arrays.get(k)
        if fixed is None:
            raise KeyError(f"no {k}-core in this graph (degeneracy {self.degeneracy})")
        for vertex, pn in zip(fixed.order, fixed.p_numbers):
            if vertex == v:
                return pn
        raise KeyError(f"vertex {v!r} is not in the {k}-core")


def _peel_fixed_k(
    snapshot: CompactAdjacency, core: Sequence[int], k: int
) -> tuple[list[int], list[float]]:
    """Peel the k-core at fixed ``k``; return (deletion order, p-numbers).

    ``core`` must be the core numbers of the snapshot and the snapshot's
    neighbour lists must already be sorted by descending core number.
    """
    members = [v for v in range(snapshot.num_vertices) if core[v] >= k]
    if not members:
        return [], []
    indptr, indices = snapshot.indptr, snapshot.indices

    # Residual degree within the k-core, via the sorted-prefix trick.
    deg_s: dict[int, int] = {}
    global_deg: dict[int, int] = {}
    for v in members:
        deg_s[v] = snapshot.rank_prefix_length(v, k, core)
        global_deg[v] = indptr[v + 1] - indptr[v]

    # The divisions below are the canonical float-fraction construction of
    # repro.core.pvalue.fraction_value, inlined because this is the O(m)
    # hot path; global_deg is always >= 1 for k-core members.
    heap: list[tuple[float, int]] = [
        (deg_s[v] / global_deg[v], v) for v in members  # noqa: KP001 hot loop
    ]
    heapify(heap)
    key = {v: deg_s[v] / global_deg[v] for v in members}  # noqa: KP001 hot loop

    alive = set(members)
    order: list[int] = []
    p_numbers: list[float] = []
    level = 0.0
    # Loop-local operation counters (plain int increments, dwarfed by the
    # heap/dict work per iteration); flushed to the collector once, after
    # the loop — the KP007-checked pattern.
    rekeys = 0
    degree_violations = 0
    while heap:
        f, v = heappop(heap)
        # Exact-double inequality: both sides are correctly-rounded doubles
        # of the same rational construction (see repro.core.pvalue).
        if v not in alive or f != key[v]:  # noqa: KP002 stale-entry test
            continue  # already deleted, or a stale (higher) entry
        if f > level:
            level = f
        alive.discard(v)
        order.append(v)
        p_numbers.append(level)
        # Only the prefix of v's slice (neighbours inside the k-core) can
        # still be alive; the slice is sorted by descending core number.
        for ptr in range(indptr[v], indptr[v + 1]):
            u = indices[ptr]
            if core[u] < k:
                break  # sorted prefix exhausted
            if u not in alive:
                continue
            deg_s[u] -= 1
            if deg_s[u] < k:
                new_key = _DEGREE_VIOLATION
                degree_violations += 1
            else:
                new_key = deg_s[u] / global_deg[u]  # noqa: KP001 hot loop
            rekeys += 1
            key[u] = new_key
            heappush(heap, (new_key, u))
    obs = get_collector()
    if obs is not None:
        obs.inc(names.DECOMP_ROUNDS)
        obs.add(names.DECOMP_PEELS, len(order))
        obs.add(names.DECOMP_REKEYS, rekeys)
        obs.add(names.DECOMP_DEGREE_VIOLATIONS, degree_violations)
        obs.observe(names.DECOMP_ARRAY_SIZE, len(order))
    return order, p_numbers


@verify_decomposition
def kp_core_decomposition(graph: Graph) -> KPDecomposition:
    """Run Algorithm 2: p-numbers of every vertex for every valid ``k``.

    Under ``REPRO_VERIFY=1`` the output is re-checked: arrays sorted in
    deletion order, k-cores nested, p-numbers non-increasing in ``k``.
    Under ``REPRO_OBS`` the run records per-round peel/re-key counters
    and a ``kp_decomposition`` span with per-phase children.
    """
    with maybe_span(names.DECOMP_SPAN):
        snapshot = CompactAdjacency(graph)
        with maybe_span(names.DECOMP_SPAN_CORE_NUMBERS):
            core, _ = core_numbers_compact(snapshot)
        with maybe_span(names.DECOMP_SPAN_SORT):
            snapshot.sort_neighbors_by_rank_desc(core)
        labels = snapshot.labels
        degeneracy = max(core, default=0)
        arrays: dict[int, FixedKDecomposition] = {}
        with maybe_span(names.DECOMP_SPAN_PEEL):
            for k in range(1, degeneracy + 1):
                order, p_numbers = _peel_fixed_k(snapshot, core, k)
                arrays[k] = FixedKDecomposition(
                    k=k,
                    order=[labels[v] for v in order],
                    p_numbers=p_numbers,
                )
        return KPDecomposition(
            arrays=arrays,
            core_numbers={labels[i]: core[i] for i in range(len(labels))},
            degeneracy=degeneracy,
        )


def p_numbers_fixed_k(graph: Graph, k: int) -> dict[Vertex, float]:
    """p-numbers for one ``k`` only (the inner loop of Algorithm 2)."""
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    snapshot = CompactAdjacency(graph)
    core, _ = core_numbers_compact(snapshot)
    snapshot.sort_neighbors_by_rank_desc(core)
    order, p_numbers = _peel_fixed_k(snapshot, core, k)
    labels = snapshot.labels
    return {labels[v]: pn for v, pn in zip(order, p_numbers)}
