"""Hierarchy utilities over the (k,p)-core family.

Section IV observes that for a fixed ``k`` the (k,p)-cores are nested as
``p`` grows, and that across parameters ``(k,p)-core ⊆ (k',p')-core``
whenever ``k >= k'`` and ``p >= p'`` (the containment property).  These
helpers expose that structure: the distinct p-levels of a graph for a given
``k``, the nested chain of cores along them, and per-vertex (k, pn) core
profiles — the "(k,p)-core numbers" of a vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.graph.adjacency import Graph, Vertex
from repro.core.decomposition import KPDecomposition, kp_core_decomposition

__all__ = ["PLevel", "p_levels", "nested_cores", "core_profile"]


@dataclass(frozen=True)
class PLevel:
    """One stratum of the fixed-k hierarchy.

    ``vertices`` are the vertices whose p-number equals ``p``; the
    (k, ``p``)-core is the union of this level and every level above it.
    """

    k: int
    p: float
    vertices: frozenset[Vertex]


def p_levels(graph: Graph, k: int, decomposition: KPDecomposition | None = None) -> list[PLevel]:
    """The distinct p-number levels for ``k``, in ascending ``p`` order."""
    decomposition = decomposition or kp_core_decomposition(graph)
    fixed = decomposition.arrays.get(k)
    if fixed is None:
        return []
    grouped: dict[float, set[Vertex]] = {}
    for v, pn in zip(fixed.order, fixed.p_numbers):
        grouped.setdefault(pn, set()).add(v)
    return [
        PLevel(k=k, p=p, vertices=frozenset(members))
        for p, members in sorted(grouped.items())
    ]


def nested_cores(
    graph: Graph, k: int, decomposition: KPDecomposition | None = None
) -> list[tuple[float, set[Vertex]]]:
    """The nested chain ``p -> V(C_{k,p})`` over the distinct p-levels.

    Returned in ascending ``p``; each vertex set strictly contains the next
    (the Fig. 1 picture of (k,p)-cores shrinking inside the k-core).
    """
    levels = p_levels(graph, k, decomposition)
    chain: list[tuple[float, set[Vertex]]] = []
    suffix: set[Vertex] = set()
    for level in reversed(levels):
        suffix |= level.vertices
        chain.append((level.p, set(suffix)))
    chain.reverse()
    return chain


def core_profile(
    graph: Graph, v: Vertex, decomposition: KPDecomposition | None = None
) -> list[tuple[int, float]]:
    """The (k,p)-core numbers of ``v``: ``(k, pn(v, k))`` for each valid k.

    Covers ``k`` from 1 to ``cn(v)``; the p-numbers along the profile are
    generally non-monotone in ``k`` (the paper's "Discussion of KP-Index"
    explains why this forbids a shared vertex order across arrays).
    """
    decomposition = decomposition or kp_core_decomposition(graph)
    profile: list[tuple[int, float]] = []
    for k in range(1, decomposition.core_numbers.get(v, 0) + 1):
        fixed = decomposition.arrays[k]
        profile.append((k, fixed.pn_map()[v]))
    return profile
