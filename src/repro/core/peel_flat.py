"""Flat integer-array peeling engine for Algorithm 2's fixed-k loop.

The bucket engine (:func:`repro.core.peel_engines.peel_fixed_k_bucket`)
is already O(m_k) per ``k``, but it pays Python-object tax everywhere: a
float division per re-key, a ``dict`` level index probed per move, and —
dominating the profile — a per-``k`` ``level_set`` construction that
re-enumerates every candidate fraction ``a / deg_G(v)`` with
``k <= a <= deg_k(v)`` for every ``k`` (O(sum_k m_k) float ops across a
full decomposition).  This module removes all of it:

* **Composite integer keys.**  Each fraction ``a / b`` (``b = deg_G(v)``)
  is encoded as the integer ``a * SCALE // b`` with
  ``SCALE = d_max**2 + 1``.  Two distinct rationals with denominators
  ``<= d_max`` differ by at least ``1 / d_max**2``, so after scaling they
  differ by more than 1 and their floor divisions cannot collide; equal
  rationals obviously floor to the same integer.  Integer-key order
  therefore equals rational order exactly — the same shape of argument
  :mod:`repro.core.pvalue` makes for correctly-rounded doubles, with the
  double spacing replaced by the scaled integer gap.  (See
  :func:`composite_key` / :func:`key_scale`; the soundness test sweeps
  every ``a/b`` pair against :class:`fractions.Fraction` ordering.)
* **One global ladder, built once.**  The union over all ``k`` of the
  candidate fractions of vertex ``v`` is just ``{a / deg_G(v) : 1 <= a <=
  deg_G(v)}`` — ``2m`` candidates in total, independent of ``k``.  The
  :class:`FlatScratch` built once per decomposition stores, for every
  ladder slot, the *rank* of its key among the sorted distinct keys
  (``vli``), plus one exact float per distinct key (``lvl_val``, the same
  correctly-rounded double the other engines emit).  A re-key during any
  fixed-``k`` peel is then two list reads: ``rank = vli[lp[u] + d]``.
* **Bin-sorted drain, no dict, no floats.**  Vertices are parked in
  per-rank chains threaded through one preallocated two-array arena
  (``arena_vertex`` / ``arena_next``), the flat-array generalization of
  Batagelj–Zaveršnik's ``vert``/``pos``/``bin_start`` layout: BZ's O(1)
  swap trick assumes keys step down one bin at a time (true for core
  numbers), while a fixed-``k`` re-key can drop a vertex several bins at
  once, so the engine re-parks moved vertices and filters stale chain
  entries by comparing the parked rank against the vertex's current one
  (``rank_of``).  Re-parks are **batched per round**: a cascade often
  decrements the same vertex once per dying neighbour, but only its rank
  at the end of the round matters to the (monotone) cursor, so the drain
  stamps touched vertices into a dirty list and parks each exactly once
  when the round closes — intermediate bins would only add stale entries
  for the seed walk to filter (on the benchmark graph this cuts arena
  traffic to under a third).  Chain heads are epoch-stamped so nothing
  is cleared between ``k``'s.  Keys only ever decrease, hence a vertex
  is parked at most once per rank and a stale entry can never be
  mistaken for a live one.

The hot arrays are plain Python ``list``s rather than ``array('l')``:
``array`` subscripting boxes a fresh ``int`` per read in CPython, while
lists hand back the cached small-int objects — measurably faster in the
interpreter loop that dominates here.  The memory layout is still flat
and integer-only; nothing in the drain hashes or allocates per edge.

``engine="flat-numpy"`` (:func:`peel_fixed_k_flat_numpy`) vectorizes the
scratch build — the initial degree/key computation for every ladder
slot, binned into ranks by one ``numpy.unique`` — and the per-``k``
member scan; the cascade drain is shared with the pure engine.  (The
per-``k`` prefix degrees deliberately stay on the shared incremental
sweep, and initial ranks on the park loop's inline ladder reads: both
vectorized alternatives measured slower, see ``_setup_numpy``.)  numpy
stays an optional dependency: the import is guarded and the engine
silently degrades to the pure-Python scratch when it is absent,
producing identical output.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.errors import ParameterError
from repro.graph.compact import CompactAdjacency
from repro.obs import names
from repro.obs.instrumentation import get_collector
from repro.obs.trace import get_tracer

try:  # optional acceleration; the pure-Python path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None  # type: ignore[assignment]

__all__ = [
    "FlatScratch",
    "composite_key",
    "have_numpy",
    "key_scale",
    "peel_fixed_k_flat",
    "peel_fixed_k_flat_numpy",
]

#: Largest ``d_max`` for which ``a * SCALE`` fits an int64 (``d_max**3``
#: headroom); beyond it the numpy key build falls back to Python ints.
_NUMPY_KEY_DMAX_LIMIT = 2_000_000


def have_numpy() -> bool:
    """Whether the optional numpy backend is importable in this process."""
    return _np is not None


def key_scale(d_max: int) -> int:
    """The composite-key scale for a graph of maximum degree ``d_max``.

    ``d_max**2 + 1`` makes the scaled gap between any two distinct
    rationals with denominators ``<= d_max`` strictly greater than 1, so
    floor division cannot merge them (see the module docstring).
    """
    return d_max * d_max + 1


def composite_key(numerator: int, denominator: int, scale: int) -> int:
    """Order-preserving integer encoding of ``numerator / denominator``.

    For fractions with denominators ``<= d_max`` and
    ``scale = key_scale(d_max)``, ``composite_key`` is monotone and
    injective up to rational equality: ``key(a1/b1) < key(a2/b2)`` iff
    ``a1/b1 < a2/b2`` and keys are equal iff the rationals are.
    """
    if denominator < 1:
        raise ParameterError(
            f"fraction denominator must be >= 1, got {denominator}"
        )
    return numerator * scale // denominator


class FlatScratch:
    """Once-per-decomposition state shared by every fixed-``k`` flat peel.

    Building the scratch costs O(m + L log L) (``L`` = distinct fraction
    levels, ``L <= 2m``); every per-``k`` structure it hands out is either
    reused storage (epoch-stamped chain heads, the parking arena) or an
    O(n) copy.  The prefix-length array ``plen`` (``plen[v]`` = number of
    neighbours of ``v`` with core number ``>= k``) is maintained
    incrementally as ``k`` advances — the driver peels ``k`` in ascending
    order, so each edge is touched once across the whole decomposition —
    and rebuilt by binary search if a caller jumps backwards.
    """

    __slots__ = (
        "snapshot",
        "core",
        "n",
        "iptr",
        "ind",
        "gdeg",
        "dmax",
        "scale",
        "base",
        "lp",
        "vli",
        "lvl_val",
        "num_levels",
        "corder",
        "sizes",
        "core_bucket",
        "plen",
        "cur_k",
        "rank_of",
        "bin_head",
        "bin_epoch",
        "arena_vertex",
        "arena_next",
        "epoch",
        "touch_stamp",
        "stamp",
        "core_np",
    )

    def __init__(
        self,
        snapshot: CompactAdjacency,
        core: Sequence[int],
        *,
        use_numpy: bool = False,
    ) -> None:
        self.snapshot = snapshot
        self.core = core
        n = snapshot.num_vertices
        self.n = n
        iptr = list(snapshot.indptr)
        self.iptr = iptr
        self.ind = list(snapshot.indices)
        gdeg = [iptr[v + 1] - iptr[v] for v in range(n)]
        self.gdeg = gdeg
        dmax = max(gdeg, default=0)
        self.dmax = dmax
        self.scale = key_scale(dmax)
        base = [0] * (n + 1)
        for v in range(n):
            base[v + 1] = base[v] + gdeg[v]
        self.base = base
        self.lp = [base[v] - 1 for v in range(n)]
        if use_numpy and _np is not None and dmax <= _NUMPY_KEY_DMAX_LIMIT:
            self._build_ladder_numpy()
        else:
            self._build_ladder_pure()
            self.core_np = None
        degeneracy = max(core, default=0)
        counts = [0] * (degeneracy + 2)
        for c in core:
            counts[c] += 1
        sizes = [0] * (degeneracy + 2)
        running = 0
        for k in range(degeneracy, -1, -1):
            running += counts[k]
            sizes[k] = running
        self.sizes = sizes
        self.corder = sorted(range(n), key=lambda v: (-core[v], v))
        core_bucket: list[list[int]] = [[] for _ in range(degeneracy + 1)]
        for v in range(n):
            core_bucket[core[v]].append(v)
        self.core_bucket = core_bucket
        # plen at k=1 is the plain degree: a vertex has core number 0
        # exactly when it is isolated, so every neighbour has core >= 1.
        self.plen = gdeg[:]
        self.cur_k = 1
        # Reused per-k drain state; rank_of is self-cleaning (stale chain
        # entries are filtered against it), chain heads are epoch-stamped.
        # Liveness needs no array of its own: the drain's working degrees
        # are clamped to k-1 on kill, so "deg_s[u] > k-1" doubles as the
        # alive test — one list read instead of two per edge event.
        self.rank_of = [0] * n
        length = self.num_levels
        self.bin_head = [-1] * length
        self.bin_epoch = [0] * length
        capacity = base[n] + n + 1  # initial parks + one park per re-key
        self.arena_vertex = [0] * capacity
        self.arena_next = [0] * capacity
        self.epoch = 0
        # Per-round dirty-list dedup: ``touch_stamp[v]`` holds the stamp
        # of the last round that decremented ``v``; ``stamp`` increases
        # monotonically across every round of every peel, so stale stamps
        # never collide and nothing is ever cleared.
        self.touch_stamp = [0] * n
        self.stamp = 0

    # -- ladder construction ------------------------------------------

    def _build_ladder_pure(self) -> None:
        """Keys, ranks and exact float values for every ladder slot."""
        scale = self.scale
        keys: list[int] = []
        vals: list[float] = []
        kext = keys.extend
        vext = vals.extend
        for gd in self.gdeg:
            if gd:
                kext([a * scale // gd for a in range(1, gd + 1)])
                # Canonical float-fraction construction (pvalue.fraction_value
                # inlined for the O(m) setup sweep): one correctly-rounded
                # double per candidate, the exact value the engines emit.
                vext([a / gd for a in range(1, gd + 1)])  # noqa: KP001
        representative = dict(zip(keys, vals))
        distinct = sorted(representative)
        self.num_levels = len(distinct)
        rank = {key: i for i, key in enumerate(distinct)}
        self.vli = list(map(rank.__getitem__, keys))
        self.lvl_val = list(map(representative.__getitem__, distinct))

    def _build_ladder_numpy(self) -> None:
        """Vectorized ladder build plus cached per-edge numpy views."""
        assert _np is not None
        np = _np
        core_np = np.asarray(self.core, dtype=np.int64)
        iptr_np = np.asarray(self.iptr, dtype=np.int64)
        gdeg_np = np.diff(iptr_np)
        base_np = iptr_np[:-1].copy()
        total = int(iptr_np[-1])
        # Ladder numerators: slot i of vertex v holds a = i - base[v] + 1.
        numerators = np.arange(total, dtype=np.int64) - np.repeat(
            base_np, gdeg_np
        ) + 1
        denominators = np.repeat(gdeg_np, gdeg_np)
        keys = numerators * np.int64(self.scale) // denominators
        distinct, first_slot, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        self.num_levels = int(distinct.size)
        # One exact double per distinct key — float64 division is the same
        # correctly-rounded result CPython's ``a / b`` produces.
        level_values = (
            numerators[first_slot].astype(np.float64)
            / denominators[first_slot].astype(np.float64)
        )
        self.vli = inverse.tolist()
        self.lvl_val = level_values.tolist()
        self.core_np = core_np

    # -- prefix-length maintenance ------------------------------------

    def prefix_lengths(self, k: int) -> list[int]:
        """``plen`` positioned at ``k`` (incremental forward, rebuilt back).

        Forward steps retire the vertices of one core-number class at a
        time: moving ``k -> k+1`` subtracts, for every vertex ``u`` with
        ``core(u) == k``, one from each neighbour's prefix length — each
        adjacency slot is walked at most once over a full ascending
        sweep.  A backward jump (out-of-order caller) falls back to the
        snapshot's per-vertex binary search.
        """
        if k < self.cur_k:
            self._rebuild_plen(k)
            return self.plen
        iptr, ind, plen = self.iptr, self.ind, self.plen
        while self.cur_k < k:
            for u in self.core_bucket[self.cur_k]:
                for w in ind[iptr[u] : iptr[u + 1]]:
                    plen[w] -= 1
            self.cur_k += 1
        return plen

    def _rebuild_plen(self, k: int) -> None:
        snapshot, core, plen = self.snapshot, self.core, self.plen
        for v in self.members(k):
            plen[v] = snapshot.rank_prefix_length(v, k, core)
        self.cur_k = k

    def members(self, k: int) -> list[int]:
        """Vertices of the k-core (any order; the drain does not care)."""
        if k >= len(self.sizes):
            return []
        return self.corder[: self.sizes[k]]


def _check_scratch(
    scratch: FlatScratch | None,
    snapshot: CompactAdjacency,
    core: Sequence[int],
    use_numpy: bool,
) -> FlatScratch:
    if scratch is None:
        return FlatScratch(snapshot, core, use_numpy=use_numpy)
    if not isinstance(scratch, FlatScratch):
        raise ParameterError(
            f"flat engines expect a FlatScratch, got {type(scratch).__name__}"
        )
    if scratch.snapshot is not snapshot:
        raise ParameterError(
            "scratch was built for a different snapshot; build one "
            "FlatScratch per (snapshot, core) pair"
        )
    return scratch


def peel_fixed_k_flat(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    k: int,
    *,
    scratch: Any | None = None,
) -> tuple[list[int], list[float]]:
    """Flat integer-array engine; see the module docstring.

    ``core`` must be the core numbers of the snapshot and the snapshot's
    neighbour lists must already be sorted by descending core number.
    Pass a shared :class:`FlatScratch` (as the decomposition driver does)
    to amortize the global ladder build across every ``k``.
    """
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    state = _check_scratch(scratch, snapshot, core, use_numpy=False)
    return _peel(state, k, "flat")


def peel_fixed_k_flat_numpy(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    k: int,
    *,
    scratch: Any | None = None,
) -> tuple[list[int], list[float]]:
    """numpy-accelerated flat engine (identical output, optional numpy).

    Vectorizes the scratch build, member scan and initial binning when
    numpy is importable; otherwise runs the pure-Python scratch path —
    the drain and the emitted ``(order, p_numbers)`` are byte-identical
    either way.
    """
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    state = _check_scratch(scratch, snapshot, core, use_numpy=True)
    return _peel(state, k, "flat-numpy")


def _setup_pure(
    state: FlatScratch, k: int
) -> tuple[list[int], list[int], list[int]]:
    """(members, plen, deg_s) via the incremental scratch.

    Initial ranks are left to the park loop (one ladder read per member
    beats materializing an intermediate list).
    """
    members = state.members(k)
    if not members:
        return members, [], []
    plen = state.prefix_lengths(k)
    return members, plen, plen[:]


def _setup_numpy(
    state: FlatScratch, k: int
) -> tuple[list[int], list[int], list[int]]:
    """Vectorized member scan; prefix degrees stay incremental.

    Recomputing prefix degrees per ``k`` with a vectorized ``bincount``
    costs O(2m) *per k* and loses to the O(changed edges) incremental
    sweep on every dataset tried, so that path is shared with the pure
    engine; likewise a vectorized initial-rank gather (one ndarray
    round-trip per ``k``) measures slower than the park loop's inline
    ladder reads, so initial ranks are left to it.
    """
    assert _np is not None and state.core_np is not None
    member_ids = _np.flatnonzero(state.core_np >= k)
    if member_ids.size == 0:
        return [], [], []
    plen = state.prefix_lengths(k)
    return member_ids.tolist(), plen, plen[:]


def _peel(
    state: FlatScratch, k: int, engine_label: str
) -> tuple[list[int], list[float]]:
    """Shared drain: rounds walk the rank cursor, cascades re-park."""
    # Collector/tracer fetched once per call, never inside the peel loop
    # (KP007 discipline); all recording happens after the drain.
    obs = get_collector()
    tracer = get_tracer()
    trace_start = time.perf_counter() if tracer is not None else 0.0
    if state.core_np is not None:
        members, plen, deg_s = _setup_numpy(state, k)
    else:
        members, plen, deg_s = _setup_pure(state, k)
    if not members:
        return [], []
    # Local bindings for the interpreter loop (every name below is read
    # O(m_k) times).
    iptr, ind = state.iptr, state.ind
    vli, lp, lvl_val = state.vli, state.lp, state.lvl_val
    rank_of = state.rank_of
    bin_head, bin_epoch = state.bin_head, state.bin_epoch
    arena_vertex, arena_next = state.arena_vertex, state.arena_next
    state.epoch += 1
    epoch = state.epoch
    # Every k-core member starts with deg_s[v] = plen[v] >= k > k-1, so
    # "deg_s[v] > k-1" is true exactly for the not-yet-killed members: no
    # separate alive array, and killing is one clamp to k-1.
    tail = 0
    rank_min = state.num_levels
    for v in members:
        r = vli[lp[v] + deg_s[v]]
        rank_of[v] = r
        if bin_epoch[r] != epoch:
            bin_epoch[r] = epoch
            bin_head[r] = -1
        arena_vertex[tail] = v
        arena_next[tail] = bin_head[r]
        bin_head[r] = tail
        tail += 1
        if r < rank_min:
            rank_min = r
    members_n = len(members)
    order: list[int] = []
    p_numbers: list[float] = []
    order_extend = order.extend
    pn_extend = p_numbers.extend
    remaining = members_n
    cur = rank_min
    stack: list[int] = []
    stack_append = stack.append
    stack_pop = stack.pop
    dirty: list[int] = []
    dirty_append = dirty.append
    tstamp = state.touch_stamp
    stamp = state.stamp
    km1 = k - 1
    # Loop-local accumulators, flushed to the collector after the loop
    # (KP007); everything else per round is index arithmetic.
    rank_skips = 0
    seeds_total = 0
    while remaining:
        # Advance to the next epoch-stamped rank.  Every surviving vertex
        # sits in a chain stamped this epoch at its current rank (the
        # round-end park below guarantees it), so while anything remains
        # the walk terminates before running off the ladder.
        start = cur
        while bin_epoch[cur] != epoch:
            cur += 1
        rank_skips += cur - start
        # Seed a round: consume the chain parked at the cursor rank,
        # filtering entries whose vertex died or re-parked lower since.
        node = bin_head[cur]
        while node >= 0:
            v = arena_vertex[node]
            node = arena_next[node]
            if deg_s[v] > km1 and rank_of[v] == cur:
                deg_s[v] = km1
                stack_append(v)
        if not stack:
            cur += 1
            rank_skips += 1
            continue
        stamp += 1
        seeds_total += len(stack)
        round_buf = stack[:]
        # Cascade: a deletion drags neighbours whose rank falls to <= cur
        # (or whose degree falls below k) into the same round — the
        # paper's Line 5, with the exact fraction comparison replaced by
        # an integer rank comparison (order-isomorphic by construction).
        # Survivors are not re-parked here: the first decrement stamps
        # them into ``dirty`` and the round-end sweep parks each once, at
        # its final rank.
        while stack:
            v = stack_pop()
            pv = iptr[v]
            for u in ind[pv : pv + plen[v]]:
                d = deg_s[u]
                if d > km1:
                    d -= 1
                    if d > km1:
                        if vli[lp[u] + d] > cur:
                            deg_s[u] = d
                            if tstamp[u] != stamp:
                                tstamp[u] = stamp
                                dirty_append(u)
                            continue
                    deg_s[u] = km1
                    stack_append(u)
                    round_buf.append(u)
        for u in dirty:
            d = deg_s[u]
            if d > km1:
                r = vli[lp[u] + d]
                rank_of[u] = r
                if bin_epoch[r] != epoch:
                    bin_epoch[r] = epoch
                    bin_head[r] = -1
                arena_vertex[tail] = u
                arena_next[tail] = bin_head[r]
                bin_head[r] = tail
                tail += 1
        del dirty[:]
        # Canonical emission: ids sorted within the round, levels strictly
        # increasing between rounds (the cursor is monotone).
        round_buf.sort()
        order_extend(round_buf)
        pn_extend([lvl_val[cur]] * len(round_buf))  # noqa: KP006 per round
        remaining -= len(round_buf)
        cur += 1
    state.stamp = stamp
    if obs is not None:
        # moves = round-end re-parks (deduped: one per touched vertex per
        # round); rekeys adds the cascade kills, whose thresholds were
        # also recomputed before they dropped out.
        moves = tail - members_n
        obs.inc(names.DECOMP_ROUNDS)
        obs.add(names.DECOMP_PEELS, members_n)
        obs.add(names.DECOMP_REKEYS, moves + members_n - seeds_total)
        obs.add(names.DECOMP_FLAT_MOVES, moves)
        obs.add(names.DECOMP_FLAT_RANK_SKIPS, rank_skips)
        obs.observe(names.DECOMP_FLAT_LEVELS, state.num_levels)
        obs.observe(names.DECOMP_ARRAY_SIZE, members_n)
    if tracer is not None:
        tracer.record(
            names.TRACE_PEEL_FIXED_K,
            trace_start,
            time.perf_counter(),
            k=k,
            engine=engine_label,
            vertices=members_n,
        )
    return order, p_numbers
