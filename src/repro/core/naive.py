"""Reference (naive) implementations used as correctness oracles.

These follow the definitions as literally as possible with no attention to
efficiency.  The optimized algorithms in :mod:`repro.core` are checked
against them in unit and property tests; nothing here should be used on
large graphs.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.core.pvalue import check_p, fraction_threshold, fraction_value

__all__ = [
    "naive_kp_core_vertices",
    "naive_p_number",
    "naive_p_numbers_fixed_k",
    "naive_core_numbers",
]


def naive_kp_core_vertices(graph: Graph, k: int, p: float) -> set[Vertex]:
    """(k,p)-core by fixpoint iteration straight from Definition 3.

    Start from all vertices; while any member violates the degree or
    fraction constraint, drop every violator simultaneously.
    """
    if k < 0:
        raise ParameterError(f"degree threshold k must be >= 0, got {k}")
    check_p(p)
    members = set(graph.vertices())
    changed = True
    while changed and members:
        changed = False
        violators = []
        for v in members:
            inside = sum(1 for w in graph.neighbors(v) if w in members)
            threshold = max(k, fraction_threshold(p, graph.degree(v)))
            if inside < threshold:
                violators.append(v)
        if violators:
            members.difference_update(violators)
            changed = True
    return members


def naive_p_number(graph: Graph, v: Vertex, k: int) -> float | None:
    """``pn(v, k, G)`` by scanning candidate p values from above.

    Candidate p-numbers are fractions ``a / deg(w, G)`` for graph vertices
    ``w``; the p-number of ``v`` is the largest candidate whose (k,p)-core
    still contains ``v``.  Returns ``None`` when ``v`` is not even in the
    (k,0)-core (the k-core).
    """
    if v not in naive_kp_core_vertices(graph, k, 0.0):
        return None
    candidates = sorted(
        {
            fraction_value(a, graph.degree(w))
            for w in graph.vertices()
            if graph.degree(w) > 0
            for a in range(0, graph.degree(w) + 1)
        },
        reverse=True,
    )
    for p in candidates:
        if v in naive_kp_core_vertices(graph, k, p):
            return p
    return None


def naive_p_numbers_fixed_k(graph: Graph, k: int) -> dict[Vertex, float]:
    """p-numbers of every k-core vertex via :func:`naive_p_number`."""
    result = {}
    for v in naive_kp_core_vertices(graph, k, 0.0):
        pn = naive_p_number(graph, v, k)
        assert pn is not None  # v is in the k-core by construction
        result[v] = pn
    return result


def naive_core_numbers(graph: Graph) -> dict[Vertex, int]:
    """Core numbers by repeatedly computing k-cores from scratch."""
    result = {v: 0 for v in graph.vertices()}
    k = 1
    remaining = set(graph.vertices())
    while remaining:
        survivors = naive_kp_core_vertices(graph, k, 0.0)
        for v in remaining - survivors:
            result[v] = k - 1
        remaining = survivors
        k += 1
    return result
