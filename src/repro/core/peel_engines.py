"""Peeling engines for Algorithm 2's fixed-k inner loop.

Four interchangeable engines compute the same ``(order, p_numbers)``
pair for one ``k``:

* :func:`peel_fixed_k_heap` — the original lazy min-heap engine,
  O(m_k log n_k) per ``k``.  Every neighbour decrement pushes a fresh
  ``(fraction, vertex)`` entry; stale entries are skipped on pop.
* :func:`peel_fixed_k_bucket` — a Batagelj–Zaveršnik-style bucket queue,
  O(m_k) per ``k``.  At fixed ``k`` the only keys a vertex ``v`` can ever
  take are the fractions ``a / deg_G(v)`` with ``k <= a <= deg_k(v)``
  (below ``a = k`` the degree constraint deletes it), so the candidate
  level set is finite and at most ``m_k`` large.  Vertices live in an
  array of buckets indexed by sorted level; a peel round drains the
  lowest non-empty bucket and cascades deletions with a plain stack —
  no heap re-keys, no log factor.
* :func:`~repro.core.peel_flat.peel_fixed_k_flat` (the default) and its
  optional numpy sibling ``flat-numpy`` — the bucket discipline rebuilt
  on flat integer arrays: fraction levels become composite integer keys,
  the per-``k`` level set becomes one global ladder built once per
  decomposition, and the drain runs on index arithmetic alone (no dict
  hashing, no float division).  See :mod:`repro.core.peel_flat`.

Exact-double soundness of the bucket keys: every key is the correctly
rounded double of a rational ``a/b`` with ``b <= d_max``.  Two distinct
such rationals differ by at least ``1/d_max^2``, far above double spacing
on [0, 1] for any graph this library can hold, so float ordering equals
rational ordering and the float-keyed level index is collision-free (the
same argument :mod:`repro.core.pvalue` makes for fraction comparisons —
and the same gap bound that makes the flat engine's integer keys exact).

Every engine emits the **canonical deletion order**: rounds (maximal runs
of one p-number, which strictly increases between rounds) appear in peel
order, and vertices within a round are sorted by internal id.  The
within-round order of the paper's Algorithm 2 is unspecified — every
vertex of a round shares one p-number — so canonicalizing it makes the
engines byte-comparable and the output machine-independent.

Engines accept an optional engine-specific ``scratch`` object
(:func:`make_scratch`) holding state that is valid for every ``k`` of one
``(snapshot, core)`` pair; the decomposition driver passes one so the
serial full decomposition stops re-allocating O(n) containers per ``k``.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import Any, Protocol, Sequence

from repro.errors import ParameterError
from repro.graph.compact import CompactAdjacency
from repro.core.peel_flat import (
    FlatScratch,
    peel_fixed_k_flat,
    peel_fixed_k_flat_numpy,
)
from repro.obs import names
from repro.obs.instrumentation import get_collector
from repro.obs.trace import get_tracer

__all__ = [
    "BucketScratch",
    "DEFAULT_ENGINE",
    "ENGINES",
    "PeelEngine",
    "available_engines",
    "get_engine",
    "make_scratch",
    "peel_fixed_k_bucket",
    "peel_fixed_k_heap",
]


class PeelEngine(Protocol):
    """Signature shared by every engine: ``(snapshot, core, k)`` to
    ``(deletion order, p-numbers)`` over internal vertex ids.  The
    snapshot's neighbour lists must already be sorted by descending core
    number (:meth:`~repro.graph.compact.CompactAdjacency.sort_neighbors_by_rank_desc`).
    ``scratch`` optionally carries reusable cross-``k`` state from
    :func:`make_scratch`; engines without one ignore it.
    """

    def __call__(
        self,
        snapshot: CompactAdjacency,
        core: Sequence[int],
        k: int,
        *,
        scratch: Any | None = None,
    ) -> tuple[list[int], list[float]]: ...

#: Heap key marking "degree below k: peel within the current round".
_DEGREE_VIOLATION = -1.0


def _canonicalize_rounds(order: list[int], p_numbers: list[float]) -> None:
    """Sort each equal-p-number run of ``order`` by internal id, in place.

    Rounds are maximal runs of one p-number (levels strictly increase
    between rounds), so this never reorders across rounds and leaves
    ``p_numbers`` untouched.
    """
    n = len(order)
    start = 0
    for i in range(1, n + 1):
        # Exact-double level grouping; see repro.core.pvalue.
        if i < n and p_numbers[i] == p_numbers[start]:  # noqa: KP002
            continue
        if i - start > 1:
            chunk = order[start:i]
            chunk.sort()
            order[start:i] = chunk
        start = i


def peel_fixed_k_heap(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    k: int,
    *,
    scratch: Any | None = None,
) -> tuple[list[int], list[float]]:
    """Lazy min-heap engine; see the module docstring.

    ``core`` must be the core numbers of the snapshot and the snapshot's
    neighbour lists must already be sorted by descending core number.
    The heap engine keeps no cross-``k`` state — ``scratch`` is accepted
    for signature uniformity and ignored.
    """
    del scratch  # no reusable state: the heap is rebuilt per call anyway
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    # Tracer fetched once, checked per call — never inside the peel loop
    # (the KP007 discipline extends to trace events).
    tracer = get_tracer()
    trace_start = time.perf_counter() if tracer is not None else 0.0
    members = [v for v in range(snapshot.num_vertices) if core[v] >= k]
    if not members:
        return [], []
    indptr, indices = snapshot.indptr, snapshot.indices

    # Residual degree within the k-core, via the sorted-prefix trick.
    deg_s: dict[int, int] = {}
    global_deg: dict[int, int] = {}
    for v in members:
        deg_s[v] = snapshot.rank_prefix_length(v, k, core)
        global_deg[v] = indptr[v + 1] - indptr[v]

    # The divisions below are the canonical float-fraction construction of
    # repro.core.pvalue.fraction_value, inlined because this is the O(m)
    # hot path; global_deg is always >= 1 for k-core members.
    heap: list[tuple[float, int]] = [
        (deg_s[v] / global_deg[v], v) for v in members  # noqa: KP001 hot loop
    ]
    heapify(heap)
    key = {v: deg_s[v] / global_deg[v] for v in members}  # noqa: KP001 hot loop

    alive = set(members)
    order: list[int] = []
    p_numbers: list[float] = []
    level = 0.0
    # Loop-local operation counters (plain int increments, dwarfed by the
    # heap/dict work per iteration); flushed to the collector once, after
    # the loop — the KP007-checked pattern.
    rekeys = 0
    degree_violations = 0
    while heap:
        f, v = heappop(heap)
        # Exact-double inequality: both sides are correctly-rounded doubles
        # of the same rational construction (see repro.core.pvalue).
        if v not in alive or f != key[v]:  # noqa: KP002 stale-entry test
            continue  # already deleted, or a stale (higher) entry
        if f > level:
            level = f
        alive.discard(v)
        order.append(v)
        p_numbers.append(level)
        # Only the prefix of v's slice (neighbours inside the k-core) can
        # still be alive; the slice is sorted by descending core number.
        for ptr in range(indptr[v], indptr[v + 1]):
            u = indices[ptr]
            if core[u] < k:
                break  # sorted prefix exhausted
            if u not in alive:
                continue
            deg_s[u] -= 1
            if deg_s[u] < k:
                new_key = _DEGREE_VIOLATION
                degree_violations += 1
            else:
                new_key = deg_s[u] / global_deg[u]  # noqa: KP001 hot loop
            rekeys += 1
            key[u] = new_key
            heappush(heap, (new_key, u))
    _canonicalize_rounds(order, p_numbers)
    obs = get_collector()
    if obs is not None:
        obs.inc(names.DECOMP_ROUNDS)
        obs.add(names.DECOMP_PEELS, len(order))
        obs.add(names.DECOMP_REKEYS, rekeys)
        obs.add(names.DECOMP_DEGREE_VIOLATIONS, degree_violations)
        obs.observe(names.DECOMP_ARRAY_SIZE, len(order))
    if tracer is not None:
        tracer.record(
            names.TRACE_PEEL_FIXED_K,
            trace_start,
            time.perf_counter(),
            k=k,
            engine="heap",
            vertices=len(order),
        )
    return order, p_numbers


class BucketScratch:
    """Reusable cross-``k`` buffers for :func:`peel_fixed_k_bucket`.

    The bucket engine's per-``k`` state is four O(n) arrays, the level
    set/index, and the bucket lists.  Called 1..degeneracy times by the
    serial decomposition driver, re-allocating them per call is pure
    churn: every array is either fully rewritten for the members before
    it is read (``deg_s``/``global_deg``/``bucket_of``), self-cleaning
    (``alive`` — every member is dead when a peel returns), or explicitly
    cleared here (the level containers; bucket lists can keep stale
    entries of cascaded vertices, so the used prefix is re-cleared on
    loan).
    """

    __slots__ = (
        "snapshot",
        "deg_s",
        "global_deg",
        "alive",
        "bucket_of",
        "level_set",
        "level_index",
        "buckets",
        "stack",
        "round_buf",
    )

    def __init__(self, snapshot: CompactAdjacency) -> None:
        n = snapshot.num_vertices
        self.snapshot = snapshot
        self.deg_s = [0] * n
        self.global_deg = [1] * n
        self.alive = bytearray(n)
        self.bucket_of = [-1] * n
        self.level_set: set[float] = set()
        self.level_index: dict[float, int] = {}
        self.buckets: list[list[int]] = []
        self.stack: list[int] = []
        self.round_buf: list[int] = []

    def lend_buckets(self, count: int) -> list[list[int]]:
        """The first ``count`` bucket lists, grown on demand and cleared."""
        buckets = self.buckets
        grow = count - len(buckets)
        if grow > 0:
            buckets.extend([] for _ in range(grow))
        for i in range(count):
            del buckets[i][:]
        return buckets


def peel_fixed_k_bucket(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    k: int,
    *,
    scratch: Any | None = None,
) -> tuple[list[int], list[float]]:
    """Bucket-queue engine; see the module docstring.

    ``core`` must be the core numbers of the snapshot and the snapshot's
    neighbour lists must already be sorted by descending core number.
    Passing a shared :class:`BucketScratch` (as the decomposition driver
    does) reuses the O(n) working arrays across consecutive ``k``.
    """
    if k < 1:
        raise ParameterError(f"degree threshold k must be >= 1, got {k}")
    # Tracer fetched once, checked per call — never inside the peel loop
    # (the KP007 discipline extends to trace events).
    tracer = get_tracer()
    trace_start = time.perf_counter() if tracer is not None else 0.0
    members = [v for v in range(snapshot.num_vertices) if core[v] >= k]
    if not members:
        return [], []
    if scratch is None:
        scratch = BucketScratch(snapshot)
    elif not isinstance(scratch, BucketScratch):
        raise ParameterError(
            "the bucket engine expects a BucketScratch, got "
            f"{type(scratch).__name__}"
        )
    elif scratch.snapshot is not snapshot:
        raise ParameterError(
            "scratch was built for a different snapshot; build one "
            "BucketScratch per snapshot"
        )
    indptr, indices = snapshot.indptr, snapshot.indices

    # Flat arrays indexed by internal id (only member slots are used, and
    # every member slot is written below before it is read): list
    # indexing beats dict hashing in the cascade loop.
    deg_s = scratch.deg_s
    global_deg = scratch.global_deg
    alive = scratch.alive
    bucket_of = scratch.bucket_of
    for v in members:
        deg_s[v] = snapshot.rank_prefix_length(v, k, core)
        global_deg[v] = indptr[v + 1] - indptr[v]
        alive[v] = 1

    # Candidate levels: every key vertex v can ever take is a/deg_G(v)
    # with k <= a <= deg_k(v) — below a = k the degree constraint deletes
    # it before its fraction matters.  Collect, sort, index.
    level_set = scratch.level_set
    level_set.clear()
    for v in members:
        gd = global_deg[v]
        for a in range(k, deg_s[v] + 1):
            level_set.add(a / gd)  # noqa: KP001 hot setup
    levels = sorted(level_set)
    level_index = scratch.level_index
    level_index.clear()
    for i, f in enumerate(levels):
        level_index[f] = i

    buckets = scratch.lend_buckets(len(levels))
    for v in members:
        b = level_index[deg_s[v] / global_deg[v]]  # noqa: KP001 hot setup
        bucket_of[v] = b
        buckets[b].append(v)

    order: list[int] = []
    p_numbers: list[float] = []
    remaining = len(members)
    cur = 0
    # Reused across rounds so the while-loop never allocates containers.
    stack = scratch.stack
    round_buf = scratch.round_buf
    # Loop-local operation counters, flushed after the loop (KP007).
    bucket_scans = 0
    rekeys = 0
    degree_violations = 0
    bucket_moves = 0
    while remaining:
        # Seed a round: drain the current bucket, skipping entries whose
        # vertex moved to a lower bucket (bucket_of mismatch) or died.
        bucket = buckets[cur]
        while bucket:
            v = bucket.pop()
            if alive[v] and bucket_of[v] == cur:
                alive[v] = 0
                stack.append(v)
        if not stack:
            cur += 1
            bucket_scans += 1
            continue
        level = levels[cur]
        # Cascade: a deletion drags neighbours whose fraction falls to
        # <= level (or whose degree falls below k) into the same round,
        # inheriting its p-number — the paper's Line 5.
        while stack:
            v = stack.pop()
            round_buf.append(v)
            # Only the prefix of v's slice (neighbours inside the k-core)
            # can still be alive; sorted by descending core number.
            for ptr in range(indptr[v], indptr[v + 1]):
                u = indices[ptr]
                if core[u] < k:
                    break  # sorted prefix exhausted
                if not alive[u]:
                    continue
                rekeys += 1
                d = deg_s[u] - 1
                deg_s[u] = d
                if d < k:
                    degree_violations += 1
                    alive[u] = 0
                    stack.append(u)
                    continue
                new_key = d / global_deg[u]  # noqa: KP001 hot loop
                if new_key <= level:
                    alive[u] = 0
                    stack.append(u)
                else:
                    b = level_index[new_key]
                    bucket_of[u] = b
                    buckets[b].append(u)
                    bucket_moves += 1
        # Rounds come out canonical directly: strictly increasing levels,
        # ids sorted within the round.
        round_buf.sort()
        for v in round_buf:
            order.append(v)
            p_numbers.append(level)
        remaining -= len(round_buf)
        del round_buf[:]
    obs = get_collector()
    if obs is not None:
        obs.inc(names.DECOMP_ROUNDS)
        obs.add(names.DECOMP_PEELS, len(order))
        obs.add(names.DECOMP_REKEYS, rekeys)
        obs.add(names.DECOMP_DEGREE_VIOLATIONS, degree_violations)
        obs.add(names.DECOMP_BUCKET_SCANS, bucket_scans)
        obs.add(names.DECOMP_BUCKET_MOVES, bucket_moves)
        obs.observe(names.DECOMP_BUCKET_LEVELS, len(levels))
        obs.observe(names.DECOMP_ARRAY_SIZE, len(order))
    if tracer is not None:
        tracer.record(
            names.TRACE_PEEL_FIXED_K,
            trace_start,
            time.perf_counter(),
            k=k,
            engine="bucket",
            vertices=len(order),
        )
    return order, p_numbers


#: Engine registry, keyed by the name the API and CLI accept.  The
#: ``flat-numpy`` entry is always registered: it degrades to the pure
#: flat scratch when numpy is not importable (identical output).
ENGINES: dict[str, PeelEngine] = {
    "bucket": peel_fixed_k_bucket,
    "flat": peel_fixed_k_flat,
    "flat-numpy": peel_fixed_k_flat_numpy,
    "heap": peel_fixed_k_heap,
}

#: The engine used when callers do not choose one.
DEFAULT_ENGINE = "flat"


def available_engines() -> list[str]:
    """Engine names accepted by ``engine=`` parameters, sorted."""
    return sorted(ENGINES)


def make_scratch(
    engine: str, snapshot: CompactAdjacency, core: Sequence[int]
) -> Any | None:
    """Engine-specific cross-``k`` scratch for one ``(snapshot, core)``.

    Returns ``None`` for engines that keep no reusable state (``heap``).
    The decomposition driver builds one scratch and threads it through
    every fixed-``k`` call; pool workers build one per process.  The name
    is validated the same way :func:`get_engine` validates it.
    """
    get_engine(engine)  # surface unknown names with the canonical error
    if engine == "flat":
        return FlatScratch(snapshot, core)
    if engine == "flat-numpy":
        return FlatScratch(snapshot, core, use_numpy=True)
    if engine == "bucket":
        return BucketScratch(snapshot)
    return None


def get_engine(name: str) -> PeelEngine:
    """Resolve an engine name; raises :class:`ParameterError` if unknown."""
    try:
        return ENGINES[name]
    except KeyError:
        known = ", ".join(available_engines())
        raise ParameterError(
            f"unknown peel engine {name!r} (known: {known})"
        ) from None
