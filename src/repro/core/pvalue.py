"""Numeric conventions for fractions and p-numbers.

p-numbers and fraction values are rationals ``a/b`` with numerator and
denominator bounded by the maximum degree.  The library stores them as IEEE
doubles, which is exact *for our purposes* because:

* two distinct rationals with denominators ``<= D`` differ by at least
  ``1/D²`` and therefore round to distinct doubles whenever ``D < 2^26``
  (far above any degree this library meets), and
* float division is correctly rounded, so the same rational computed
  anywhere in the code yields the bit-identical double — index maintenance
  and from-scratch rebuilds agree exactly.

The one place where floats and rationals must be reconciled is the
**fraction constraint** ``deg(v, S) / deg(v, G) >= p`` for a caller-supplied
float ``p``.  The library's canonical semantics is the float comparison
``float(a / b) >= p``; :func:`fraction_threshold` converts that into the
integer degree threshold Algorithm 1 needs, carefully handling the case
where ``a/b`` is mathematically just below ``p`` but rounds up to it.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParameterError

__all__ = ["check_p", "fraction_value", "fraction_threshold", "as_fraction"]


def check_p(p: float) -> float:
    """Validate a fraction threshold; returns ``p`` for chaining."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"fraction threshold p must be in [0, 1], got {p}")
    return p


def fraction_value(numerator: int, denominator: int) -> float:
    """The canonical double for the fraction ``numerator/denominator``.

    ``denominator`` must be positive: callers never ask for the fraction of
    a degree-0 vertex (such a vertex is in no core with ``k >= 1``).
    """
    if denominator <= 0:
        raise ParameterError(
            f"fraction denominator must be positive, got {denominator}"
        )
    return numerator / denominator


def fraction_threshold(p: float, degree: int) -> int:
    """Smallest integer ``a`` with ``float(a / degree) >= p``.

    This is the fraction part of Algorithm 1's combined threshold
    ``t[v] = max(k, ceil(p * deg(v, G)))``, adjusted so that the integer
    test ``deg(v, S) >= t`` agrees *exactly* with the library-wide float
    semantics of the fraction constraint.  For ``degree == 0`` the
    constraint is vacuous and 0 is returned.
    """
    check_p(p)
    if degree < 0:
        raise ParameterError(f"degree must be >= 0, got {degree}")
    if degree == 0 or p == 0.0:
        return 0
    # Start within one of the boundary, then fix up with the *defining*
    # float comparisons themselves — exact by construction and much
    # cheaper than rational arithmetic in this O(n) hot path.
    a = int(p * degree)
    while a > 0 and (a - 1) / degree >= p:
        a -= 1
    while a <= degree and a / degree < p:
        a += 1
    return a


def as_fraction(value: float, max_denominator: int) -> Fraction:
    """Recover the exact rational a stored double denotes.

    ``max_denominator`` should be the relevant maximum degree; within the
    documented degree range the recovery is exact (see module docstring).
    Used for display ("p-number 4/7") and for cross-checks in tests.
    """
    if max_denominator < 1:
        raise ParameterError(
            f"max_denominator must be >= 1, got {max_denominator}"
        )
    return Fraction(value).limit_denominator(max_denominator)
