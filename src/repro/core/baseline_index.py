"""Materialized-cores baseline index (the Sec. V space discussion).

Section V's "Discussion of KP-Index" asks whether the index could be
smaller or simpler.  The obvious simpler design — materialize, for every
``k`` and every distinct p-level, the full vertex set of that (k,p)-core —
also answers queries in output time, but its space is
``Σ_k Σ_levels |C_{k,p}|``, which grows far beyond the KP-Index's
``Σ_k |V_k| <= 2m`` (Lemma 1): every vertex is stored once per level below
its own p-number instead of exactly once per array.

:class:`MaterializedIndex` implements that baseline so the space ablation
(``benchmarks/bench_ablation_index_space.py``) can quantify what the
KP-Index's deletion-order-plus-pointers layout buys.  Queries are answered
from the stored sets; results agree exactly with :class:`~repro.core.
index.KPIndex`.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.core.decomposition import kp_core_decomposition
from repro.core.pvalue import check_p

__all__ = ["MaterializedIndex"]


class MaterializedIndex:
    """Per-(k, level) materialized (k,p)-core vertex sets.

    Build cost matches the KP-Index (one decomposition) plus the
    materialization; space is where the designs diverge — see
    :meth:`vertex_entries` against ``KPIndex.space_stats()``.
    """

    def __init__(
        self,
        levels: dict[int, list[float]],
        cores: dict[tuple[int, float], tuple[Vertex, ...]],
    ) -> None:
        self._levels = levels
        self._cores = cores

    @classmethod
    def build(cls, graph: Graph) -> "MaterializedIndex":
        decomposition = kp_core_decomposition(graph)
        levels: dict[int, list[float]] = {}
        cores: dict[tuple[int, float], tuple[Vertex, ...]] = {}
        for k, fixed in decomposition.arrays.items():
            distinct = sorted(set(fixed.p_numbers))
            levels[k] = distinct
            # suffix construction, deepest level first
            suffix: list[Vertex] = []
            pn = fixed.pn_map()
            ordered = sorted(pn, key=lambda v: pn[v], reverse=True)
            cursor = 0
            for level in reversed(distinct):
                while cursor < len(ordered) and pn[ordered[cursor]] >= level:
                    suffix.append(ordered[cursor])
                    cursor += 1
                cores[(k, level)] = tuple(suffix)
        return cls(levels, cores)

    # ------------------------------------------------------------------
    @property
    def degeneracy(self) -> int:
        return max(self._levels, default=0)

    def query(self, k: int, p: float) -> list[Vertex]:
        """Vertex set of ``C_{k,p}(G)`` from the materialized sets."""
        if k < 1:
            raise ParameterError(f"degree threshold k must be >= 1, got {k}")
        check_p(p)
        levels = self._levels.get(k)
        if not levels:
            return []
        j = bisect_left(levels, p)
        if j == len(levels):
            return []
        return list(self._cores[(k, levels[j])])

    def vertex_entries(self) -> int:
        """Total stored vertex slots — the space figure of the ablation."""
        return sum(len(core) for core in self._cores.values())

    def level_entries(self) -> int:
        return sum(len(levels) for levels in self._levels.values())

    def __repr__(self) -> str:
        return (
            f"MaterializedIndex(d={self.degeneracy}, "
            f"vertex_entries={self.vertex_entries()})"
        )
