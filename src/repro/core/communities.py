"""Community views over (k,p)-cores.

The (k,p)-core is a single maximal subgraph, but applications — and the
paper's own Fig. 9 — work with its *connected components*: each component
is one community of well-engaged users.  This module provides:

* :func:`kp_communities` — the connected components of ``C_{k,p}(G)``,
* :func:`kp_community_of` — the community containing a query vertex (or
  ``None`` if the vertex is not in the core),
* :func:`strongest_community_parameters` — the most cohesive ``(k, p)``
  pair under which a query vertex still belongs to some community: the
  vertex's core number paired with its p-number there, per Definition 4,
* :func:`parameter_grid` — community-count/size statistics over a (k, p)
  grid, the exploration table behind "which parameters give meaningful
  communities?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.traversal import connected_components
from repro.core.decomposition import KPDecomposition, kp_core_decomposition
from repro.core.kpcore import kp_core_vertices
from repro.core.pvalue import check_p

__all__ = [
    "Community",
    "kp_communities",
    "kp_community_of",
    "strongest_community_parameters",
    "GridCell",
    "parameter_grid",
]


@dataclass(frozen=True)
class Community:
    """One connected component of a (k,p)-core."""

    k: int
    p: float
    vertices: frozenset[Vertex]

    def __len__(self) -> int:
        return len(self.vertices)

    def induced(self, graph: Graph) -> Graph:
        """The community as an induced subgraph of ``graph``."""
        return graph.induced_subgraph(self.vertices)


def kp_communities(graph: Graph, k: int, p: float) -> list[Community]:
    """Connected components of ``C_{k,p}(G)``, largest first."""
    members = kp_core_vertices(graph, k, p)
    if not members:
        return []
    core = graph.induced_subgraph(members)
    return [
        Community(k=k, p=p, vertices=frozenset(component))
        for component in connected_components(core)
    ]


def kp_community_of(
    graph: Graph, v: Vertex, k: int, p: float
) -> Community | None:
    """The (k,p)-community containing ``v``, or ``None`` if outside.

    Runs one (k,p)-core computation plus a BFS — no decomposition needed.
    """
    members = kp_core_vertices(graph, k, p)
    if v not in members:
        return None
    core = graph.induced_subgraph(members)
    from repro.graph.traversal import component_of

    return Community(k=k, p=p, vertices=frozenset(component_of(core, v)))


def strongest_community_parameters(
    graph: Graph,
    v: Vertex,
    decomposition: KPDecomposition | None = None,
) -> tuple[int, float] | None:
    """The most cohesive ``(k, p)`` under which ``v`` has a community.

    Cohesion is ordered by ``k`` first (the paper's primary knob), with the
    p-number at that ``k`` as the secondary value: the answer is
    ``(cn(v), pn(v, cn(v)))``, i.e. the deepest core containing ``v`` and
    the largest fraction it sustains there.  Returns ``None`` for isolated
    vertices.
    """
    decomposition = decomposition or kp_core_decomposition(graph)
    cn = decomposition.core_numbers.get(v, 0)
    if cn < 1:
        return None
    return cn, decomposition.arrays[cn].pn_map()[v]


@dataclass(frozen=True)
class GridCell:
    """Community statistics for one (k, p) grid point."""

    k: int
    p: float
    core_size: int
    num_communities: int
    largest_community: int

    @property
    def is_empty(self) -> bool:
        return self.core_size == 0


def parameter_grid(
    graph: Graph,
    ks: Sequence[int],
    ps: Sequence[float],
) -> list[GridCell]:
    """Community statistics across a ``(k, p)`` parameter grid.

    Cells are returned row-major (k outer, p inner).  This is the table an
    analyst scans to choose parameters: where does the core fragment into
    several communities, and where does it vanish?
    """
    for k in ks:
        if k < 1:
            raise ParameterError(f"grid k values must be >= 1, got {k}")
    for p in ps:
        check_p(p)
    cells: list[GridCell] = []
    for k in ks:
        for p in ps:
            communities = kp_communities(graph, k, p)
            cells.append(
                GridCell(
                    k=k,
                    p=p,
                    core_size=sum(len(c) for c in communities),
                    num_communities=len(communities),
                    largest_community=len(communities[0]) if communities else 0,
                )
            )
    return cells
