"""Fraction upper/lower bounds on p-numbers (Sec. VI, Defs. 5-7).

The paper states these bounds on the grid ``i / D`` (D the relevant
degree): ``max i/D`` such that at least ``i`` candidate neighbours have
value ``>= i/D``.  That form has a subtle hole: a vertex peeled in a
*cascade* inherits the round level — some **other** vertex's fraction — so
its p-number need not be a multiple of ``1/D``, and the grid maximum can
fall strictly below it.  (Concretely: a triangle whose gateway vertex has
fraction 2/3 gives every triangle member ``pn = 2/3``, while the grid bound
for a degree-2 member is 1/2.)

We therefore use the corrected, provably sound forms:

* **Upper bounds** (``p̂`` of Def. 5, ``p̃`` of Def. 6):

      bound = max_j  min(val_j, j / D),   val_1 >= val_2 >= ... descending.

  *Proof.*  Let ``q = pn(w)`` and ``C* = C_{k,q}``.  ``w`` keeps
  ``deg(w,C*) >= ceil(q·D) =: t`` neighbours in ``C*``; each such ``v`` has
  ``val(v) >= q`` (its k-core fraction, resp. its own ``p̂``, dominates its
  fraction in ``C*``).  Hence ``val_t >= q`` and ``q <= t/D``, so
  ``min(val_t, t/D) >= q``.  The grid form is the special case
  ``min = j/D`` and is never larger.

* **Lower bounds** (Thm. 5 / Eq. 3, Thm. 6 / Eq. 4, Def. 7 / Eq. 5):

      bound = min(p1, deg(v, C) / D),   C = C_{k,p1}, p1 = pn(v, k, G).

  *Proof.*  ``C`` itself (with the updated edge applied) witnesses the
  bound: every member other than ``v`` keeps fraction ``>= p1`` (degrees
  untouched by the update), and ``v`` keeps ``deg(v, C)`` of ``D``
  neighbours.  The paper's unclamped grid form can exceed ``p1`` and is
  then not certified by any subgraph, so we clamp.

Both corrections only make the maintenance windows marginally wider /
skips marginally rarer; the asymptotic savings are unchanged and the test
suite checks exact agreement with from-scratch decomposition.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.core.pvalue import fraction_value

__all__ = [
    "upper_h_value",
    "scaled_h_index",
    "degree_in",
    "fraction_in",
    "BoundsCache",
    "p_hat",
    "p_tilde",
    "insertion_support_bound",
    "deletion_pair_bound",
]


def upper_h_value(values: Iterable[float], denominator: int) -> float:
    """``max_j min(val_j, j/D)`` over descending values (corrected bound).

    Returns 0.0 for an empty candidate set or non-positive denominator.
    """
    if denominator <= 0:
        return 0.0
    ordered = sorted(values, reverse=True)
    best = 0.0
    for j, val in enumerate(ordered, start=1):
        candidate = min(val, fraction_value(j, denominator))
        if candidate > best:
            best = candidate
        if val <= best:
            break  # later vals only shrink min(val, ·)
    return best


def scaled_h_index(values: Iterable[float], denominator: int) -> float:
    """The paper's literal grid bound ``max{i/D : val_i >= i/D}``.

    Kept for reference and for tests that demonstrate why the corrected
    :func:`upper_h_value` is required; not used by maintenance.
    """
    if denominator <= 0:
        return 0.0
    ordered = sorted(values, reverse=True)
    best = 0
    for i in range(1, len(ordered) + 1):
        if ordered[i - 1] >= fraction_value(i, denominator):
            best = i
        else:
            break  # values descend while i/D rises: condition stays false
    return fraction_value(best, denominator) if best else 0.0


def degree_in(graph: Graph, members: set[Vertex], v: Vertex) -> int:
    """``deg(v, C)`` for the subgraph induced by ``members``."""
    return sum(1 for w in graph.neighbors(v) if w in members)


def fraction_in(graph: Graph, members: set[Vertex], v: Vertex) -> float:
    """``deg(v, C) / deg(v, G)`` for the subgraph induced by ``members``."""
    return fraction_value(degree_in(graph, members, v), graph.degree(v))


class BoundsCache:
    """Memoized fraction / ``p̂`` evaluations over one fixed k-core.

    ``p̃(w)`` touches the two-hop neighbourhood of ``w``; inside a dense
    core those neighbourhoods overlap almost completely, so memoizing the
    per-vertex fraction and ``p̂`` values turns the quadratic-ish scan into
    one pass over the distinct vertices involved.  Create one cache per
    (update, k) pair — it must be discarded whenever the graph or the core
    changes.
    """

    __slots__ = ("graph", "kcore", "_fraction", "_p_hat")

    def __init__(self, graph: Graph, kcore: set[Vertex]) -> None:
        self.graph = graph
        self.kcore = kcore
        self._fraction: dict[Vertex, float] = {}
        self._p_hat: dict[Vertex, float] = {}

    def fraction(self, x: Vertex) -> float:
        value = self._fraction.get(x)
        if value is None:
            value = fraction_in(self.graph, self.kcore, x)
            self._fraction[x] = value
        return value

    def p_hat(self, x: Vertex) -> float:
        value = self._p_hat.get(x)
        if value is None:
            kcore = self.kcore
            value = upper_h_value(
                (self.fraction(y) for y in self.graph.neighbors(x) if y in kcore),
                self.graph.degree(x),
            )
            self._p_hat[x] = value
        return value

    def p_tilde(self, w: Vertex) -> float:
        kcore = self.kcore
        return upper_h_value(
            (self.p_hat(x) for x in self.graph.neighbors(w) if x in kcore),
            self.graph.degree(w),
        )


def p_hat(graph: Graph, kcore: set[Vertex], w: Vertex) -> float:
    """Upper bound ``p̂(w, k, G)`` of Definition 5 (corrected form).

    ``kcore`` must be the vertex set of ``C_k(G)`` for the relevant ``k``.
    """
    return BoundsCache(graph, kcore).p_hat(w)


def p_tilde(graph: Graph, kcore: set[Vertex], w: Vertex) -> float:
    """Tighter upper bound ``p̃(w, k, G)`` of Definition 6 (corrected form).

    Evaluates ``p̂`` for every k-core neighbour of ``w`` (two-hop work).
    Use :class:`BoundsCache` directly when evaluating several vertices over
    the same core.
    """
    return BoundsCache(graph, kcore).p_tilde(w)


def insertion_support_bound(
    graph: Graph, core_at_p1: set[Vertex], v: Vertex, p1: float
) -> float:
    """Clamped lower bound on ``pn(v, k, G_+)`` — Thms. 5/6 (Eqs. 3-4).

    ``graph`` must already contain the inserted edge, so ``deg(v, graph)``
    equals the paper's ``deg(v, G) + 1``.  ``core_at_p1`` is the vertex set
    of ``C_{k, p1}(G)`` with ``p1 = pn(v, k, G)``, from the pre-insertion
    index; the other endpoint of the new edge is outside the k-core in this
    case, hence outside ``core_at_p1``.
    """
    return min(p1, fraction_value(degree_in(graph, core_at_p1, v), graph.degree(v)))


def deletion_pair_bound(
    graph: Graph,
    core_at_p1: set[Vertex],
    u: Vertex,
    v: Vertex,
    k: int,
    p1: float,
) -> float:
    """Sound replacement for Definition 7's lower bound (deletion case).

    ``graph`` must already have the edge ``(u, v)`` removed and both
    endpoints must be in the k-core; ``core_at_p1`` is ``C_{k,p1}(G)`` from
    the pre-deletion index with ``p1 = min(pn(u,k,G), pn(v,k,G))``.

    The witness is ``core_at_p1`` itself with the edge removed: its other
    members keep fraction ``>= p1`` and degree ``>= k`` untouched, while
    ``u`` and ``v`` each lose one inside-neighbour.  The witness — and
    hence any positive bound — only exists when both endpoints still meet
    the degree constraint inside it; Definition 7 misses that condition
    (and the degree shift in its fraction terms), which lets cascades reach
    below its value.  Returns 0.0 when the witness collapses.
    """
    if k < 0:
        raise ParameterError(f"degree threshold k must be >= 0, got {k}")
    du = degree_in(graph, core_at_p1, u)  # (u,v) already absent from graph
    dv = degree_in(graph, core_at_p1, v)
    if du < k or dv < k:
        return 0.0
    return min(
        p1,
        fraction_value(du, graph.degree(u)),
        fraction_value(dv, graph.degree(v)),
    )
