"""KP-Index and time-optimal query processing (Sec. V, Algorithm 3).

The index ``I = ∪_{1<=k<=d(G)} A_k`` holds, per ``k``:

* ``V_k`` — the k-core vertices in the deletion order of Algorithm 2, and
* ``P_k`` — the distinct p-numbers in ascending order, each pointing at the
  first vertex of ``V_k`` with that p-number.

A (k,p)-core query locates the first p-number ``>= p`` and returns the
suffix of ``V_k`` from its pointer — O(answer size) work (Theorem 1), plus
a binary search over ``P_k`` to find the pointer.

Space is O(m) (Lemma 1): vertex ``u`` appears in exactly ``cn(u)`` arrays,
and ``Σ cn(u) <= Σ deg(u) = 2m``; :meth:`KPIndex.space_stats` reports the
concrete numbers so tests can verify the bound.

Persistence uses the **versioned snapshot format v2**: an envelope with
``format_version``, an optional :class:`~repro.graph.fingerprint.
GraphFingerprint` of the source graph, and a SHA-256 ``payload_checksum``
over the canonical JSON of the index payload.  :meth:`KPIndex.save` writes
atomically (temp file + ``os.replace``), :meth:`KPIndex.load` verifies the
checksum, migrates legacy v1 dumps (the bare payload, no envelope), runs
:meth:`KPIndex.validate`, and wraps every corrupt/truncated/foreign-file
failure in :class:`~repro.errors.IndexPersistenceError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, KeysView, Mapping, Sequence

from repro.errors import (
    IndexPersistenceError,
    IndexStateError,
    ParameterError,
)
from repro.graph.adjacency import Graph, Vertex
from repro.graph.fingerprint import GraphFingerprint
from repro.obs import names
from repro.obs.instrumentation import get_collector
from repro.core.decomposition import (
    FixedKDecomposition,
    KPDecomposition,
    kp_core_decomposition,
)
from repro.core.pvalue import check_p

__all__ = [
    "KArray",
    "KPIndex",
    "IndexSpaceStats",
    "build_index",
    "SNAPSHOT_FORMAT_VERSION",
]

#: Current on-disk snapshot format.  v1 was the bare payload dict (no
#: envelope, no checksum); v1 files still load through the migration path.
SNAPSHOT_FORMAT_VERSION = 2


def _canonical_payload_json(payload: dict) -> str:
    """Deterministic JSON rendering the payload checksum is computed over.

    ``sort_keys`` plus compact separators make the rendering independent
    of dict insertion order, and Python's shortest-round-trip float repr
    makes it stable across a JSON round trip of the same values.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _payload_checksum(payload: dict) -> str:
    return hashlib.sha256(
        _canonical_payload_json(payload).encode("utf-8")
    ).hexdigest()


@dataclass
class KArray:
    """One ``A_k`` of the KP-Index.

    ``vertices`` (``V_k``) are in deletion order; ``p_numbers`` is aligned
    with it and non-decreasing.  ``level_values``/``level_starts`` encode
    ``P_k``: ``level_values[j]`` is the j-th distinct p-number and
    ``level_starts[j]`` the index in ``vertices`` of its first vertex.
    """

    k: int
    vertices: list[Vertex]
    p_numbers: list[float]
    level_values: list[float] = field(init=False)
    level_starts: list[int] = field(init=False)
    _pn_of: dict[Vertex, float] = field(init=False, repr=False)
    # Lazily materialized per-level answer tuples (index aligned with
    # level_values; None = not built yet).  Reset by _rebuild_levels, so
    # every mutation path (splice, A_1 bookkeeping, full rebuild)
    # invalidates them together with the level structure.
    _slices: list[tuple[Vertex, ...] | None] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.vertices) != len(self.p_numbers):
            raise IndexStateError(
                f"A_{self.k}: {len(self.vertices)} vertices vs "
                f"{len(self.p_numbers)} p-numbers"
            )
        self._rebuild_levels()

    def _rebuild_levels(self) -> None:
        values: list[float] = []
        starts: list[int] = []
        previous: float | None = None
        for i, pn in enumerate(self.p_numbers):
            if previous is not None and pn < previous:
                raise IndexStateError(
                    f"A_{self.k}: p-numbers not sorted at position {i}"
                )
            # Exact-double level grouping; see repro.core.pvalue.
            if pn != previous:  # noqa: KP002
                values.append(pn)
                starts.append(i)
                previous = pn
        self.level_values = values
        self.level_starts = starts
        self._slices = [None] * len(values)
        self._pn_of = dict(zip(self.vertices, self.p_numbers))
        if len(self._pn_of) != len(self.vertices):
            raise IndexStateError(f"A_{self.k}: duplicate vertex in V_k")

    # ------------------------------------------------------------------
    @classmethod
    def from_fixed_k(cls, fixed: FixedKDecomposition) -> "KArray":
        return cls(
            k=fixed.k,
            vertices=list(fixed.order),
            p_numbers=list(fixed.p_numbers),
        )

    # ------------------------------------------------------------------
    def level_index(self, p: float) -> int:
        """Index into ``P_k`` of the first level ``>= p`` (Algorithm 3's
        binary search), as a canonical integer key.

        Every float spelling of ``p`` inside one inter-level gap maps to
        the same integer — ``0.3`` and a grid-produced
        ``0.30000000000000004`` share a level unless a p-number lies
        strictly between them.  ``len(level_values)`` means "above the
        largest p-number": the empty answer.  The serving cache keys on
        this integer instead of the raw float (see
        :mod:`repro.service.server`).
        """
        check_p(p)
        return bisect_left(self.level_values, p)

    def slice_at(self, level: int) -> tuple[Vertex, ...]:
        """The precomputed answer slice of one ``P_k`` level.

        A suffix-of-members tuple, materialized lazily once per level
        per rebuild (every array mutation resets the store via
        ``_rebuild_levels``) and counted as ``index.slice_rebuilds``.
        Queries and serving-cache entries return this stored tuple
        directly — O(1) after the first touch, never a per-query list
        rebuild.  Safe under concurrent readers: racing builds assign
        equal immutable tuples.  ``level == len(level_values)`` is the
        empty answer.
        """
        if not 0 <= level <= len(self.level_values):
            raise ParameterError(
                f"A_{self.k}: level index {level} out of range "
                f"[0, {len(self.level_values)}]"
            )
        if level == len(self.level_values):
            return ()
        cached = self._slices[level]
        if cached is None:
            cached = tuple(self.vertices[self.level_starts[level] :])
            self._slices[level] = cached
            obs = get_collector()
            if obs is not None:
                obs.inc(names.INDEX_SLICE_REBUILDS)
        return cached

    def query_slice(self, p: float) -> tuple[Vertex, ...]:
        """Algorithm 3 as a stored-tuple return (shared; do not mutate)."""
        result = self.slice_at(self.level_index(p))
        obs = get_collector()
        if obs is not None:
            # Theorem 1 made countable: touched vertices == answer size,
            # plus the |P_k| the binary search ran over.
            obs.inc(names.INDEX_QUERIES)
            if not result:
                obs.inc(names.INDEX_EMPTY_QUERIES)
            obs.add(names.INDEX_VERTICES_TOUCHED, len(result))
            obs.observe(names.INDEX_ANSWER_SIZE, len(result))
            obs.observe(names.INDEX_LEVELS_SEARCHED, len(self.level_values))
        return result

    def query(self, p: float) -> list[Vertex]:
        """Vertices of the (k,p)-core at this array's ``k`` (Algorithm 3).

        Returns a fresh list the caller may own; the allocation-free
        path is :meth:`query_slice`.
        """
        return list(self.query_slice(p))

    def p_number(self, v: Vertex) -> float:
        """``pn(v, k)``; raises ``KeyError`` if ``v`` is not in this k-core."""
        return self._pn_of[v]

    def p_number_or(self, v: Vertex, default: float = 0.0) -> float:
        """``pn(v, k)`` with a default for vertices outside the k-core.

        The maintenance section treats vertices that are not (yet) in the
        k-core as having p-number 0.
        """
        return self._pn_of.get(v, default)

    def contains(self, v: Vertex) -> bool:
        return v in self._pn_of

    def vertex_set(self) -> set[Vertex]:
        return set(self.vertices)

    def members_view(self) -> KeysView[Vertex]:
        """O(1) read-only membership container over ``V_k`` (a dict keys
        view) — for callers that only need ``in`` tests."""
        return self._pn_of.keys()

    def pn_map(self) -> dict[Vertex, float]:
        return dict(self._pn_of)

    def max_p_number(self) -> float:
        return self.level_values[-1] if self.level_values else 0.0

    def replace_segment(
        self,
        keep_below: float,
        segment_vertices: Sequence[Vertex],
        segment_p_numbers: Sequence[float],
        tail_from: Iterable[Vertex] = (),
    ) -> None:
        """Splice a recomputed segment into this array (maintenance).

        Keeps the existing prefix of vertices with ``pn < keep_below`` (in
        order), then appends the recomputed segment, then the given tail
        vertices with their existing p-numbers.  The caller guarantees the
        pieces are disjoint and level-sorted overall; ``__post_init__``
        invariants are re-checked.
        """
        prefix_end = 0
        for pn in self.p_numbers:
            if pn < keep_below:
                prefix_end += 1
            else:
                break
        new_vertices = self.vertices[:prefix_end] + list(segment_vertices)
        new_p_numbers = self.p_numbers[:prefix_end] + list(segment_p_numbers)
        for v in tail_from:
            new_vertices.append(v)
            new_p_numbers.append(self._pn_of[v])
        self.vertices = new_vertices
        self.p_numbers = new_p_numbers
        self._rebuild_levels()

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class IndexSpaceStats:
    """Concrete sizes backing the Lemma 1 space argument."""

    vertex_entries: int  # Σ_k |V_k|
    p_number_entries: int  # Σ_k |P_k|
    num_arrays: int  # d(G)
    two_m: int  # the Lemma 1 bound on vertex entries

    @property
    def within_bound(self) -> bool:
        return self.vertex_entries <= self.two_m and (
            self.p_number_entries <= self.vertex_entries
        )


class KPIndex:
    """The KP-Index of a graph: query in output-optimal time.

    Build once with :meth:`build` (runs Algorithm 2), then answer any
    (k,p)-core query with :meth:`query`.  For dynamic graphs wrap it in a
    :class:`repro.core.maintenance.KPIndexMaintainer`, which keeps it
    synchronized under edge insertions and deletions.
    """

    def __init__(self, arrays: Mapping[int, KArray], num_edges: int) -> None:
        self._arrays: dict[int, KArray] = dict(arrays)
        self._num_edges = num_edges
        #: Fingerprint of the source graph carried by a v2 snapshot, if
        #: the index was loaded from (or saved with) one.
        self.fingerprint: GraphFingerprint | None = None
        # Per-k monotonic modification counters (k -> version, absent = 0).
        # The maintenance layer bumps a k exactly when it mutates A_k, so
        # an unchanged version certifies that every (k, p) answer is still
        # valid — the invalidation oracle behind the result cache in
        # :mod:`repro.service.server`.  Versions are in-memory state: they
        # are not persisted and restart at 0 on load.
        self._versions: dict[int, int] = {}
        # (k, p) -> (version, level) memo for :meth:`answer_key`.  A
        # stored pair is returned only while A_k's version still equals
        # the stored one, and every A_k mutation bumps the version, so
        # entries self-invalidate; the cap below bounds adversarial
        # float churn.  Plain-dict ops are GIL-atomic; racing readers at
        # worst recompute.
        self._key_memo: dict[tuple[int, float], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph) -> "KPIndex":
        """Construct the index by full (k,p)-core decomposition."""
        return cls.from_decomposition(kp_core_decomposition(graph), graph.num_edges)

    @classmethod
    def from_decomposition(
        cls, decomposition: KPDecomposition, num_edges: int
    ) -> "KPIndex":
        arrays = {
            k: KArray.from_fixed_k(fixed)
            for k, fixed in decomposition.arrays.items()
        }
        return cls(arrays, num_edges)

    # ------------------------------------------------------------------
    @property
    def degeneracy(self) -> int:
        """``d(G)``: the largest ``k`` with a non-empty array."""
        return max((k for k, a in self._arrays.items() if len(a)), default=0)

    def array(self, k: int) -> KArray:
        """``A_k``; raises ``KeyError`` if ``k`` exceeds the degeneracy."""
        return self._arrays[k]

    def arrays(self) -> dict[int, KArray]:
        """Live view of all arrays keyed by ``k`` (maintenance internals)."""
        return self._arrays

    def adjust_num_edges(self, delta: int) -> None:
        """Keep the Lemma 1 edge count current under maintenance."""
        self._num_edges += delta

    # ------------------------------------------------------------------
    # per-array versions (cache-invalidation oracle)
    # ------------------------------------------------------------------
    def version(self, k: int) -> int:
        """Modification counter of ``A_k`` (0 while never mutated).

        Defined for every ``k >= 1``, including values with no array yet:
        a later update can create ``A_k``, and that creation bumps the
        version, so ``(k, p, version)``-keyed cache entries for "no such
        core" answers invalidate correctly too.
        """
        if k < 1:
            raise ParameterError(f"degree threshold k must be >= 1, got {k}")
        return self._versions.get(k, 0)

    def bump_version(self, k: int) -> int:
        """Record a mutation of ``A_k``; returns the new version."""
        version = self._versions.get(k, 0) + 1
        self._versions[k] = version
        return version

    def versions(self) -> dict[int, int]:
        """Snapshot of every non-zero per-k version (k -> version)."""
        return dict(self._versions)

    def level_index(self, k: int, p: float) -> int:
        """Canonical grid level of ``p`` within ``A_k`` (0 if no array).

        The integer the serving cache keys on: two float spellings of
        the same level resolve to one key.  Only meaningful together
        with :meth:`version` — a mutation that reshapes ``P_k`` also
        bumps the version, so ``(k, level)`` keys never alias across
        versions.
        """
        if k < 1:
            raise ParameterError(f"degree threshold k must be >= 1, got {k}")
        array = self._arrays.get(k)
        if array is None:
            check_p(p)
            return 0
        return array.level_index(p)

    def answer_key(self, k: int, p: float) -> tuple[int, int]:
        """``(version(k), level_index(k, p))`` fetched in one call.

        The serving cache's probe key: one method dispatch instead of
        two on the hot path.  ``k`` and ``p`` are assumed validated by
        the caller (the server validates before the cache is touched);
        ``p`` is still forwarded through :meth:`KArray.level_index`'s
        ``check_p``.

        Repeat probes for the same ``(k, p)`` are memoized: the level
        of a given ``p`` within ``A_k`` can only change when ``A_k``
        itself changes, which bumps the version, so a memo pair whose
        stored version still matches is returned without re-running the
        binary search.
        """
        version = self._versions.get(k, 0)
        memo = self._key_memo.get((k, p))
        if memo is not None and memo[0] == version:
            return memo
        array = self._arrays.get(k)
        if array is None:
            check_p(p)
            pair = (version, 0)
        else:
            pair = (version, array.level_index(p))
        if len(self._key_memo) >= 4096:
            self._key_memo.clear()
        self._key_memo[(k, p)] = pair
        return pair

    def query_slice(self, k: int, p: float) -> tuple[Vertex, ...]:
        """Algorithm 3 as a stored-tuple return (shared; do not mutate).

        The serving hot path: the answer is the precomputed per-level
        slice of ``A_k``, not a per-query list rebuild.  Empty when
        ``k`` exceeds the degeneracy or ``p`` exceeds the largest
        p-number in ``A_k``.
        """
        if k < 1:
            raise ParameterError(f"degree threshold k must be >= 1, got {k}")
        check_p(p)
        array = self._arrays.get(k)
        if array is None:
            obs = get_collector()
            if obs is not None:
                obs.inc(names.INDEX_QUERIES)
                obs.inc(names.INDEX_EMPTY_QUERIES)
                obs.observe(names.INDEX_ANSWER_SIZE, 0)
            return ()
        return array.query_slice(p)

    def query(self, k: int, p: float) -> list[Vertex]:
        """Vertex set of ``C_{k,p}(G)`` — Algorithm 3 (kpCoreQuery).

        Returns the empty list when ``k`` exceeds the degeneracy or ``p``
        exceeds the largest p-number in ``A_k``.  The list is fresh and
        caller-owned; :meth:`query_slice` is the allocation-free path.
        """
        return list(self.query_slice(k, p))

    def p_number(self, v: Vertex, k: int) -> float:
        """``pn(v, k, G)``; ``KeyError`` if ``v`` is outside the k-core."""
        array = self._arrays.get(k)
        if array is None:
            raise KeyError(f"no {k}-core in the indexed graph")
        return array.p_number(v)

    # ------------------------------------------------------------------
    def pn_maps(self) -> dict[int, dict[Vertex, float]]:
        """``{k: {vertex: pn}}`` — the index's semantic content.

        Two KP-Indexes of the same graph are interchangeable iff their
        ``pn_maps`` agree (deletion order within one p-level is arbitrary).
        """
        return {k: a.pn_map() for k, a in self._arrays.items() if len(a)}

    def semantically_equal(self, other: "KPIndex") -> bool:
        """Order-insensitive equality of index content.

        Exact-double p-number equality is the *point* of this method:
        identical rationals yield bit-identical doubles (see
        :mod:`repro.core.pvalue`), so dict equality is exact.
        """
        return self.pn_maps() == other.pn_maps()  # noqa: KP002

    def space_stats(self) -> IndexSpaceStats:
        """Sizes for the Lemma 1 space bound."""
        return IndexSpaceStats(
            vertex_entries=sum(len(a) for a in self._arrays.values()),
            p_number_entries=sum(
                len(a.level_values) for a in self._arrays.values()
            ),
            num_arrays=len(self._arrays),
            two_m=2 * self._num_edges,
        )

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexStateError`.

        Verifies per-array sorting (done by ``KArray``), the nesting
        ``V_{k+1} ⊆ V_k``, and the Lemma 1 space bound.
        """
        ks = sorted(k for k, a in self._arrays.items() if len(a))
        for smaller, larger in zip(ks, ks[1:]):
            if larger != smaller + 1:
                raise IndexStateError(
                    f"array for k={smaller + 1} missing while k={larger} exists"
                )
        for k in ks[:-1]:
            upper = self._arrays[k + 1].vertex_set()
            lower = self._arrays[k].vertex_set()
            if not upper <= lower:
                raise IndexStateError(
                    f"V_{k + 1} is not contained in V_{k}"
                )
        stats = self.space_stats()
        if not stats.within_bound:
            raise IndexStateError(
                f"space bound violated: {stats.vertex_entries} vertex entries "
                f"> 2m = {stats.two_m}"
            )

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The index content alone — the body inside the v2 envelope.

        This is also exactly the legacy v1 on-disk format, which is what
        makes the migration path in :meth:`from_dict` trivial.
        """
        return {
            "num_edges": self._num_edges,
            "arrays": {
                str(k): {"vertices": a.vertices, "p_numbers": a.p_numbers}
                for k, a in self._arrays.items()
            },
        }

    def to_dict(self, fingerprint: GraphFingerprint | None = None) -> dict:
        """Snapshot format v2 (vertex labels must be JSON-friendly).

        The envelope carries ``format_version``, the optional graph
        ``fingerprint`` (falls back to the one the index already carries),
        and a SHA-256 ``payload_checksum`` over the canonical payload
        JSON, verified again by :meth:`from_dict`.
        """
        if fingerprint is None:
            fingerprint = self.fingerprint
        payload = self.to_payload()
        document: dict[str, Any] = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "payload_checksum": _payload_checksum(payload),
            "payload": payload,
        }
        if fingerprint is not None:
            document["fingerprint"] = fingerprint.to_dict()
        return document

    @classmethod
    def _from_payload(cls, payload: dict) -> "KPIndex":
        arrays = {
            int(k): KArray(
                k=int(k),
                vertices=list(entry["vertices"]),
                p_numbers=[float(x) for x in entry["p_numbers"]],
            )
            for k, entry in payload["arrays"].items()
        }
        return cls(arrays, int(payload["num_edges"]))

    @classmethod
    def from_dict(cls, document: dict) -> "KPIndex":
        """Rebuild an index from :meth:`to_dict` output (v2) or a v1 dump.

        Raises :class:`~repro.errors.IndexPersistenceError` for anything
        that is not a well-formed snapshot: unknown ``format_version``,
        checksum mismatch, missing/mistyped fields, or arrays violating
        the :class:`KArray` invariants.
        """
        try:
            if not isinstance(document, dict):
                raise IndexPersistenceError(
                    f"expected a snapshot object, got {type(document).__name__}"
                )
            version = document.get("format_version")
            if version is None:
                # v1 migration: the legacy dump *is* the payload.
                payload = document
                fingerprint = None
            else:
                if version != SNAPSHOT_FORMAT_VERSION:
                    raise IndexPersistenceError(
                        f"unsupported snapshot format_version {version!r} "
                        f"(this build reads v1 and v{SNAPSHOT_FORMAT_VERSION})"
                    )
                payload = document["payload"]
                if not isinstance(payload, dict):
                    raise IndexPersistenceError("snapshot payload is not an object")
                expected = document["payload_checksum"]
                actual = _payload_checksum(payload)
                if actual != expected:
                    raise IndexPersistenceError(
                        f"payload checksum mismatch: stored {expected!r}, "
                        f"computed {actual!r} — the snapshot is corrupt"
                    )
                fingerprint = None
                if "fingerprint" in document:
                    fingerprint = GraphFingerprint.from_dict(
                        document["fingerprint"]
                    )
            index = cls._from_payload(payload)
            index.fingerprint = fingerprint
            return index
        except IndexPersistenceError:
            raise
        except (KeyError, TypeError, ValueError, IndexStateError) as error:
            raise IndexPersistenceError(
                f"malformed index snapshot: {error!r}"
            ) from error

    def save(
        self, path: str, fingerprint: GraphFingerprint | None = None
    ) -> None:
        """Persist the index as a v2 snapshot, atomically.

        The document is written to a temporary file in the destination
        directory, fsynced, and moved into place with ``os.replace`` — a
        crash mid-write can never destroy the previous good snapshot.
        """
        document = self.to_dict(fingerprint=fingerprint)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "KPIndex":
        """Load an index previously written by :meth:`save`.

        Accepts both the current v2 snapshot and legacy v1 dumps.  The
        loaded index is checksum-verified (v2) and structurally validated
        (:meth:`validate`); every corruption mode raises
        :class:`~repro.errors.IndexPersistenceError` rather than leaking a
        raw ``json``/``KeyError``/``TypeError`` failure.  A missing file
        still raises ``FileNotFoundError`` (it is an addressing mistake,
        not a corrupt artifact).
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            document = json.loads(text)
        except ValueError as error:
            raise IndexPersistenceError(
                f"not valid JSON ({error}) — truncated or foreign file?",
                path=path,
            ) from error
        try:
            index = cls.from_dict(document)
            index.validate()
        except IndexPersistenceError as error:
            if error.path is None:
                error.path = path
            raise
        except IndexStateError as error:
            raise IndexPersistenceError(
                f"snapshot violates index invariants: {error}", path=path
            ) from error
        return index

    def __repr__(self) -> str:
        stats = self.space_stats()
        return (
            f"KPIndex(d={self.degeneracy}, vertex_entries={stats.vertex_entries}, "
            f"p_entries={stats.p_number_entries})"
        )


def build_index(graph: Graph) -> KPIndex:
    """Convenience alias for :meth:`KPIndex.build`."""
    return KPIndex.build(graph)
