"""KP-Index and time-optimal query processing (Sec. V, Algorithm 3).

The index ``I = ∪_{1<=k<=d(G)} A_k`` holds, per ``k``:

* ``V_k`` — the k-core vertices in the deletion order of Algorithm 2, and
* ``P_k`` — the distinct p-numbers in ascending order, each pointing at the
  first vertex of ``V_k`` with that p-number.

A (k,p)-core query locates the first p-number ``>= p`` and returns the
suffix of ``V_k`` from its pointer — O(answer size) work (Theorem 1), plus
a binary search over ``P_k`` to find the pointer.

Space is O(m) (Lemma 1): vertex ``u`` appears in exactly ``cn(u)`` arrays,
and ``Σ cn(u) <= Σ deg(u) = 2m``; :meth:`KPIndex.space_stats` reports the
concrete numbers so tests can verify the bound.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, KeysView, Mapping, Sequence

from repro.errors import IndexStateError, ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.obs import names
from repro.obs.instrumentation import get_collector
from repro.core.decomposition import (
    FixedKDecomposition,
    KPDecomposition,
    kp_core_decomposition,
)
from repro.core.pvalue import check_p

__all__ = ["KArray", "KPIndex", "IndexSpaceStats", "build_index"]


@dataclass
class KArray:
    """One ``A_k`` of the KP-Index.

    ``vertices`` (``V_k``) are in deletion order; ``p_numbers`` is aligned
    with it and non-decreasing.  ``level_values``/``level_starts`` encode
    ``P_k``: ``level_values[j]`` is the j-th distinct p-number and
    ``level_starts[j]`` the index in ``vertices`` of its first vertex.
    """

    k: int
    vertices: list[Vertex]
    p_numbers: list[float]
    level_values: list[float] = field(init=False)
    level_starts: list[int] = field(init=False)
    _pn_of: dict[Vertex, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.vertices) != len(self.p_numbers):
            raise IndexStateError(
                f"A_{self.k}: {len(self.vertices)} vertices vs "
                f"{len(self.p_numbers)} p-numbers"
            )
        self._rebuild_levels()

    def _rebuild_levels(self) -> None:
        values: list[float] = []
        starts: list[int] = []
        previous: float | None = None
        for i, pn in enumerate(self.p_numbers):
            if previous is not None and pn < previous:
                raise IndexStateError(
                    f"A_{self.k}: p-numbers not sorted at position {i}"
                )
            # Exact-double level grouping; see repro.core.pvalue.
            if pn != previous:  # noqa: KP002
                values.append(pn)
                starts.append(i)
                previous = pn
        self.level_values = values
        self.level_starts = starts
        self._pn_of = dict(zip(self.vertices, self.p_numbers))
        if len(self._pn_of) != len(self.vertices):
            raise IndexStateError(f"A_{self.k}: duplicate vertex in V_k")

    # ------------------------------------------------------------------
    @classmethod
    def from_fixed_k(cls, fixed: FixedKDecomposition) -> "KArray":
        return cls(
            k=fixed.k,
            vertices=list(fixed.order),
            p_numbers=list(fixed.p_numbers),
        )

    # ------------------------------------------------------------------
    def query(self, p: float) -> list[Vertex]:
        """Vertices of the (k,p)-core at this array's ``k`` (Algorithm 3)."""
        check_p(p)
        j = bisect_left(self.level_values, p)
        if j == len(self.level_values):
            result: list[Vertex] = []
        else:
            result = self.vertices[self.level_starts[j] :]
        obs = get_collector()
        if obs is not None:
            # Theorem 1 made countable: touched vertices == answer size,
            # plus the |P_k| the binary search ran over.
            obs.inc(names.INDEX_QUERIES)
            if not result:
                obs.inc(names.INDEX_EMPTY_QUERIES)
            obs.add(names.INDEX_VERTICES_TOUCHED, len(result))
            obs.observe(names.INDEX_ANSWER_SIZE, len(result))
            obs.observe(names.INDEX_LEVELS_SEARCHED, len(self.level_values))
        return result

    def p_number(self, v: Vertex) -> float:
        """``pn(v, k)``; raises ``KeyError`` if ``v`` is not in this k-core."""
        return self._pn_of[v]

    def p_number_or(self, v: Vertex, default: float = 0.0) -> float:
        """``pn(v, k)`` with a default for vertices outside the k-core.

        The maintenance section treats vertices that are not (yet) in the
        k-core as having p-number 0.
        """
        return self._pn_of.get(v, default)

    def contains(self, v: Vertex) -> bool:
        return v in self._pn_of

    def vertex_set(self) -> set[Vertex]:
        return set(self.vertices)

    def members_view(self) -> KeysView[Vertex]:
        """O(1) read-only membership container over ``V_k`` (a dict keys
        view) — for callers that only need ``in`` tests."""
        return self._pn_of.keys()

    def pn_map(self) -> dict[Vertex, float]:
        return dict(self._pn_of)

    def max_p_number(self) -> float:
        return self.level_values[-1] if self.level_values else 0.0

    def replace_segment(
        self,
        keep_below: float,
        segment_vertices: Sequence[Vertex],
        segment_p_numbers: Sequence[float],
        tail_from: Iterable[Vertex] = (),
    ) -> None:
        """Splice a recomputed segment into this array (maintenance).

        Keeps the existing prefix of vertices with ``pn < keep_below`` (in
        order), then appends the recomputed segment, then the given tail
        vertices with their existing p-numbers.  The caller guarantees the
        pieces are disjoint and level-sorted overall; ``__post_init__``
        invariants are re-checked.
        """
        prefix_end = 0
        for pn in self.p_numbers:
            if pn < keep_below:
                prefix_end += 1
            else:
                break
        new_vertices = self.vertices[:prefix_end] + list(segment_vertices)
        new_p_numbers = self.p_numbers[:prefix_end] + list(segment_p_numbers)
        for v in tail_from:
            new_vertices.append(v)
            new_p_numbers.append(self._pn_of[v])
        self.vertices = new_vertices
        self.p_numbers = new_p_numbers
        self._rebuild_levels()

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class IndexSpaceStats:
    """Concrete sizes backing the Lemma 1 space argument."""

    vertex_entries: int  # Σ_k |V_k|
    p_number_entries: int  # Σ_k |P_k|
    num_arrays: int  # d(G)
    two_m: int  # the Lemma 1 bound on vertex entries

    @property
    def within_bound(self) -> bool:
        return self.vertex_entries <= self.two_m and (
            self.p_number_entries <= self.vertex_entries
        )


class KPIndex:
    """The KP-Index of a graph: query in output-optimal time.

    Build once with :meth:`build` (runs Algorithm 2), then answer any
    (k,p)-core query with :meth:`query`.  For dynamic graphs wrap it in a
    :class:`repro.core.maintenance.KPIndexMaintainer`, which keeps it
    synchronized under edge insertions and deletions.
    """

    def __init__(self, arrays: Mapping[int, KArray], num_edges: int) -> None:
        self._arrays: dict[int, KArray] = dict(arrays)
        self._num_edges = num_edges

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph) -> "KPIndex":
        """Construct the index by full (k,p)-core decomposition."""
        return cls.from_decomposition(kp_core_decomposition(graph), graph.num_edges)

    @classmethod
    def from_decomposition(
        cls, decomposition: KPDecomposition, num_edges: int
    ) -> "KPIndex":
        arrays = {
            k: KArray.from_fixed_k(fixed)
            for k, fixed in decomposition.arrays.items()
        }
        return cls(arrays, num_edges)

    # ------------------------------------------------------------------
    @property
    def degeneracy(self) -> int:
        """``d(G)``: the largest ``k`` with a non-empty array."""
        return max((k for k, a in self._arrays.items() if len(a)), default=0)

    def array(self, k: int) -> KArray:
        """``A_k``; raises ``KeyError`` if ``k`` exceeds the degeneracy."""
        return self._arrays[k]

    def arrays(self) -> dict[int, KArray]:
        """Live view of all arrays keyed by ``k`` (maintenance internals)."""
        return self._arrays

    def adjust_num_edges(self, delta: int) -> None:
        """Keep the Lemma 1 edge count current under maintenance."""
        self._num_edges += delta

    def query(self, k: int, p: float) -> list[Vertex]:
        """Vertex set of ``C_{k,p}(G)`` — Algorithm 3 (kpCoreQuery).

        Returns the empty list when ``k`` exceeds the degeneracy or ``p``
        exceeds the largest p-number in ``A_k``.
        """
        if k < 1:
            raise ParameterError(f"degree threshold k must be >= 1, got {k}")
        check_p(p)
        array = self._arrays.get(k)
        if array is None:
            obs = get_collector()
            if obs is not None:
                obs.inc(names.INDEX_QUERIES)
                obs.inc(names.INDEX_EMPTY_QUERIES)
                obs.observe(names.INDEX_ANSWER_SIZE, 0)
            return []
        return array.query(p)

    def p_number(self, v: Vertex, k: int) -> float:
        """``pn(v, k, G)``; ``KeyError`` if ``v`` is outside the k-core."""
        array = self._arrays.get(k)
        if array is None:
            raise KeyError(f"no {k}-core in the indexed graph")
        return array.p_number(v)

    # ------------------------------------------------------------------
    def pn_maps(self) -> dict[int, dict[Vertex, float]]:
        """``{k: {vertex: pn}}`` — the index's semantic content.

        Two KP-Indexes of the same graph are interchangeable iff their
        ``pn_maps`` agree (deletion order within one p-level is arbitrary).
        """
        return {k: a.pn_map() for k, a in self._arrays.items() if len(a)}

    def semantically_equal(self, other: "KPIndex") -> bool:
        """Order-insensitive equality of index content.

        Exact-double p-number equality is the *point* of this method:
        identical rationals yield bit-identical doubles (see
        :mod:`repro.core.pvalue`), so dict equality is exact.
        """
        return self.pn_maps() == other.pn_maps()  # noqa: KP002

    def space_stats(self) -> IndexSpaceStats:
        """Sizes for the Lemma 1 space bound."""
        return IndexSpaceStats(
            vertex_entries=sum(len(a) for a in self._arrays.values()),
            p_number_entries=sum(
                len(a.level_values) for a in self._arrays.values()
            ),
            num_arrays=len(self._arrays),
            two_m=2 * self._num_edges,
        )

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexStateError`.

        Verifies per-array sorting (done by ``KArray``), the nesting
        ``V_{k+1} ⊆ V_k``, and the Lemma 1 space bound.
        """
        ks = sorted(k for k, a in self._arrays.items() if len(a))
        for smaller, larger in zip(ks, ks[1:]):
            if larger != smaller + 1:
                raise IndexStateError(
                    f"array for k={smaller + 1} missing while k={larger} exists"
                )
        for k in ks[:-1]:
            upper = self._arrays[k + 1].vertex_set()
            lower = self._arrays[k].vertex_set()
            if not upper <= lower:
                raise IndexStateError(
                    f"V_{k + 1} is not contained in V_{k}"
                )
        stats = self.space_stats()
        if not stats.within_bound:
            raise IndexStateError(
                f"space bound violated: {stats.vertex_entries} vertex entries "
                f"> 2m = {stats.two_m}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (vertex labels must be JSON-friendly)."""
        return {
            "num_edges": self._num_edges,
            "arrays": {
                str(k): {"vertices": a.vertices, "p_numbers": a.p_numbers}
                for k, a in self._arrays.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KPIndex":
        arrays = {
            int(k): KArray(
                k=int(k),
                vertices=list(entry["vertices"]),
                p_numbers=[float(x) for x in entry["p_numbers"]],
            )
            for k, entry in payload["arrays"].items()
        }
        return cls(arrays, int(payload["num_edges"]))

    def save(self, path: str) -> None:
        """Persist the index as JSON (vertex labels must be JSON-friendly)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "KPIndex":
        """Load an index previously written by :meth:`save`."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:
        stats = self.space_stats()
        return (
            f"KPIndex(d={self.degeneracy}, vertex_entries={stats.vertex_entries}, "
            f"p_entries={stats.p_number_entries})"
        )


def build_index(graph: Graph) -> KPIndex:
    """Convenience alias for :meth:`KPIndex.build`."""
    return KPIndex.build(graph)
