"""The paper's contribution: (k,p)-core computation, decomposition,
indexing, and dynamic maintenance.

Public surface:

* :func:`~repro.core.kpcore.kp_core` / :func:`~repro.core.kpcore.
  kp_core_vertices` — Algorithm 1 (kpCore), O(m),
* :func:`~repro.core.decomposition.kp_core_decomposition` — Algorithm 2
  (kpCoreDecom), O(d·m) p-numbers for every ``k``,
* :class:`~repro.core.index.KPIndex` — the O(m)-space KP-Index with
  output-optimal :meth:`~repro.core.index.KPIndex.query` (Algorithm 3),
* :class:`~repro.core.maintenance.KPIndexMaintainer` — Algorithms 4/5
  (kpIndexInsert / kpIndexDelete) for dynamic graphs,
* :mod:`~repro.core.hierarchy` — nested-core exploration for a fixed ``k``,
* :mod:`~repro.core.bounds` — the p-number upper/lower bounds of Sec. VI,
* :mod:`~repro.core.naive` — definition-literal oracles for testing.
"""

from repro.core.baseline_index import MaterializedIndex
from repro.core.bounds import BoundsCache, p_hat, p_tilde, scaled_h_index
from repro.core.communities import (
    Community,
    GridCell,
    kp_communities,
    kp_community_of,
    parameter_grid,
    strongest_community_parameters,
)
from repro.core.decomposition import (
    FixedKDecomposition,
    KPDecomposition,
    kp_core_decomposition,
    p_numbers_fixed_k,
)
from repro.core.hierarchy import PLevel, core_profile, nested_cores, p_levels
from repro.core.peel_engines import DEFAULT_ENGINE, available_engines
from repro.core.index import IndexSpaceStats, KArray, KPIndex, build_index
from repro.core.kpcore import (
    combined_thresholds,
    fraction,
    kp_core,
    kp_core_vertices,
    kp_core_vertices_compact,
    satisfies_kp_constraints,
)
from repro.core.maintenance import (
    KPIndexMaintainer,
    MaintenanceMode,
    MaintenanceStats,
)
from repro.core.pvalue import as_fraction, check_p, fraction_threshold

__all__ = [
    "kp_core",
    "kp_core_vertices",
    "kp_core_vertices_compact",
    "combined_thresholds",
    "fraction",
    "satisfies_kp_constraints",
    "kp_core_decomposition",
    "p_numbers_fixed_k",
    "DEFAULT_ENGINE",
    "available_engines",
    "FixedKDecomposition",
    "KPDecomposition",
    "KPIndex",
    "KArray",
    "IndexSpaceStats",
    "build_index",
    "KPIndexMaintainer",
    "MaintenanceMode",
    "MaintenanceStats",
    "p_hat",
    "p_tilde",
    "scaled_h_index",
    "BoundsCache",
    "MaterializedIndex",
    "Community",
    "GridCell",
    "kp_communities",
    "kp_community_of",
    "parameter_grid",
    "strongest_community_parameters",
    "PLevel",
    "p_levels",
    "nested_cores",
    "core_profile",
    "check_p",
    "fraction_threshold",
    "as_fraction",
]
