"""Process-parallel driver for the per-``k`` peels of Algorithm 2.

After core numbers are computed and neighbour lists sorted, the fixed-``k``
peels of the decomposition are mutually independent: each reads the frozen
:class:`~repro.graph.compact.CompactAdjacency` and the core-number array
and writes only its own ``(order, p_numbers)`` pair.  This module fans the
``k`` values of ``1..degeneracy`` out over a :mod:`multiprocessing` pool:

* the snapshot and core numbers are shipped **once per worker** through
  the pool initializer (the snapshot's typed-array CSR pickles compactly,
  see :meth:`CompactAdjacency.__reduce__`), not once per task;
* tasks are scheduled greedily, largest ``|V_k|`` first — array size is
  monotone non-increasing in ``k``, so this hands out the low, expensive
  ``k`` values before the long tail of tiny ones and keeps the pool's
  makespan near the optimum;
* results are merged keyed by ``k``, so the output is deterministic and
  identical to the serial run regardless of worker count or completion
  order.

Engine counters incremented inside worker processes die with them; the
parent re-derives the structural subset (rounds, peels, array sizes) from
the returned arrays and adds scheduling counters of its own, so profiles
of parallel runs stay comparable.
"""

from __future__ import annotations

import os
from multiprocessing.pool import Pool
from typing import Sequence

from repro.graph.compact import CompactAdjacency
from repro.obs import names
from repro.obs.instrumentation import get_collector

__all__ = ["default_workers", "k_core_sizes", "peel_all_k"]

#: Worker-process state, installed once by :func:`_init_worker`.  Module
#: globals (not closure state) so the initializer round-trips under every
#: multiprocessing start method, including ``spawn``.
_snapshot: CompactAdjacency | None = None
_core: list[int] | None = None
_engine_name: str = ""


def default_workers() -> int:
    """A sensible pool size: the machine's CPU count (at least 1)."""
    return os.cpu_count() or 1


def k_core_sizes(core: Sequence[int], degeneracy: int) -> list[int]:
    """``sizes[k] = |V_k|`` for ``k`` in ``0..degeneracy`` (suffix counts)."""
    counts = [0] * (degeneracy + 2)
    for c in core:
        counts[c] += 1
    sizes = [0] * (degeneracy + 1)
    running = 0
    for k in range(degeneracy, -1, -1):
        running += counts[k]
        sizes[k] = running
    return sizes


def _init_worker(snapshot: CompactAdjacency, core: list[int], engine: str) -> None:
    """Pool initializer: pin the shared read-only inputs in this process."""
    global _snapshot, _core, _engine_name
    _snapshot = snapshot
    _core = core
    _engine_name = engine


def _peel_task(k: int) -> tuple[int, list[int], list[float], int]:
    """One fixed-``k`` peel in a worker; returns ``(k, order, pns, pid)``."""
    from repro.core.peel_engines import get_engine

    assert _snapshot is not None and _core is not None
    order, p_numbers = get_engine(_engine_name)(_snapshot, _core, k)
    return k, order, p_numbers, os.getpid()


def peel_all_k(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    degeneracy: int,
    *,
    engine: str,
    workers: int,
) -> dict[int, tuple[list[int], list[float]]]:
    """Peel every ``k`` in ``1..degeneracy`` across a process pool.

    Returns ``{k: (order, p_numbers)}`` — byte-identical to running the
    selected engine serially for each ``k``.  ``workers`` is clamped to
    the number of tasks; callers guarantee ``workers >= 1`` and that the
    snapshot's neighbour lists are already rank-sorted.
    """
    sizes = k_core_sizes(core, degeneracy)
    ks = sorted(range(1, degeneracy + 1), key=lambda k: (-sizes[k], k))
    pool_size = min(workers, len(ks))
    results: dict[int, tuple[list[int], list[float]]] = {}
    tasks_per_pid: dict[int, int] = {}
    with Pool(
        processes=pool_size,
        initializer=_init_worker,
        initargs=(snapshot, list(core), engine),
    ) as pool:
        for k, order, p_numbers, pid in pool.imap_unordered(
            _peel_task, ks, chunksize=1
        ):
            results[k] = (order, p_numbers)
            tasks_per_pid[pid] = tasks_per_pid.get(pid, 0) + 1
    obs = get_collector()
    if obs is not None:
        # Structural engine-counter parity (the worker-side increments are
        # lost with the worker processes): one round batch per k, one peel
        # per array entry, one array-size sample per k.
        obs.add(names.DECOMP_ROUNDS, len(ks))
        for order, _ in results.values():
            obs.add(names.DECOMP_PEELS, len(order))
            obs.observe(names.DECOMP_ARRAY_SIZE, len(order))
        obs.add(names.DECOMP_PARALLEL_TASKS, len(ks))
        for count in tasks_per_pid.values():
            obs.observe(names.DECOMP_PARALLEL_WORKERS, count)
    return results
