"""Process-parallel driver for the per-``k`` peels of Algorithm 2.

After core numbers are computed and neighbour lists sorted, the fixed-``k``
peels of the decomposition are mutually independent: each reads the frozen
:class:`~repro.graph.compact.CompactAdjacency` and the core-number array
and writes only its own ``(order, p_numbers)`` pair.  This module fans the
``k`` values of ``1..degeneracy`` out over a :mod:`multiprocessing` pool:

* the snapshot and core numbers are shipped **once per worker** through
  the pool initializer (the snapshot's typed-array CSR pickles compactly,
  see :meth:`CompactAdjacency.__reduce__`), not once per task;
* scheduling is work-stealing over **cost-balanced chunks**: the ``k``
  values — ordered largest ``|V_k|`` first, which for the non-increasing
  core-size profile is ascending ``k`` — are packed into chunks of
  roughly equal total cost (:func:`_chunk_ks`), and idle workers pull the
  next chunk from the pool's shared queue.  The expensive low-``k``
  arrays go out first as singleton chunks, while the long tail of tiny
  arrays travels in batches, so neither stragglers (static
  pre-assignment) nor per-task dispatch overhead (``chunksize=1`` over
  hundreds of sub-millisecond peels) dominate the makespan;
* each worker builds its engine scratch
  (:func:`repro.core.peel_engines.make_scratch`) lazily on its first
  chunk and reuses it for every subsequent one — chunks reach a worker
  in ascending-``k`` order, so the scratch's incremental prefix-length
  sweep applies just as it does serially;
* results are merged keyed by ``k``, so the output is deterministic and
  identical to the serial run regardless of worker count or completion
  order.

Observability crosses the process boundary explicitly: when the parent
has a collector (``REPRO_OBS``) each chunk runs under a fresh
:class:`~repro.obs.instrumentation.Instrumentation`, ships its snapshot
back with the result, and the parent folds it in with
:meth:`~repro.obs.instrumentation.Instrumentation.merge` — so counters of
a parallel run equal the serial run's exactly (plus the scheduling
counters only parallel runs have).  When the parent is tracing
(``REPRO_TRACE``) the pool initializer carries the parent's
``(trace_id, span_id)`` context, each chunk records its spans under a
worker-local :class:`~repro.obs.trace.Tracer` parented to that context,
and the events ride home with the result to be
:meth:`~repro.obs.trace.Tracer.absorb`-ed into the parent buffer — one
coherent trace across processes.
"""

from __future__ import annotations

import os
from multiprocessing.pool import Pool
from typing import Any, Sequence

from repro.errors import ParameterError
from repro.graph.compact import CompactAdjacency
from repro.obs import names
from repro.obs.instrumentation import Instrumentation, get_collector, set_collector
from repro.obs.snapshot import MetricsSnapshot
from repro.obs.trace import Tracer, get_tracer, set_tracer

__all__ = ["default_workers", "k_core_sizes", "peel_all_k"]

#: Chunk-count multiplier: aim for ~this many chunks per worker so the
#: shared queue still has slack to rebalance when one chunk runs long.
_CHUNKS_PER_WORKER = 4

#: Worker-process state, installed once by :func:`_init_worker`.  Module
#: globals (not closure state) so the initializer round-trips under every
#: multiprocessing start method, including ``spawn``.
_snapshot: CompactAdjacency | None = None
_core: list[int] | None = None
_engine_name: str = ""
_obs_on: bool = False
#: Engine scratch, built lazily on the worker's first chunk and shared by
#: all of its chunks (the whole point of a per-worker cache).
_scratch: Any | None = None
_scratch_ready = False
#: One tracer per worker *process*, drained after every chunk — its
#: span-id counter keeps advancing across chunks, so ids stay unique per
#: pid even though each chunk ships its events separately.
_worker_tracer: Tracer | None = None


def default_workers() -> int:
    """A sensible pool size: the machine's CPU count (at least 1)."""
    return os.cpu_count() or 1


def k_core_sizes(core: Sequence[int], degeneracy: int) -> list[int]:
    """``sizes[k] = |V_k|`` for ``k`` in ``0..degeneracy`` (suffix counts)."""
    counts = [0] * (degeneracy + 2)
    for c in core:
        counts[c] += 1
    sizes = [0] * (degeneracy + 1)
    running = 0
    for k in range(degeneracy, -1, -1):
        running += counts[k]
        sizes[k] = running
    return sizes


def _chunk_ks(
    ks: Sequence[int], sizes: Sequence[int], pool_size: int
) -> list[list[int]]:
    """Pack ``ks`` (largest ``|V_k|`` first) into cost-balanced chunks.

    Peel cost is O(m_k), for which ``|V_k|`` is the available proxy.  The
    target chunk cost is ``total / (pool_size * _CHUNKS_PER_WORKER)``; a
    ``k`` whose own cost exceeds it becomes a singleton chunk (the big
    arrays must not queue behind each other), while consecutive small
    ``k`` values accumulate until the target is reached.  Order within
    and across chunks follows ``ks``, so workers pulling chunks from the
    shared queue each see an ascending-``k`` subsequence.
    """
    total = sum(sizes[k] for k in ks)
    target = max(1, -(-total // (max(1, pool_size) * _CHUNKS_PER_WORKER)))
    chunks: list[list[int]] = []
    current: list[int] = []
    current_cost = 0
    for k in ks:
        cost = max(1, sizes[k])
        if current and current_cost + cost > target:
            chunks.append(current)
            current = []
            current_cost = 0
        current.append(k)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def _init_worker(
    snapshot: CompactAdjacency,
    core: list[int],
    engine: str,
    obs_on: bool,
    trace_ctx: tuple[str, str | None] | None,
) -> None:
    """Pool initializer: pin the shared read-only inputs in this process."""
    global _snapshot, _core, _engine_name, _obs_on, _scratch, _scratch_ready
    global _worker_tracer
    _snapshot = snapshot
    _core = core
    _engine_name = engine
    _obs_on = obs_on
    _scratch = None
    _scratch_ready = False
    _worker_tracer = Tracer(context=trace_ctx) if trace_ctx is not None else None


def _worker_scratch() -> Any:
    """This worker's engine scratch, built on first use."""
    global _scratch, _scratch_ready
    if not _scratch_ready:
        from repro.core.peel_engines import make_scratch

        assert _snapshot is not None and _core is not None
        _scratch = make_scratch(_engine_name, _snapshot, _core)
        _scratch_ready = True
    return _scratch


def _peel_chunk(
    chunk: Sequence[int],
) -> tuple[
    list[tuple[int, list[int], list[float]]],
    int,
    dict[str, Any] | None,
    list[dict[str, Any]] | None,
]:
    """One chunk of fixed-``k`` peels in a worker.

    Returns ``(peeled, pid, metrics_payload, events_payload)`` where
    ``peeled`` is one ``(k, order, p_numbers)`` triple per ``k`` in the
    chunk; the payloads are ``None`` unless the parent asked for them
    through the initializer flags.
    """
    from repro.core.peel_engines import get_engine

    assert _snapshot is not None and _core is not None
    engine = get_engine(_engine_name)
    scratch = _worker_scratch()
    task_obs = Instrumentation() if _obs_on else None
    task_tracer = _worker_tracer
    previous_obs = set_collector(task_obs) if task_obs is not None else None
    previous_tracer = (
        set_tracer(task_tracer) if task_tracer is not None else None
    )
    try:
        peeled = [
            (k, *engine(_snapshot, _core, k, scratch=scratch)) for k in chunk
        ]
    finally:
        if task_obs is not None:
            set_collector(previous_obs)
        if task_tracer is not None:
            set_tracer(previous_tracer)
    metrics_payload = (
        task_obs.snapshot().to_dict() if task_obs is not None else None
    )
    if task_tracer is not None:
        events_payload = [event.to_dict() for event in task_tracer.events()]
        task_tracer.clear()
    else:
        events_payload = None
    return peeled, os.getpid(), metrics_payload, events_payload


def peel_all_k(
    snapshot: CompactAdjacency,
    core: Sequence[int],
    degeneracy: int,
    *,
    engine: str,
    workers: int,
    ks: Sequence[int] | None = None,
) -> dict[int, tuple[list[int], list[float]]]:
    """Peel every requested ``k`` across a process pool.

    By default peels all of ``1..degeneracy`` (Algorithm 2's parallel
    phase); pass ``ks`` to repair an arbitrary subset — the batched
    maintenance path (:meth:`KPIndexMaintainer.apply_batch`) fans its
    membership-churned arrays through here.  Returns
    ``{k: (order, p_numbers)}`` — byte-identical to running the selected
    engine serially for each ``k``.  ``workers`` is clamped to the number
    of tasks; callers guarantee ``workers >= 1`` and that the snapshot's
    neighbour lists are already rank-sorted.
    """
    obs = get_collector()
    tracer = get_tracer()
    trace_ctx = tracer.context() if tracer is not None else None
    sizes = k_core_sizes(core, degeneracy)
    selected = range(1, degeneracy + 1) if ks is None else ks
    for k in selected:
        if not 1 <= k <= degeneracy:
            raise ParameterError(
                f"requested k={k} outside 1..{degeneracy}"
            )
    ordered = sorted(selected, key=lambda k: (-sizes[k], k))
    if not ordered:
        return {}
    pool_size = min(workers, len(ordered))
    chunks = _chunk_ks(ordered, sizes, pool_size)
    results: dict[int, tuple[list[int], list[float]]] = {}
    tasks_per_pid: dict[int, int] = {}
    with Pool(
        processes=pool_size,
        initializer=_init_worker,
        initargs=(snapshot, list(core), engine, obs is not None, trace_ctx),
    ) as pool:
        for peeled, pid, metrics_payload, events_payload in (
            pool.imap_unordered(_peel_chunk, chunks, chunksize=1)
        ):
            for k, order, p_numbers in peeled:
                results[k] = (order, p_numbers)
            tasks_per_pid[pid] = tasks_per_pid.get(pid, 0) + len(peeled)
            if obs is not None and metrics_payload is not None:
                # Fold the worker's per-chunk counters in verbatim: the
                # engines record the same metrics they do serially, so
                # parallel profiles match serial ones exactly.
                obs.merge(MetricsSnapshot.from_dict(metrics_payload))
            if tracer is not None and events_payload is not None:
                tracer.absorb(events_payload)
    if obs is not None:
        obs.add(names.DECOMP_PARALLEL_TASKS, len(ordered))
        obs.add(names.DECOMP_PARALLEL_CHUNKS, len(chunks))
        for count in tasks_per_pid.values():
            obs.observe(names.DECOMP_PARALLEL_WORKERS, count)
    return results
