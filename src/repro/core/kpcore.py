"""(k,p)-core computation with given ``k`` and ``p`` — Algorithm 1 (kpCore).

The algorithm assigns every vertex the **combined threshold**
``t[v] = max(k, ceil(p * deg(v, G)))`` — which never changes during the
computation — and then peels exactly like a k-core computation: while some
vertex has fewer surviving neighbours than its threshold, delete it.  Total
work is O(m).

The peeling loop is literally the one used for the k-core
(:func:`repro.kcore.compute.k_core_vertices_compact` with a per-vertex
threshold array), which is why Fig. 11 finds kpCoreComp and kCoreComp
nearly indistinguishable in cost.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.contracts import verify_kp_core
from repro.errors import ParameterError
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.kcore.compute import k_core_vertices_compact
from repro.obs import names
from repro.obs.instrumentation import get_collector, maybe_span
from repro.core.pvalue import check_p, fraction_threshold, fraction_value

__all__ = [
    "combined_thresholds",
    "kp_core_vertices_compact",
    "kp_core_vertices",
    "kp_core",
    "fraction",
    "satisfies_kp_constraints",
]


def combined_thresholds(snapshot: CompactAdjacency, k: int, p: float) -> list[int]:
    """Per-vertex combined thresholds ``t[v]`` of Algorithm 1, line 1."""
    if k < 0:
        raise ParameterError(f"degree threshold k must be >= 0, got {k}")
    check_p(p)
    thresholds = [
        max(k, fraction_threshold(p, snapshot.degree(v)))
        for v in range(snapshot.num_vertices)
    ]
    obs = get_collector()
    if obs is not None:
        obs.add(names.KPCORE_THRESHOLDS_TOTAL, len(thresholds))
        obs.add(
            names.KPCORE_THRESHOLDS_FRACTION_DOMINANT,
            sum(1 for t in thresholds if t > k),
        )
    return thresholds


def kp_core_vertices_compact(
    snapshot: CompactAdjacency, k: int, p: float
) -> list[int]:
    """Internal ids of the (k,p)-core of a compact snapshot."""
    obs = get_collector()
    if obs is not None:
        obs.inc(names.KPCORE_CALLS)
    thresholds = combined_thresholds(snapshot, k, p)
    with maybe_span(names.KPCORE_SPAN_PEEL):
        return k_core_vertices_compact(snapshot, k, thresholds=thresholds)


@verify_kp_core
def kp_core_vertices(graph: Graph, k: int, p: float) -> set[Vertex]:
    """Vertex set of ``C_{k,p}(G)`` (possibly empty).

    Under ``REPRO_VERIFY=1`` the result is re-checked against
    Definition 3 (:func:`satisfies_kp_constraints`).  Under ``REPRO_OBS``
    the run records peel counters and a ``kpcore`` span with
    ``snapshot``/``peel`` children.
    """
    with maybe_span(names.KPCORE_SPAN):
        with maybe_span(names.KPCORE_SPAN_SNAPSHOT):
            snapshot = CompactAdjacency(graph)
        survivors = kp_core_vertices_compact(snapshot, k, p)
        return {snapshot.labels[v] for v in survivors}


def kp_core(graph: Graph, k: int, p: float) -> Graph:
    """The (k,p)-core of ``graph`` as an induced subgraph."""
    return graph.induced_subgraph(kp_core_vertices(graph, k, p))


def fraction(graph: Graph, subgraph_vertices: Iterable[Vertex], v: Vertex) -> float:
    """``frac(v, S, G) = deg(v, S) / deg(v, G)`` (Definition 2).

    ``subgraph_vertices`` is the vertex set of ``S``; ``v`` must have at
    least one neighbour in ``G``.
    """
    members = (
        subgraph_vertices
        if isinstance(subgraph_vertices, (set, frozenset, dict))
        else set(subgraph_vertices)
    )
    inside = sum(1 for w in graph.neighbors(v) if w in members)
    return fraction_value(inside, graph.degree(v))


def satisfies_kp_constraints(
    graph: Graph, subgraph_vertices: set[Vertex], k: int, p: float
) -> bool:
    """Check Definition 3's constraints (i) and (ii) for every member.

    A test/verification helper: returns whether every vertex of the
    candidate subgraph has at least ``k`` members as neighbours and keeps at
    least a ``p`` fraction of its global neighbours inside.
    """
    check_p(p)
    for v in subgraph_vertices:
        inside = sum(1 for w in graph.neighbors(v) if w in subgraph_vertices)
        if inside < k:
            return False
        if inside < fraction_threshold(p, graph.degree(v)):
            return False
    return True
