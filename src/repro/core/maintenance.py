"""KP-Index maintenance under edge insertion/deletion (Sec. VI, Algs. 4-5).

:class:`KPIndexMaintainer` owns a graph, a :class:`~repro.kcore.
maintenance.CoreMaintainer` (incremental core numbers) and a
:class:`~repro.core.index.KPIndex`, and keeps the index exact under single
edge updates.  Per update it:

1. applies the edge to the graph and incrementally repairs core numbers,
2. skips every ``A_k`` with ``k`` above ``max(cn(u), cn(v))``
   (Theorem 2 for insertion, Theorem 7 for deletion),
3. for each remaining ``k``, derives a p-number window ``[p_-, p_+]`` from
   the case analysis of Algorithms 4/5 (Theorems 3-5, 8, 9, Defs. 5-7) —
   vertices with old p-number outside the window are untouched,
4. re-peels only the induced subgraph on the windowed vertices, stopping as
   soon as the peel level exceeds ``p_+`` (the survivors keep their old
   p-numbers), and splices the recomputed segment back into ``A_k``.

Theorem 6 supplies an extra early-exit: when only the larger-core endpoint
is in the k-core and a support bound certifies its p-number cannot drop,
``A_k`` is skipped without any re-peel.

Two modes support the ablation benchmark: ``RANGE`` (the full machinery
above, the paper's algorithm) and ``FULL_K`` (skip rules only; every
affected ``A_k`` is re-peeled in full).  Both are property-tested for exact
agreement with from-scratch decomposition.

:meth:`KPIndexMaintainer.apply_batch` amortizes a *burst* of updates: the
batch is coalesced (insert+delete pairs of one edge cancel), the per-edge
windows above are unioned per affected ``A_k``, and each array re-peels
exactly **once** per batch — membership-stable arrays through the unioned
``[p_-, p_+]`` window, membership-churned arrays through one shared
:class:`~repro.graph.compact.CompactAdjacency` snapshot and the Algorithm 2
peel engines (optionally fanned across the ``repro.core.parallel`` worker
pool).  Version counters consequently bump once per touched array per
batch, which is what lets the serving cache invalidate once instead of
once per edge (see docs/algorithms.md, "Batched maintenance").
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from bisect import bisect_left
from heapq import heappush, heappop, heapify
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.devtools.contracts import (
    verify_batch_state,
    verify_maintainer_query,
    verify_maintainer_update,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.kcore.order_maintenance import OrderBasedCoreMaintainer
from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    IndexStateError,
    ParameterError,
    SelfLoopError,
)
from repro.graph.adjacency import Graph, Vertex
from repro.graph.compact import CompactAdjacency
from repro.kcore.maintenance import CoreMaintainer
from repro.obs import names as metric
from repro.obs.instrumentation import Instrumentation, get_collector, maybe_span
from repro.core.bounds import (
    BoundsCache,
    degree_in,
    deletion_pair_bound,
    insertion_support_bound,
)
from repro.core.index import KArray, KPIndex
from repro.core.parallel import peel_all_k
from repro.core.peel_engines import DEFAULT_ENGINE, get_engine, make_scratch
from repro.core.pvalue import fraction_value

__all__ = [
    "MaintenanceMode",
    "MaintenanceStats",
    "BatchReport",
    "coalesce_updates",
    "KPIndexMaintainer",
]


class MaintenanceMode(enum.Enum):
    """How aggressively an update narrows the re-peeled region."""

    #: Theorems 2/7 skip rules only; affected arrays re-peel in full.
    FULL_K = "full-k"
    #: Additionally narrow each affected array to the ``[p_-, p_+]`` window
    #: and early-exit via Theorem 6 — the paper's Algorithms 4/5.
    RANGE = "range"


@dataclass
class MaintenanceStats:
    """Work counters for the efficiency/ablation benchmarks."""

    insertions: int = 0
    deletions: int = 0
    arrays_examined: int = 0
    arrays_skipped_theorem6: int = 0
    arrays_updated: int = 0
    vertices_repeeled: int = 0
    early_stops: int = 0
    fallback_rebuilds: int = 0
    batches: int = 0
    batch_cancelled_pairs: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class BatchReport:
    """What one :meth:`KPIndexMaintainer.apply_batch` call did.

    ``windowed_repeels``/``full_repeels`` report the batch planner's
    classification and are both 0 for a coalesced batch of one update,
    which delegates to the single-edge algorithms verbatim.
    """

    applied: int
    cancelled_pairs: int
    arrays_repeeled: int
    windowed_repeels: int = 0
    full_repeels: int = 0


@dataclass
class _KTouch:
    """Per-``A_k`` accumulator over one coalesced batch."""

    #: Every batch-edge endpoint whose op registered at this k — exactly
    #: the vertices whose degree may differ between the pre- and
    #: post-batch graph while sitting in (either version of) the k-core.
    endpoints: set[Vertex] = field(default_factory=set)
    #: Net membership churn of the k-core across the batch.
    joined: set[Vertex] = field(default_factory=set)
    left: set[Vertex] = field(default_factory=set)
    #: True as soon as *any* promote/demote event fired at this k, even if
    #: a later opposite event cancelled it: a mid-batch membership dip
    #: breaks the endpoint-registration invariant the windowed path relies
    #: on (an op only registers at k when an endpoint's core number is
    #: >= k *at that moment*), so such an array re-peels in full.
    membership_changed: bool = False


def coalesce_updates(
    graph: Graph, updates: Iterable[tuple[str, Vertex, Vertex]]
) -> tuple[list[tuple[str, Vertex, Vertex]], int]:
    """Validate a mixed batch and reduce it to net per-edge operations.

    Each edge keeps at most one net op: an insert+delete pair on the same
    edge (in either order) cancels outright, and the whole op sequence is
    validated against the *simulated* edge presence before anything
    mutates — a self-loop, a double insert, or a delete of an absent edge
    raises with no state change, which is what makes
    :meth:`KPIndexMaintainer.apply_batch` all-or-nothing in memory.
    Returns the net ops in first-touch order (first-seen endpoint
    orientation) plus the number of cancelled insert+delete pairs.
    """
    initial: dict[frozenset[Vertex], bool] = {}
    current: dict[frozenset[Vertex], bool] = {}
    orientation: dict[frozenset[Vertex], tuple[Vertex, Vertex]] = {}
    op_counts: dict[frozenset[Vertex], int] = {}
    order: list[frozenset[Vertex]] = []
    for op, u, v in updates:
        if op not in ("insert", "delete"):
            raise ParameterError(
                f"unknown update op {op!r} (expected 'insert' or 'delete')"
            )
        if u == v:
            raise SelfLoopError(u)
        edge = frozenset((u, v))
        if edge not in current:
            present = graph.has_edge(u, v)
            initial[edge] = present
            current[edge] = present
            orientation[edge] = (u, v)
            op_counts[edge] = 0
            order.append(edge)
        op_counts[edge] += 1
        if op == "insert":
            if current[edge]:
                raise EdgeExistsError(u, v)
            current[edge] = True
        else:
            if not current[edge]:
                raise EdgeNotFoundError(u, v)
            current[edge] = False
    net: list[tuple[str, Vertex, Vertex]] = []
    cancelled = 0
    for edge in order:
        u, v = orientation[edge]
        surviving = 0 if current[edge] == initial[edge] else 1
        cancelled += (op_counts[edge] - surviving) // 2
        if surviving:
            net.append(("insert" if current[edge] else "delete", u, v))
    return net, cancelled


@dataclass
class _PeelResult:
    order: list[Vertex] = field(default_factory=list)
    p_numbers: list[float] = field(default_factory=list)
    tail: list[Vertex] = field(default_factory=list)
    stopped_early: bool = False


class KPIndexMaintainer:
    """Keeps a :class:`KPIndex` exact while its graph receives edge updates.

    Parameters
    ----------
    graph:
        The graph to index; the maintainer takes ownership — mutate it only
        through :meth:`insert_edge` / :meth:`delete_edge`.
    mode:
        See :class:`MaintenanceMode`.
    strict:
        When true, internal consistency violations raise
        :class:`~repro.errors.IndexStateError` instead of triggering a
        defensive full re-peel of the affected array.  Tests run strict.
    core_backend:
        Which incremental core-number algorithm repairs ``cn`` values:
        ``"traversal"`` (the subcore algorithm of [18], default) or
        ``"order"`` (the k-order candidate walks of [30], see
        :mod:`repro.kcore.order_maintenance`).  Both are exact; the knob
        exists for the ablation benches.
    index:
        An already-built :class:`KPIndex` of exactly ``graph`` — a loaded
        checkpoint in the durability layer (:mod:`repro.service`) — to
        resume from instead of rebuilding with Algorithm 2.  The caller
        is responsible for the graph/index pairing (the service layer
        verifies it via graph fingerprints); the index is structurally
        :meth:`~KPIndex.validate`-d here.
    """

    def __init__(
        self,
        graph: Graph,
        mode: MaintenanceMode = MaintenanceMode.RANGE,
        strict: bool = False,
        core_backend: str = "traversal",
        index: KPIndex | None = None,
    ) -> None:
        self.graph = graph
        self.mode = mode
        self.strict = strict
        #: Write-ahead hooks: each callable receives ``(op, u, v)`` with
        #: ``op`` in ``{"insert", "delete"}`` *before* the update is
        #: applied — the journaling point of :mod:`repro.service`.  A hook
        #: that raises aborts the update before any state changes.
        self.update_hooks: list[Callable[[str, Vertex, Vertex], None]] = []
        #: Batch write-ahead hooks: each callable receives the *coalesced*
        #: net op list once per :meth:`apply_batch`, after validation and
        #: before any mutation — the atomic-group journaling point of
        #: :class:`repro.service.durable.DurableMaintainer`.  ``apply_batch``
        #: deliberately does **not** fire the per-edge ``update_hooks``
        #: (a batch must journal as one record, not be double-logged).
        self.batch_hooks: list[
            Callable[[Sequence[tuple[str, Vertex, Vertex]]], None]
        ] = []
        self._cores: CoreMaintainer | OrderBasedCoreMaintainer
        if core_backend == "traversal":
            self._cores = CoreMaintainer(graph)
        elif core_backend == "order":
            from repro.kcore.order_maintenance import OrderBasedCoreMaintainer

            self._cores = OrderBasedCoreMaintainer(graph)
        else:
            raise ParameterError(
                f"unknown core_backend {core_backend!r} "
                "(expected 'traversal' or 'order')"
            )
        if index is None:
            self.index = KPIndex.build(graph)
        else:
            index.validate()
            self.index = index
        self.stats = MaintenanceStats()

    def _fire_update_hooks(self, op: str, u: Vertex, v: Vertex) -> None:
        for hook in self.update_hooks:
            hook(op, u, v)

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    def core_number(self, v: Vertex) -> int:
        return self._cores.core_number(v)

    @verify_maintainer_query
    def query(self, k: int, p: float) -> list[Vertex]:
        """Answer a (k,p)-core query on the current graph.

        Under ``REPRO_VERIFY=1`` the answer is compared against a
        from-scratch :func:`repro.core.kpcore.kp_core_vertices` run.
        """
        return self.index.query(k, p)

    @verify_maintainer_query
    def query_slice(self, k: int, p: float) -> tuple[Vertex, ...]:
        """The (k,p)-core answer as the index's stored tuple (shared).

        The serving hot path: no per-query list build.  Verified against
        from-scratch kpCore under ``REPRO_VERIFY=1`` like :meth:`query`.
        """
        return self.index.query_slice(k, p)

    # ------------------------------------------------------------------
    # vertex dynamics (Sec. VI preamble): reduce to edge updates
    # ------------------------------------------------------------------
    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> None:
        """Insert a vertex and then each of its incident edges.

        Following the paper, a fresh vertex starts with ``cn = 0`` and
        ``pn = 0`` everywhere; every incident edge is handled by
        :meth:`insert_edge`.
        """
        self.graph.add_vertex(v)
        self._cores.insert_vertex(v)
        for w in neighbors:
            self.insert_edge(v, w)

    def delete_vertex(self, v: Vertex) -> None:
        """Delete ``v`` by removing its incident edges one at a time."""
        for w in list(self.graph.neighbors(v)):
            self.delete_edge(v, w)
        self._cores.delete_vertex(v)
        array = self.index.arrays().get(1)
        if array is not None and array.contains(v):
            array.vertices = [w for w in array.vertices if w != v]
            array.p_numbers = [1.0] * len(array.vertices)
            array._rebuild_levels()
            self.index.bump_version(1)

    def apply_updates(
        self,
        insertions: Iterable[tuple[Vertex, Vertex]] = (),
        deletions: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        """Apply a batch of edge updates (deletions first, then insertions).

        Convenience wrapper over the single-edge algorithms; the index is
        exact after every intermediate step, so a failure mid-batch leaves
        a consistent (partially updated) state.
        """
        for u, v in deletions:
            self.delete_edge(u, v)
        for u, v in insertions:
            self.insert_edge(u, v)

    # ------------------------------------------------------------------
    # batched maintenance: one re-peel per affected A_k
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        updates: Iterable[tuple[str, Vertex, Vertex]],
        *,
        engine: str = DEFAULT_ENGINE,
        workers: int = 1,
    ) -> BatchReport:
        """Apply a mixed batch of ``(op, u, v)`` updates, coalesced.

        The batch is validated and coalesced first
        (:func:`coalesce_updates`) — an invalid op sequence raises before
        anything mutates, and insert+delete pairs of the same edge cancel
        without touching the index at all.  Every surviving update is then
        applied to the graph/core numbers, and each affected ``A_k``
        re-peels exactly **once**:

        * membership-stable arrays re-peel the *union* of the per-edge
          Thm. 3-5/8/9 windows ``[p_-, p_+]`` (and are skipped outright
          when the unioned support bound meets the unioned cap — the
          batched form of Theorem 6);
        * arrays whose k-core membership churned re-peel in full through
          one shared :class:`CompactAdjacency` snapshot and the selected
          Algorithm 2 peel ``engine`` (scratch reused across ks;
          ``workers > 1`` fans these across the process pool).

        Each touched array bumps its version once per batch, so serving
        caches invalidate once instead of once per edge.  A coalesced
        batch of exactly one update delegates to the single-edge
        Algorithm 4/5 code path verbatim (same windows, same Theorem 6
        skips, same version bumps).
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        get_engine(engine)  # validate the name before any mutation
        ops, cancelled = coalesce_updates(self.graph, updates)
        self.stats.batches += 1
        self.stats.batch_cancelled_pairs += cancelled
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.MAINT_BATCH_BATCHES)
            obs.add(metric.MAINT_BATCH_UPDATES, len(ops))
            obs.add(metric.MAINT_BATCH_CANCELLED, cancelled)
        if not ops:
            return BatchReport(0, cancelled, 0)
        for hook in self.batch_hooks:
            hook(ops)
        before_updated = self.stats.arrays_updated
        if len(ops) == 1:
            op, u, v = ops[0]
            if op == "insert":
                with maybe_span(metric.MAINT_SPAN_INSERT):
                    self._insert_edge_impl(u, v)
            else:
                with maybe_span(metric.MAINT_SPAN_DELETE):
                    self._delete_edge_impl(u, v)
            verify_batch_state(self, (u, v))
            return BatchReport(
                1, cancelled, self.stats.arrays_updated - before_updated
            )
        with maybe_span(metric.MAINT_SPAN_BATCH):
            windowed, full = self._apply_batch_impl(ops, engine, workers)
        verify_batch_state(
            self, tuple({w for _, u, v in ops for w in (u, v)})
        )
        return BatchReport(
            applied=len(ops),
            cancelled_pairs=cancelled,
            arrays_repeeled=self.stats.arrays_updated - before_updated,
            windowed_repeels=windowed,
            full_repeels=full,
        )

    def _apply_batch_impl(
        self,
        ops: Sequence[tuple[str, Vertex, Vertex]],
        engine: str,
        workers: int,
    ) -> tuple[int, int]:
        """Apply coalesced ``ops``; returns (windowed, full) re-peel counts."""
        obs = get_collector()
        touched: dict[int, _KTouch] = {}

        def touch(k: int) -> _KTouch:
            t = touched.get(k)
            if t is None:
                t = _KTouch()
                touched[k] = t
            return t

        for op, u, v in ops:
            if op == "insert":
                cn_old_u = self._cores.core_number_or(u)
                cn_old_v = self._cores.core_number_or(v)
                promoted = self._cores.insert_edge(u, v)
                self.stats.insertions += 1
                self.index.adjust_num_edges(+1)
                low = min(cn_old_u, cn_old_v)
                k_changed = low + 1 if promoted else None
                movers = promoted
                k_max = max(
                    self._cores.core_number(u), self._cores.core_number(v)
                )  # Theorem 2
            else:
                cn_old_u = self._cores.core_number(u)
                cn_old_v = self._cores.core_number(v)
                movers = self._cores.delete_edge(u, v)
                self.stats.deletions += 1
                self.index.adjust_num_edges(-1)
                low = min(cn_old_u, cn_old_v)
                k_changed = low if movers else None
                k_max = max(cn_old_u, cn_old_v)  # Theorem 7
            for k in range(2, k_max + 1):
                touch(k).endpoints.update((u, v))
            if k_changed is not None and k_changed >= 2:
                t = touch(k_changed)
                t.membership_changed = True
                if op == "insert":
                    for w in movers:
                        if w in t.left:
                            t.left.discard(w)
                        else:
                            t.joined.add(w)
                else:
                    for w in movers:
                        if w in t.joined:
                            t.joined.discard(w)
                        else:
                            t.left.add(w)

        self._update_a1_after_batch(ops)

        windowed_plans: list[tuple[KArray, float, float]] = []
        full_ks: list[int] = []
        for k in sorted(touched):
            t = touched[k]
            self.stats.arrays_examined += 1
            if obs is not None:
                obs.inc(metric.MAINT_ARRAYS_EXAMINED)
            array = self._ensure_array(k)
            if self.mode is MaintenanceMode.FULL_K or t.membership_changed:
                full_ks.append(k)
                continue
            plan = self._batch_window(array, t)
            if plan is None:
                # Batched Theorem 6: the unioned window is empty, so the
                # array provably cannot change — no re-peel, no bump.
                self.stats.arrays_skipped_theorem6 += 1
                if obs is not None:
                    obs.inc(metric.MAINT_THM6_SKIPS)
                continue
            p_minus, p_plus = plan
            if obs is not None:
                obs.inc(metric.MAINT_BATCH_WINDOW_UNIONS)
                self._record_window(obs, p_minus, p_plus)
            windowed_plans.append((array, p_minus, p_plus))
        for array, p_minus, p_plus in windowed_plans:
            self._repeel_and_splice(array, None, p_minus, p_plus, set())
        if full_ks:
            self._repeel_full_arrays(full_ks, engine, workers)
        if obs is not None:
            obs.add(metric.MAINT_BATCH_FULL_REPEELS, len(full_ks))
            obs.add(
                metric.MAINT_BATCH_ARRAYS,
                len(full_ks) + len(windowed_plans),
            )
        return len(windowed_plans), len(full_ks)

    def _batch_window(
        self, array: KArray, t: _KTouch
    ) -> tuple[float, float] | None:
        """The unioned ``[p_-, p_+]`` window of one membership-stable array.

        ``p_+`` (Thms. 4/9 unioned): for ``p0`` above every endpoint's old
        p-number, ``C_{k,p0}(G)`` avoids every batch edge and stays valid
        in the post-batch graph ``G_B``; for ``p0`` above every
        member-endpoint's ``p̃`` (computed on ``G_B``), ``C_{k,p0}(G_B)``
        avoids every endpoint and stays valid in ``G`` — above the max of
        both, the two cores coincide and the suffix is untouched.

        ``p_-`` (Thms. 3/5/8 + Def. 7 unioned, clamped): with ``p1`` the
        smallest member-endpoint old p-number, ``C = C_{k,p1}(G)`` is its
        own witness on ``G_B`` — non-endpoint members keep their degrees
        (every degree-changed k-core vertex is a registered endpoint),
        and member endpoints are re-checked explicitly.  Every member of
        ``C`` keeps ``pn >= p_-``, so the prefix below ``p_-`` is
        identical.  Returns ``None`` when ``p_- >= p_+``: the window is
        empty and the array provably cannot change (batched Theorem 6).
        """
        members = array.members_view()
        bounds = BoundsCache(self.graph, members)
        graph = self.graph
        p_plus = 0.0
        inside: list[Vertex] = []
        for x in t.endpoints:
            pn_old = array.p_number_or(x, 0.0)
            if pn_old > p_plus:
                p_plus = pn_old
            if x in members:
                inside.append(x)
                cap = bounds.p_tilde(x)
                if cap > p_plus:
                    p_plus = cap
        if not inside:
            return 0.0, p_plus
        p1 = min(array.p_number(x) for x in inside)
        witness = set(array.query(p1))
        p_minus = p1
        for x in inside:
            dx = degree_in(graph, witness, x)
            if dx < array.k:
                p_minus = 0.0
                break
            fx = fraction_value(dx, graph.degree(x))
            if fx < p_minus:
                p_minus = fx
        if p_minus >= p_plus and p_plus > 0.0:
            return None
        return p_minus, p_plus

    def _repeel_full_arrays(
        self, ks: Sequence[int], engine: str, workers: int
    ) -> None:
        """Re-peel each ``A_k`` in ``ks`` from scratch with a peel engine.

        One :class:`CompactAdjacency` snapshot of the live graph is built
        per batch and shared by every array (and, with ``workers > 1``,
        shipped once per worker through the pool initializer), so the
        per-array marginal cost is the engine peel itself — the same
        kernels Algorithm 2 runs, scratch reused across the ks.
        """
        obs = get_collector()
        snapshot = CompactAdjacency(self.graph)
        cn = self._cores.core_numbers()
        core = [cn.get(label, 0) for label in snapshot.labels]
        snapshot.sort_neighbors_by_rank_desc(core)
        if workers > 1 and len(ks) > 1:
            peeled = peel_all_k(
                snapshot,
                core,
                max(ks),
                engine=engine,
                workers=workers,
                ks=ks,
            )
        else:
            engine_fn = get_engine(engine)
            scratch = make_scratch(engine, snapshot, core)
            peeled = {
                k: engine_fn(snapshot, core, k, scratch=scratch) for k in ks
            }
        labels = snapshot.labels
        arrays = self.index.arrays()
        for k in ks:
            order, p_numbers = peeled[k]
            array = arrays[k]
            # Bump before touching the array — the same discipline as
            # _repeel_and_splice: a conservative bump only costs cache
            # entries, it can never let a stale answer survive.
            self.index.bump_version(k)
            array.vertices = [labels[i] for i in order]
            array.p_numbers = list(p_numbers)
            array._rebuild_levels()
            self.stats.arrays_updated += 1
            self.stats.vertices_repeeled += len(order)
            if obs is not None:
                obs.inc(metric.MAINT_ARRAYS_REPEELED)
                obs.add(metric.MAINT_VERTICES_REPEELED, len(order))

    def _update_a1_after_batch(
        self, ops: Sequence[tuple[str, Vertex, Vertex]]
    ) -> None:
        """One-shot A_1 bookkeeping for a whole batch (single bump).

        Runs after every graph mutation of the batch: A_1 membership is
        purely degree-based (every non-isolated vertex, pn 1.0), so the
        final graph decides the adds and drops in one pass.
        """
        endpoints = {w for _, u, v in ops for w in (u, v)}
        if not endpoints:
            return
        array = self._ensure_array(1)
        graph = self.graph
        drop = {w for w in endpoints if graph.degree(w) == 0}
        added: set[Vertex] = set()
        add: list[Vertex] = []
        for _, u, v in ops:
            for w in (u, v):
                if w in drop or w in added or array.contains(w):
                    continue
                added.add(w)
                add.append(w)
        if not drop.intersection(array.members_view()) and not add:
            return
        if drop:
            array.vertices = [w for w in array.vertices if w not in drop]
        array.vertices.extend(add)
        array.p_numbers = [1.0] * len(array.vertices)
        array._rebuild_levels()
        self.index.bump_version(1)

    # ------------------------------------------------------------------
    # edge insertion — Algorithm 4 (kpIndexInsert)
    # ------------------------------------------------------------------
    @verify_maintainer_update
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert ``(u, v)`` and repair the index.

        Under ``REPRO_OBS`` the update records one counter per theorem it
        fires (Thms. 2-6) plus the ``[p_-, p_+]`` windows it re-peels.
        """
        self._fire_update_hooks("insert", u, v)
        with maybe_span(metric.MAINT_SPAN_INSERT):
            self._insert_edge_impl(u, v)

    def _insert_edge_impl(self, u: Vertex, v: Vertex) -> None:
        obs = get_collector()
        cn_old_u = self._cores.core_number_or(u)
        cn_old_v = self._cores.core_number_or(v)
        promoted = self._cores.insert_edge(u, v)  # graph is now G+
        self.stats.insertions += 1
        self.index.adjust_num_edges(+1)
        self._update_a1_after_insert(u, v)

        low, high = sorted((cn_old_u, cn_old_v))
        small, large = (u, v) if cn_old_u <= cn_old_v else (v, u)
        k_changed = low + 1 if promoted else None
        k_max = max(self._cores.core_number(u), self._cores.core_number(v))
        if obs is not None:
            # Theorem 2: every A_k with k > max(cn(u), cn(v)) is provably
            # untouched — count how many the k-range cut skips outright.
            obs.add(
                metric.MAINT_THM2_SKIPS,
                max(0, self.index.degeneracy - max(k_max, 1)),
            )

        for k in range(2, k_max + 1):
            self.stats.arrays_examined += 1
            if obs is not None:
                obs.inc(metric.MAINT_ARRAYS_EXAMINED)
            array = self._ensure_array(k)
            if self.mode is MaintenanceMode.FULL_K:
                # Promotions only enter the (low+1)-core; other arrays keep
                # their membership and are merely re-peeled.
                joining = promoted if k == k_changed else set()
                members = self._current_members(array, k, joining, set())
                self._repeel_and_splice(
                    array, members, 0.0, 1.0, new_members=set(members)
                )
                continue
            if k == k_changed:
                # Minor case: `promoted` just joined this k-core.  Levels
                # above every endpoint bound are unchanged: for p0 beyond
                # the old p-numbers, C_{k,p0}(G) avoids the new edge and
                # stays valid in G+; beyond both p̃ bounds, C_{k,p0}(G+)
                # avoids both endpoints and stays valid in G.
                members = self._current_members(array, k, promoted, set())
                bounds = BoundsCache(self.graph, members)
                p_plus = max(
                    array.p_number_or(u, 0.0),
                    array.p_number_or(v, 0.0),
                    bounds.p_tilde(u),
                    bounds.p_tilde(v),
                )
                if obs is not None:
                    obs.inc(metric.MAINT_MINOR_CASES)
                    self._record_window(obs, 0.0, p_plus)
                self._repeel_and_splice(
                    array, members, 0.0, p_plus, new_members=set(promoted)
                )
            elif k <= low:
                # Case 1.1: both endpoints are in the (unchanged) k-core;
                # membership tests run against the array's own p-number
                # map, avoiding an O(|V_k|) set build.
                pn_u = array.p_number_or(u, 0.0)
                pn_v = array.p_number_or(v, 0.0)
                p_minus = min(pn_u, pn_v)  # Theorem 3
                bounds = BoundsCache(self.graph, array.members_view())
                p_plus = max(  # Theorem 4
                    min(bounds.p_tilde(u), bounds.p_tilde(v)),
                    pn_u,
                    pn_v,
                )
                if obs is not None:
                    obs.inc(metric.MAINT_THM3_WINDOWS)
                    obs.inc(metric.MAINT_THM4_WINDOWS)
                    self._record_window(obs, p_minus, p_plus)
                self._repeel_and_splice(array, None, p_minus, p_plus, set())
            else:
                # Case 1.2: cn(small) < k <= cn(large); only `large` is in
                # the k-core and its p-number can only decrease.
                p1 = array.p_number_or(large, 0.0)
                core_at_p1 = set(array.query(p1))
                p_star = insertion_support_bound(self.graph, core_at_p1, large, p1)
                if p_star >= p1:  # Theorem 6: A_k provably unchanged
                    self.stats.arrays_skipped_theorem6 += 1
                    if obs is not None:
                        obs.inc(metric.MAINT_THM6_SKIPS)
                    continue
                if obs is not None:
                    obs.inc(metric.MAINT_THM5_WINDOWS)
                    self._record_window(obs, p_star, p1)
                self._repeel_and_splice(array, None, p_star, p1, set())

    # ------------------------------------------------------------------
    # edge deletion — Algorithm 5 (kpIndexDelete)
    # ------------------------------------------------------------------
    @verify_maintainer_update
    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete ``(u, v)`` and repair the index.

        Under ``REPRO_OBS`` the update records one counter per theorem it
        fires (Thms. 7-9) plus the ``[p_-, p_+]`` windows it re-peels.
        """
        self._fire_update_hooks("delete", u, v)
        with maybe_span(metric.MAINT_SPAN_DELETE):
            self._delete_edge_impl(u, v)

    def _delete_edge_impl(self, u: Vertex, v: Vertex) -> None:
        obs = get_collector()
        if not self.graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        cn_old_u = self._cores.core_number(u)
        cn_old_v = self._cores.core_number(v)
        demoted = self._cores.delete_edge(u, v)  # graph is now G-
        self.stats.deletions += 1
        self.index.adjust_num_edges(-1)
        self._update_a1_after_delete(u, v)

        low, high = sorted((cn_old_u, cn_old_v))
        large = v if cn_old_v >= cn_old_u else u
        k_changed = low if demoted else None
        k_max = high  # Theorem 7
        if obs is not None:
            # Theorem 7: arrays above both old core numbers are untouched.
            obs.add(
                metric.MAINT_THM7_SKIPS,
                max(0, self.index.degeneracy - max(k_max, 1)),
            )

        for k in range(2, k_max + 1):
            self.stats.arrays_examined += 1
            if obs is not None:
                obs.inc(metric.MAINT_ARRAYS_EXAMINED)
            array = self._ensure_array(k)
            if self.mode is MaintenanceMode.FULL_K:
                # Demotions only leave the low-core; other arrays keep
                # their membership and are merely re-peeled.
                leaving = demoted if k == k_changed else set()
                members = self._current_members(array, k, set(), leaving)
                self._repeel_and_splice(
                    array, members, 0.0, 1.0, new_members=set(members)
                )
                continue
            if k == k_changed:
                # Minor case: `demoted` just left this k-core.  Unlike the
                # paper's Sec. VI-B, the cap must also dominate the *old*
                # endpoint p-numbers: for p0 beyond them, C_{k,p0}(G)
                # avoids the removed edge and is still a valid core of G-.
                members = self._current_members(array, k, set(), demoted)
                bounds = BoundsCache(self.graph, members)
                candidates = [
                    array.p_number_or(u, 0.0),
                    array.p_number_or(v, 0.0),
                ]
                if u in members:
                    candidates.append(bounds.p_tilde(u))
                if v in members:
                    candidates.append(bounds.p_tilde(v))
                if obs is not None:
                    obs.inc(metric.MAINT_MINOR_CASES)
                    self._record_window(obs, 0.0, max(candidates))
                self._repeel_and_splice(
                    array, members, 0.0, max(candidates), set()
                )
            elif k <= low:
                # Major case, both endpoints in the k-core (Thm. 8 / Def. 7
                # for p_-, via the sound pair bound; Thm. 9 for p_+).
                pn_u = array.p_number(u)
                pn_v = array.p_number(v)
                p1 = min(pn_u, pn_v)
                p_minus = deletion_pair_bound(
                    self.graph, set(array.query(p1)), u, v, k, p1
                )
                # Thm. 9 widened by the old endpoint p-numbers (see the
                # minor-case comment): both are needed for levels where
                # C_{k,p0}(G) must avoid the removed edge.
                bounds = BoundsCache(self.graph, array.members_view())
                p_plus = max(bounds.p_tilde(u), bounds.p_tilde(v), pn_u, pn_v)
                if obs is not None:
                    obs.inc(metric.MAINT_THM8_WINDOWS)
                    obs.inc(metric.MAINT_THM9_WINDOWS)
                    self._record_window(obs, p_minus, p_plus)
                self._repeel_and_splice(array, None, p_minus, p_plus, set())
            else:
                # Major case, cn(small) < k <= cn(large): only `large` in
                # the k-core; its p-number can only rise.
                p_minus = array.p_number(large)  # Theorem 8
                # Theorem 9 capped from below by the old p-number, so the
                # window is never inverted.
                bounds = BoundsCache(self.graph, array.members_view())
                p_plus = max(bounds.p_tilde(large), p_minus)
                if obs is not None:
                    obs.inc(metric.MAINT_THM8_WINDOWS)
                    obs.inc(metric.MAINT_THM9_WINDOWS)
                    self._record_window(obs, p_minus, p_plus)
                self._repeel_and_splice(array, None, p_minus, p_plus, set())

    # ------------------------------------------------------------------
    # A_1 bookkeeping: every 1-core vertex has p-number exactly 1.0
    # ------------------------------------------------------------------
    # For k = 1 the (1,p)-core is the whole graph minus isolated vertices,
    # for *every* p in [0, 1]: each vertex keeps all of its neighbours, so
    # every fraction is 1.  A_1 therefore only tracks membership.
    def _update_a1_after_insert(self, u: Vertex, v: Vertex) -> None:
        array = self._ensure_array(1)
        changed = False
        for w in (u, v):
            if not array.contains(w):
                array.vertices.append(w)
                array.p_numbers.append(1.0)
                changed = True
        if changed:
            array._rebuild_levels()
            self.index.bump_version(1)

    def _update_a1_after_delete(self, u: Vertex, v: Vertex) -> None:
        isolated = [w for w in (u, v) if self.graph.degree(w) == 0]
        if not isolated:
            return
        array = self._ensure_array(1)
        drop = set(isolated)
        before = len(array.vertices)
        array.vertices = [w for w in array.vertices if w not in drop]
        array.p_numbers = [1.0] * len(array.vertices)
        array._rebuild_levels()
        if len(array.vertices) != before:
            self.index.bump_version(1)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _record_window(
        obs: Instrumentation, p_minus: float, p_plus: float
    ) -> None:
        """Record one recomputed ``[p_-, p_+]`` window.

        Widths are recorded unclamped: a negative width in the metrics
        would expose an inverted window, which the Defs. 5-7 bounds rule
        out — the pruning-effectiveness tests assert exactly that.
        """
        obs.observe(metric.MAINT_WINDOW_P_MINUS, p_minus)
        obs.observe(metric.MAINT_WINDOW_P_PLUS, p_plus)
        obs.observe(metric.MAINT_WINDOW_WIDTH, p_plus - p_minus)

    def _ensure_array(self, k: int) -> KArray:
        arrays = self.index.arrays()
        array = arrays.get(k)
        if array is None:
            array = KArray(k=k, vertices=[], p_numbers=[])
            arrays[k] = array
            # Creation is a mutation: a cached "no A_k" answer may now be
            # wrong, so the version oracle must move past it.
            self.index.bump_version(k)
        return array

    def _current_members(
        self,
        array: KArray,
        k: int,
        promoted: Iterable[Vertex],
        demoted: Iterable[Vertex],
    ) -> set[Vertex]:
        """Vertex set of the *current* k-core, derived incrementally."""
        members = array.vertex_set()
        members.update(promoted)
        members.difference_update(demoted)
        return members

    def _repeel_and_splice(
        self,
        array: KArray,
        members: set[Vertex] | None,
        p_minus: float,
        p_plus: float,
        new_members: set[Vertex],
    ) -> None:
        """Recompute p-numbers in ``[p_minus, p_plus]`` and splice ``A_k``.

        ``members=None`` means the k-core membership is unchanged (the
        major cases): the residual is then the array's own ``pn >= p_-``
        suffix, found by bisection, so per-array work is proportional to
        the window instead of |V_k|.
        """
        k = array.k
        # Bump before touching the array: even an exceptional exit below
        # may leave A_k mutated, and a conservative bump only costs cache
        # entries — it can never let a stale answer survive.
        self.index.bump_version(k)
        if members is None:
            start = bisect_left(array.p_numbers, p_minus)
            tail_source = array.vertices[start:]
            residual = set(tail_source)
            residual |= new_members
        else:
            tail_source = array.vertices
            residual = {
                w
                for w in members
                if w in new_members or array.p_number_or(w, -1.0) >= p_minus
            }
        result = self._peel_residual(
            k, residual, p_plus, new_members, array, tail_source
        )
        self.stats.arrays_updated += 1
        self.stats.vertices_repeeled += len(result.order)
        if result.stopped_early:
            self.stats.early_stops += 1
        obs = get_collector()
        if obs is not None:
            obs.inc(metric.MAINT_ARRAYS_REPEELED)
            obs.add(metric.MAINT_VERTICES_REPEELED, len(result.order))
            if result.stopped_early:
                obs.inc(metric.MAINT_EARLY_STOPS)
        try:
            array.replace_segment(
                keep_below=p_minus,
                segment_vertices=result.order,
                segment_p_numbers=result.p_numbers,
                tail_from=result.tail,
            )
        except IndexStateError:
            if self.strict:
                raise
            # Defensive fallback: the window was too narrow (should not
            # happen; kept as a safety valve for unanticipated topologies).
            self.stats.fallback_rebuilds += 1
            if obs is not None:
                obs.inc(metric.MAINT_FALLBACK_REBUILDS)
            full_members = (
                array.vertex_set() if members is None else set(members)
            )
            full = self._peel_residual(
                k, full_members, 2.0, full_members, array
            )
            array.vertices = full.order
            array.p_numbers = full.p_numbers
            array._rebuild_levels()

    def _peel_residual(
        self,
        k: int,
        residual: set[Vertex],
        p_plus: float,
        new_members: set[Vertex],
        array: KArray,
        tail_source: list[Vertex] | None = None,
    ) -> _PeelResult:
        """Fixed-k peel of the residual subgraph on the live graph.

        Mirrors the heap peel of :mod:`repro.core.decomposition` but runs
        over dict adjacency (the graph is dynamic here) and supports the
        early stop: once the next peel level would exceed ``p_plus`` and no
        vertex lacking an old p-number remains, the survivors keep their
        old p-numbers and are returned as the tail, in old array order.
        """
        graph = self.graph
        result = _PeelResult()
        if not residual:
            return result
        alive = set(residual)
        deg_r: dict[Vertex, int] = {}
        key: dict[Vertex, float] = {}
        # Heap entries carry a serial number so ties never compare the
        # vertex labels themselves (labels of mixed types are allowed).
        serial = 0
        heap: list[tuple[float, int, Vertex]] = []
        violators: deque[Vertex] = deque()
        # Canonical float-fraction construction (pvalue.fraction_value)
        # inlined in this hot residual peel; degrees are >= k >= 1 here.
        for w in residual:
            inside = sum(1 for x in graph.neighbors(w) if x in residual)
            deg_r[w] = inside
            key[w] = inside / graph.degree(w)  # noqa: KP001 hot loop
            heap.append((key[w], serial, w))
            serial += 1
            if inside < k:
                violators.append(w)
        heapify(heap)
        # Vertices violating the degree constraint at the window boundary
        # are peeled in the first round; Algorithm 2 assigns them that
        # round's p_min, which is the minimum fraction over the whole
        # residual (their own fractions included).
        level = min(key.values()) if violators else 0.0
        pending_new = sum(1 for w in alive if w in new_members)

        def remove(w: Vertex, pn: float) -> None:
            nonlocal pending_new, serial
            alive.discard(w)
            if w in new_members:
                pending_new -= 1
            result.order.append(w)
            result.p_numbers.append(pn)
            for x in graph.neighbors(w):
                if x not in alive:
                    continue
                deg_r[x] -= 1
                new_key = deg_r[x] / graph.degree(x)  # noqa: KP001 hot loop
                key[x] = new_key
                heappush(heap, (new_key, serial, x))
                serial += 1
                if deg_r[x] == k - 1:
                    violators.append(x)

        while alive:
            if violators:
                w = violators.popleft()
                if w in alive:
                    remove(w, level)
                continue
            w = None
            while heap:
                f, _, candidate = heappop(heap)
                # Exact-double stale-entry test; see repro.core.pvalue.
                if candidate in alive and key[candidate] == f:  # noqa: KP002
                    w = candidate
                    break
            if w is None:
                raise IndexStateError(
                    f"A_{k}: peel heap exhausted with {len(alive)} vertices alive"
                )
            if f > p_plus and pending_new == 0:
                # Theorems 4/9: survivors keep their old p-numbers.
                result.stopped_early = True
                source = array.vertices if tail_source is None else tail_source
                result.tail = [x for x in source if x in alive]
                if self.strict:
                    bad = [
                        x for x in result.tail if array.p_number(x) <= p_plus
                    ]
                    if bad:
                        raise IndexStateError(
                            f"A_{k}: early-stop tail contains p-numbers "
                            f"<= p_+ ({bad[:3]}...)"
                        )
                return result
            level = max(level, f)
            remove(w, level)
        return result
