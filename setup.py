"""Setuptools entry point.

The project deliberately ships a classic ``setup.py``/``setup.cfg`` pair
instead of ``pyproject.toml``: the reproduction environment is offline and
its setuptools cannot perform PEP 660 editable installs (no ``wheel``
package), while the legacy ``pip install -e .`` path works everywhere.
All metadata lives in ``setup.cfg``.
"""

from setuptools import setup

setup()
