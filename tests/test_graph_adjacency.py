"""Unit tests for the dynamic adjacency-set Graph."""

import pytest

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.adjacency import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edge_iterable(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(1, 2)], vertices=[7, 8])
        assert g.has_vertex(7)
        assert g.degree(7) == 0
        assert g.num_vertices == 4

    def test_duplicate_edges_merge(self):
        g = Graph([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph([(1, 1)])

    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2
        assert not g.has_vertex(3)


class TestVertexOps:
    def test_add_vertex_idempotent(self):
        g = Graph()
        assert g.add_vertex(5) is True
        assert g.add_vertex(5) is False
        assert g.num_vertices == 1

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert g.num_edges == 1
        assert not g.has_vertex(1)
        assert g.has_edge(2, 3)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            Graph().remove_vertex(9)

    def test_contains(self):
        g = Graph([(1, 2)])
        assert 1 in g
        assert 9 not in g


class TestEdgeOps:
    def test_add_edge_creates_endpoints(self):
        g = Graph()
        assert g.add_edge("a", "b") is True
        assert g.has_vertex("a") and g.has_vertex("b")

    def test_add_edge_duplicate_returns_false(self):
        g = Graph([(1, 2)])
        assert g.add_edge(1, 2) is False
        assert g.add_edge(2, 1) is False
        assert g.num_edges == 1

    def test_add_edge_strict_raises_on_duplicate(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeExistsError):
            g.add_edge_strict(2, 1)

    def test_add_edges_counts_new_only(self):
        g = Graph([(1, 2)])
        assert g.add_edges([(1, 2), (2, 3), (3, 1)]) == 2

    def test_remove_edge_keeps_endpoints(self):
        g = Graph([(1, 2)])
        g.remove_edge(1, 2)
        assert g.num_edges == 0
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_has_edge_is_symmetric(self):
        g = Graph([(1, 2)])
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 9)


class TestAccessors:
    def test_edges_yields_each_once(self, two_triangles_bridge):
        edges = list(two_triangles_bridge.edges())
        assert len(edges) == two_triangles_bridge.num_edges
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == len(edges)

    def test_degree_and_neighbors(self, triangle_with_tail):
        assert triangle_with_tail.degree(0) == 3
        assert triangle_with_tail.neighbors(0) == {1, 2, 3}

    def test_neighbors_missing_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.neighbors(99)

    def test_degrees_map(self, triangle_with_tail):
        assert triangle_with_tail.degrees() == {0: 3, 1: 2, 2: 2, 3: 1}

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_equality_ignores_insertion_order(self):
        a = Graph([(1, 2), (2, 3)])
        b = Graph([(2, 3), (1, 2)])
        assert a == b
        assert a != Graph([(1, 2)])

    def test_repr_mentions_sizes(self, triangle):
        assert "n=3" in repr(triangle) and "m=3" in repr(triangle)


class TestDerivedGraphs:
    def test_induced_subgraph(self, two_triangles_bridge):
        sub = two_triangles_bridge.induced_subgraph([0, 1, 2, 3])
        assert sub.num_vertices == 4
        assert sub.num_edges == 4  # the triangle plus the bridge stub

    def test_induced_subgraph_unknown_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.induced_subgraph([0, 9])

    def test_edge_subgraph(self, triangle_with_tail):
        sub = triangle_with_tail.edge_subgraph([(0, 1), (0, 3)])
        assert sub.num_edges == 2
        assert sub.num_vertices == 3

    def test_edge_subgraph_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.edge_subgraph([(0, 9)])
