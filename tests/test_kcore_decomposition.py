"""Unit tests for the bucket core decomposition."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    star_graph,
)
from repro.kcore.decomposition import (
    core_decomposition,
    degeneracy,
    degeneracy_ordering,
)


def nx_core_numbers(graph: Graph) -> dict:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return nx.core_number(g)


class TestKnownGraphs:
    def test_complete_graph(self):
        cd = core_decomposition(complete_graph(7))
        assert cd.degeneracy == 6
        assert all(c == 6 for c in cd.core_numbers.values())

    def test_cycle(self):
        cd = core_decomposition(cycle_graph(9))
        assert cd.degeneracy == 2
        assert set(cd.core_numbers.values()) == {2}

    def test_star(self):
        cd = core_decomposition(star_graph(8))
        assert cd.degeneracy == 1

    def test_isolated_vertices_have_core_zero(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        cd = core_decomposition(g)
        assert cd.core_numbers[9] == 0
        assert cd.core_numbers[0] == 1

    def test_empty_graph(self):
        cd = core_decomposition(Graph())
        assert cd.degeneracy == 0
        assert cd.core_numbers == {}
        assert list(cd.peel_order) == []

    def test_figure1_like(self, figure1_like_graph):
        cd = core_decomposition(figure1_like_graph)
        # the K5 block has core number >= 4
        assert cd.core_numbers[10] >= 4
        assert cd.core_numbers[0] <= 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random(self, seed):
        g = erdos_renyi_gnm(40, 120, seed=seed)
        assert core_decomposition(g).core_numbers == nx_core_numbers(g)

    def test_powerlaw(self):
        g = barabasi_albert(150, 4, seed=1)
        assert core_decomposition(g).core_numbers == nx_core_numbers(g)


class TestDerived:
    def test_k_core_vertices_consistent(self):
        g = erdos_renyi_gnm(35, 100, seed=2)
        cd = core_decomposition(g)
        for k in range(cd.degeneracy + 2):
            expected = {v for v, c in cd.core_numbers.items() if c >= k}
            assert cd.k_core_vertices(k) == expected

    def test_core_size_profile(self):
        g = erdos_renyi_gnm(35, 100, seed=3)
        cd = core_decomposition(g)
        profile = cd.core_size_profile()
        assert profile[0] == g.num_vertices
        for k in range(cd.degeneracy + 1):
            assert profile[k] == len(cd.k_core_vertices(k))
        # non-increasing
        assert all(a >= b for a, b in zip(profile, profile[1:]))

    def test_degeneracy_ordering_property(self):
        # each vertex has <= d(G) neighbours later in the ordering
        g = erdos_renyi_gnm(40, 140, seed=4)
        d = degeneracy(g)
        order = degeneracy_ordering(g)
        position = {v: i for i, v in enumerate(order)}
        for v in order:
            later = sum(1 for w in g.neighbors(v) if position[w] > position[v])
            assert later <= d

    def test_peel_order_is_a_permutation(self):
        g = erdos_renyi_gnm(25, 60, seed=5)
        cd = core_decomposition(g)
        assert sorted(cd.peel_order, key=repr) == sorted(g.vertices(), key=repr)

    def test_core_number_lookup(self, triangle):
        cd = core_decomposition(triangle)
        assert cd.core_number(0) == 2
        with pytest.raises(KeyError):
            cd.core_number(99)
