"""Tests for the synthetic dataset substrate."""

import pytest

from repro.errors import DatasetError, ParameterError
from repro.datasets import (
    CheckinModel,
    dataset_names,
    default_corpus,
    generate_corpus,
    load,
    load_all,
    simulate_checkins,
    spec,
)
from repro.graph.metrics import average_degree, summarize
from repro.kcore.decomposition import core_decomposition


class TestRegistry:
    def test_eight_datasets_in_paper_order(self):
        assert dataset_names() == [
            "facebook",
            "brightkite",
            "gowalla",
            "youtube",
            "pokec",
            "dblp",
            "livejournal",
            "orkut",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            spec("imaginary")
        with pytest.raises(DatasetError):
            load("imaginary")

    def test_load_caches(self):
        assert load("facebook") is load("facebook")

    def test_spec_carries_paper_statistics(self):
        s = spec("orkut")
        assert s.paper_edges == 117_185_083
        assert s.paper_avg_degree == pytest.approx(76.28)

    def test_edge_count_ordering_is_broadly_ascending(self):
        graphs = load_all()
        sizes = [g.num_edges for g in graphs.values()]
        # the paper's own table has one local inversion (pokec > dblp);
        # require ascending order up to one such inversion
        inversions = sum(1 for a, b in zip(sizes, sizes[1:]) if a > b)
        assert inversions <= 1

    def test_density_character(self):
        graphs = load_all()
        averages = {name: average_degree(g) for name, g in graphs.items()}
        # orkut stands out as the densest; youtube is among the sparsest
        # (the dblp stand-in's one-paper junior authors also pull its
        # average down, as supervision edges do on the real graph)
        assert averages["orkut"] == max(averages.values())
        assert averages["youtube"] <= sorted(averages.values())[1]

    def test_every_dataset_has_a_10_core(self):
        for name, g in load_all().items():
            assert core_decomposition(g).degeneracy >= 10, name

    def test_deterministic_rebuild(self):
        fresh = spec("brightkite").build()
        assert fresh == spec("brightkite").build()


class TestDblpCorpus:
    def test_thresholded_graphs_shrink(self):
        corpus = default_corpus()
        g1 = corpus.graph(1)
        g3 = corpus.graph(3)
        g10 = corpus.graph(10)
        assert g1.num_edges > g3.num_edges > g10.num_edges > 0
        assert g1.num_vertices > g3.num_vertices > g10.num_vertices

    def test_threshold_semantics(self):
        corpus = default_corpus()
        g3 = corpus.graph(3)
        for u, v in list(g3.edges())[:50]:
            assert corpus.coauthor_weight(u, v) >= 3

    def test_weight_symmetry(self):
        corpus = default_corpus()
        u, v = next(iter(corpus.graph(1).edges()))
        assert corpus.coauthor_weight(u, v) == corpus.coauthor_weight(v, u)

    def test_invalid_threshold(self):
        with pytest.raises(ParameterError):
            default_corpus().graph(0)

    def test_thresholds_with_content(self):
        thresholds = default_corpus().thresholds_with_content()
        assert thresholds[0] == 1
        assert thresholds == sorted(thresholds)

    def test_juniors_publish_once(self):
        corpus = default_corpus()
        appearances: dict[str, int] = {}
        for pub in corpus.publications:
            for author in pub.authors:
                if author.startswith("J"):
                    appearances[author] = appearances.get(author, 0) + 1
        assert appearances  # the mechanism is active
        assert set(appearances.values()) == {1}

    def test_small_corpus_parameters(self):
        corpus = generate_corpus(
            num_authors=50, num_papers=120, num_fields=4, seed=1,
            num_labs=1, lab_size=8, papers_per_lab=2,
        )
        assert corpus.num_publications >= 120
        assert corpus.graph(1).num_edges > 0

    def test_corpus_validation(self):
        with pytest.raises(ParameterError):
            generate_corpus(num_authors=1, num_papers=10)


class TestCheckins:
    def test_counts_for_every_vertex(self):
        g = load("brightkite")
        counts = simulate_checkins(g)
        assert set(counts) == set(g.vertices())
        assert all(c >= 0 for c in counts.values())

    def test_deterministic(self):
        g = load("brightkite")
        assert simulate_checkins(g, seed=5) == simulate_checkins(g, seed=5)
        assert simulate_checkins(g, seed=5) != simulate_checkins(g, seed=6)

    def test_engagement_monotone_on_average(self):
        # the generative model must produce higher average activity in
        # deeper cores, otherwise Fig. 10 has nothing to recover
        g = load("gowalla")
        counts = simulate_checkins(g)
        cn = core_decomposition(g).core_numbers
        shallow = [counts[v] for v, c in cn.items() if c <= 2]
        deep = [counts[v] for v, c in cn.items() if c >= 10]
        assert sum(deep) / len(deep) > sum(shallow) / len(shallow)

    def test_custom_model_scales(self):
        g = load("brightkite")
        quiet = simulate_checkins(g, model=CheckinModel(base=1.0))
        loud = simulate_checkins(g, model=CheckinModel(base=50.0))
        assert sum(loud.values()) > sum(quiet.values())
