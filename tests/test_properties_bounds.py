"""Hypothesis property tests for the Sec. VI bound machinery."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.bounds import scaled_h_index, upper_h_value
from repro.core.pvalue import as_fraction, fraction_threshold


values_strategy = st.lists(st.floats(0.0, 1.0, allow_nan=False), max_size=14)
denominator_strategy = st.integers(1, 20)


def brute_force_upper(values: list[float], denominator: int) -> float:
    """max over j of min(j-th largest value, j/D), by definition."""
    ordered = sorted(values, reverse=True)
    best = 0.0
    for j, val in enumerate(ordered, start=1):
        best = max(best, min(val, j / denominator))  # noqa: KP001 reference fraction oracle
    return best


def brute_force_grid(values: list[float], denominator: int) -> float:
    """max{i/D : at least i values >= i/D}, by definition."""
    best = 0.0
    for i in range(1, len(values) + 1):
        if sum(1 for v in values if v >= i / denominator) >= i:  # noqa: KP001 reference fraction oracle
            best = max(best, i / denominator)  # noqa: KP001 reference fraction oracle
    return best


@given(values_strategy, denominator_strategy)
@settings(max_examples=300, deadline=None)
def test_upper_h_value_matches_definition(values, denominator):
    assert upper_h_value(values, denominator) == brute_force_upper(
        values, denominator
    )


@given(values_strategy, denominator_strategy)
@settings(max_examples=300, deadline=None)
def test_grid_h_index_matches_definition(values, denominator):
    assert scaled_h_index(values, denominator) == brute_force_grid(
        values, denominator
    )


@given(values_strategy, denominator_strategy)
@settings(max_examples=200, deadline=None)
def test_upper_dominates_grid(values, denominator):
    assert upper_h_value(values, denominator) >= scaled_h_index(
        values, denominator
    )


@given(values_strategy, denominator_strategy)
@settings(max_examples=200, deadline=None)
def test_upper_h_value_bounded_by_inputs(values, denominator):
    bound = upper_h_value(values, denominator)
    assert 0.0 <= bound <= 1.0
    if values:
        assert bound <= max(values)
        assert bound <= len(values) / denominator  # noqa: KP001 reference fraction oracle


@given(st.integers(1, 2000), st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=300, deadline=None)
def test_fraction_threshold_defining_property(degree, p):
    t = fraction_threshold(p, degree)
    assert 0 <= t <= degree
    assert t / degree >= p  # noqa: KP001 reference fraction oracle
    assert t == 0 or (t - 1) / degree < p  # noqa: KP001 reference fraction oracle


@given(st.integers(1, 300), st.integers(0, 300))
@settings(max_examples=300, deadline=None)
def test_as_fraction_round_trips_small_rationals(den, num_raw):
    num = num_raw % (den + 1)
    assert as_fraction(num / den, den) == Fraction(num, den)
