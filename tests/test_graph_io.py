"""Unit tests for SNAP-style edge-list I/O."""

import io

import pytest

from repro.errors import EdgeListParseError, SelfLoopError
from repro.graph.adjacency import Graph
from repro.graph.io import (
    iter_edge_list,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)


SAMPLE = """\
# Undirected graph: test
# Nodes: 4 Edges: 3
0 1
1 2
2\t3
"""


class TestRead:
    def test_basic_parse(self):
        g = parse_edge_list(SAMPLE)
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.has_edge(2, 3)

    def test_comments_and_blank_lines_skipped(self):
        g = parse_edge_list("# c\n\n1 2\n\n# d\n2 3\n")
        assert g.num_edges == 2

    def test_duplicate_and_reversed_edges_merge(self):
        g = parse_edge_list("1 2\n2 1\n1 2\n")
        assert g.num_edges == 1

    def test_self_loops_dropped_by_default(self):
        g = parse_edge_list("1 1\n1 2\n")
        assert g.num_edges == 1
        assert g.has_vertex(1)

    def test_self_loops_raise_when_strict(self):
        with pytest.raises(SelfLoopError):
            parse_edge_list("1 1\n", drop_self_loops=False)

    def test_extra_columns_rejected_with_line_number(self):
        # A 3-column temporal/weighted SNAP file is not a pair list; it
        # must fail loudly (naming the line) instead of silently parsing.
        with pytest.raises(EdgeListParseError) as excinfo:
            parse_edge_list("1 2\n1 2 1591683245\n")
        assert excinfo.value.line_number == 2

    def test_extra_columns_explicit_ignore_opt_in(self):
        g = parse_edge_list("1 2 1591683245\n3 4 0.75\n", extra_tokens="ignore")
        assert g.has_edge(1, 2) and g.has_edge(3, 4)

    def test_extra_tokens_bad_mode_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            parse_edge_list("1 2\n", extra_tokens="maybe")

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(EdgeListParseError) as excinfo:
            parse_edge_list("1 2\nonly_one_token\n")
        assert excinfo.value.line_number == 2

    def test_non_integer_vertex_raises(self):
        with pytest.raises(EdgeListParseError):
            parse_edge_list("a b\n")

    def test_string_vertices_mode(self):
        g = parse_edge_list("alice bob\n", int_vertices=False)
        assert g.has_edge("alice", "bob")

    def test_iter_edge_list_streaming(self):
        edges = list(iter_edge_list(io.StringIO("1 2\n3 4\n")))
        assert edges == [(1, 2), (3, 4)]


class TestWrite:
    def test_round_trip(self, figure1_like_graph):
        buffer = io.StringIO()
        write_edge_list(figure1_like_graph, buffer, header=["round trip"])
        buffer.seek(0)
        again = read_edge_list(buffer)
        assert again == figure1_like_graph

    def test_header_lines_are_comments(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer, header=["a", "b"])
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "# a"
        assert lines[1] == "# b"

    def test_file_round_trip(self, tmp_path, two_triangles_bridge):
        path = tmp_path / "graph.txt"
        write_edge_list(two_triangles_bridge, path)
        assert read_edge_list(path) == two_triangles_bridge

    def test_empty_graph_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_edge_list(Graph(), path)
        assert path.read_text() == ""
