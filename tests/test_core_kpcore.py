"""Unit tests for Algorithm 1 (kpCore)."""

import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import complete_graph, erdos_renyi_gnm, star_graph
from repro.core.kpcore import (
    combined_thresholds,
    fraction,
    kp_core,
    kp_core_vertices,
    satisfies_kp_constraints,
)
from repro.core.naive import naive_kp_core_vertices
from repro.kcore.compute import k_core_vertices


class TestDefinitionExamples:
    def test_p_zero_equals_k_core(self):
        g = erdos_renyi_gnm(25, 70, seed=1)
        for k in range(6):
            assert kp_core_vertices(g, k, 0.0) == k_core_vertices(g, k)

    def test_whole_graph_is_a_1_1_core(self, triangle):
        # every vertex keeps all its neighbours => fraction 1
        assert kp_core_vertices(triangle, 1, 1.0) == {0, 1, 2}

    def test_fraction_constraint_trims(self, triangle_with_tail):
        # vertex 0 has 3 neighbours, only 2 inside the triangle: 2/3 < 0.75
        assert kp_core_vertices(triangle_with_tail, 2, 2 / 3) == {0, 1, 2}
        assert kp_core_vertices(triangle_with_tail, 2, 0.75) == set()

    def test_cascade_graph_levels(self, cascade_graph):
        # the triangle {3,5,6} survives (2, 2/3); nothing survives above
        assert kp_core_vertices(cascade_graph, 2, 2 / 3) == {3, 5, 6}
        assert kp_core_vertices(cascade_graph, 2, 0.7) == set()

    def test_complete_graph_all_p(self):
        g = complete_graph(6)
        assert kp_core_vertices(g, 5, 1.0) == set(range(6))
        assert kp_core_vertices(g, 6, 0.0) == set()

    def test_star(self):
        g = star_graph(5)
        assert kp_core_vertices(g, 1, 1.0) == set(range(6))
        assert kp_core_vertices(g, 2, 0.1) == set()


class TestProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive(self, seed, random_graph_factory):
        g = random_graph_factory(seed)
        for k in (1, 2, 3):
            for p in (0.0, 0.4, 0.5, 2 / 3, 1.0):
                assert kp_core_vertices(g, k, p) == naive_kp_core_vertices(g, k, p)

    def test_containment_in_both_parameters(self):
        g = erdos_renyi_gnm(30, 110, seed=3)
        for k in (1, 2, 3):
            for p, p_larger in ((0.2, 0.5), (0.5, 0.8)):
                inner = kp_core_vertices(g, k, p_larger)
                outer = kp_core_vertices(g, k, p)
                assert inner <= outer
            assert kp_core_vertices(g, k + 1, 0.5) <= kp_core_vertices(g, k, 0.5)

    def test_result_satisfies_constraints(self):
        g = erdos_renyi_gnm(30, 110, seed=4)
        for k, p in ((2, 0.5), (3, 0.6), (4, 0.3)):
            members = kp_core_vertices(g, k, p)
            assert satisfies_kp_constraints(g, members, k, p)

    def test_maximality(self):
        # adding any outside vertex must break some constraint
        g = erdos_renyi_gnm(20, 60, seed=5)
        k, p = 3, 0.6
        members = kp_core_vertices(g, k, p)
        for extra in set(g.vertices()) - members:
            assert not satisfies_kp_constraints(g, members | {extra}, k, p)

    def test_invalid_parameters(self, triangle):
        with pytest.raises(ParameterError):
            kp_core_vertices(triangle, -1, 0.5)
        with pytest.raises(ParameterError):
            kp_core_vertices(triangle, 1, 1.5)


class TestHelpers:
    def test_combined_thresholds(self, triangle_with_tail):
        snap = CompactAdjacency(triangle_with_tail)
        thresholds = combined_thresholds(snap, 2, 0.5)
        by_label = {snap.labels[i]: t for i, t in enumerate(thresholds)}
        assert by_label[0] == 2  # max(2, ceil(0.5*3)=2)
        assert by_label[3] == 2  # max(2, ceil(0.5*1)=1)

    def test_fraction_definition(self, triangle_with_tail):
        assert fraction(triangle_with_tail, {0, 1, 2}, 0) == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle
        assert fraction(triangle_with_tail, {0, 1, 2}, 1) == 1.0  # noqa: KP002 exact-double oracle

    def test_kp_core_graph_is_induced(self, cascade_graph):
        sub = kp_core(cascade_graph, 2, 2 / 3)
        assert set(sub.vertices()) == {3, 5, 6}
        assert sub.num_edges == 3
