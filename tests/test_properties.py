"""Hypothesis property tests over the core invariants of the paper.

Strategies generate small random graphs (edge lists over a bounded vertex
universe); the properties mirror the paper's structural claims:
uniqueness/maximality of (k,p)-cores, containment, p-number semantics,
index/query agreement, Lemma 1 space bounds, and maintenance exactness.
"""

from __future__ import annotations

import os
import random
import tempfile

from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Graph
from repro.core.decomposition import kp_core_decomposition, p_numbers_fixed_k
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices, satisfies_kp_constraints
from repro.core.maintenance import KPIndexMaintainer, MaintenanceMode
from repro.core.naive import naive_kp_core_vertices
from repro.kcore.decomposition import core_decomposition
from repro.kcore.maintenance import CoreMaintainer
from repro.kcore.onion import onion_decomposition


MAX_N = 12

edges_strategy = st.lists(
    st.tuples(st.integers(0, MAX_N - 1), st.integers(0, MAX_N - 1)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=36,
)

k_strategy = st.integers(1, 5)
p_strategy = st.one_of(
    st.sampled_from([0.0, 0.25, 1 / 3, 0.5, 0.6, 2 / 3, 0.75, 1.0]),
    st.floats(0.0, 1.0, allow_nan=False),
)


def graph_from(edges) -> Graph:
    return Graph(edges)


@given(edges_strategy, k_strategy, p_strategy)
@settings(max_examples=120, deadline=None)
def test_kp_core_matches_naive_fixpoint(edges, k, p):
    g = graph_from(edges)
    assert kp_core_vertices(g, k, p) == naive_kp_core_vertices(g, k, p)


@given(edges_strategy, k_strategy, p_strategy)
@settings(max_examples=120, deadline=None)
def test_kp_core_satisfies_and_is_maximal(edges, k, p):
    g = graph_from(edges)
    members = kp_core_vertices(g, k, p)
    assert satisfies_kp_constraints(g, members, k, p)
    for extra in set(g.vertices()) - members:
        assert not satisfies_kp_constraints(g, members | {extra}, k, p)


@given(edges_strategy, k_strategy, p_strategy, p_strategy)
@settings(max_examples=100, deadline=None)
def test_containment_property(edges, k, p1, p2):
    g = graph_from(edges)
    lo, hi = sorted((p1, p2))
    assert kp_core_vertices(g, k, hi) <= kp_core_vertices(g, k, lo)
    assert kp_core_vertices(g, k + 1, p1) <= kp_core_vertices(g, k, p1)


@given(edges_strategy, k_strategy)
@settings(max_examples=80, deadline=None)
def test_p_number_defines_membership_at_every_level(edges, k):
    g = graph_from(edges)
    pn = p_numbers_fixed_k(g, k)
    for level in sorted(set(pn.values())):
        assert kp_core_vertices(g, k, level) == {
            v for v, value in pn.items() if value >= level
        }


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_index_answers_every_query(edges):
    g = graph_from(edges)
    index = KPIndex.build(g)
    index.validate()
    d = core_decomposition(g).degeneracy
    for k in range(1, d + 2):
        for p in (0.0, 0.3, 0.5, 0.75, 1.0):
            assert set(index.query(k, p)) == kp_core_vertices(g, k, p)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_index_space_bound(edges):
    g = graph_from(edges)
    stats = KPIndex.build(g).space_stats()
    assert stats.vertex_entries <= stats.two_m
    assert stats.p_number_entries <= max(stats.vertex_entries, 0)


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_onion_core_numbers_match_bucket_algorithm(edges):
    g = graph_from(edges)
    assert onion_decomposition(g).core_numbers == core_decomposition(g).core_numbers


@given(edges_strategy, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_core_maintenance_equals_recomputation(edges, seed):
    g = graph_from(edges)
    maintainer = CoreMaintainer(g.copy())
    rng = random.Random(seed)
    live = list(maintainer.graph.edges())
    for _ in range(8):
        if live and rng.random() < 0.5:
            u, v = live.pop(rng.randrange(len(live)))
            maintainer.delete_edge(u, v)
        else:
            u, v = rng.randrange(MAX_N), rng.randrange(MAX_N)
            if u == v or maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
            live.append((u, v))
    assert (
        maintainer.core_numbers()
        == core_decomposition(maintainer.graph).core_numbers
    )


@given(edges_strategy, st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_index_maintenance_equals_rebuild(edges, seed):
    g = graph_from(edges)
    maintainer = KPIndexMaintainer(
        g.copy(), mode=MaintenanceMode.RANGE, strict=True
    )
    rng = random.Random(seed)
    live = list(maintainer.graph.edges())
    for _ in range(6):
        if live and rng.random() < 0.5:
            u, v = live.pop(rng.randrange(len(live)))
            maintainer.delete_edge(u, v)
        else:
            u, v = rng.randrange(MAX_N), rng.randrange(MAX_N)
            if u == v or maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
            live.append((u, v))
    assert maintainer.index.semantically_equal(KPIndex.build(maintainer.graph))


@given(edges_strategy, k_strategy)
@settings(max_examples=60, deadline=None)
def test_decomposition_agrees_with_direct_kp_core_between_levels(edges, k):
    # For p strictly between two adjacent levels, the (k,p)-core equals the
    # core at the next level up.
    g = graph_from(edges)
    pn = p_numbers_fixed_k(g, k)
    levels = sorted(set(pn.values()))
    for low, high in zip(levels, levels[1:]):
        midpoint = (low + high) / 2
        assert kp_core_vertices(g, k, midpoint) == {
            v for v, value in pn.items() if value >= high
        }


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_index_save_load_round_trip_is_semantically_equal(edges):
    """Persistence property: save -> load preserves index semantics exactly
    (pn_maps compare with exact doubles, no float drift through JSON)."""
    index = KPIndex.build(graph_from(edges))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.json")
        index.save(path)
        restored = KPIndex.load(path)
    assert restored.semantically_equal(index)


@given(edges_strategy, st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_maintainer_resumed_from_loaded_index_stays_exact(edges, seed):
    """A maintainer resumed on a *loaded* snapshot must stay exact under a
    random update stream, vs. from-scratch decomposition of the end graph."""
    g = graph_from(edges)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.json")
        KPIndex.build(g).save(path)
        loaded = KPIndex.load(path)
    maintainer = KPIndexMaintainer(g.copy(), strict=True, index=loaded)
    rng = random.Random(seed)
    for _ in range(8):
        live = list(maintainer.graph.edges())
        if live and rng.random() < 0.4:
            u, v = live[rng.randrange(len(live))]
            maintainer.delete_edge(u, v)
        else:
            u, v = rng.randrange(MAX_N), rng.randrange(MAX_N)
            if u == v or maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
    expected = kp_core_decomposition(maintainer.graph)
    pn_maps = maintainer.index.pn_maps()
    assert set(pn_maps) == set(expected.arrays)
    for k, fixed in expected.arrays.items():
        assert pn_maps[k] == fixed.pn_map()  # noqa: KP002 exact-double oracle


@given(edges_strategy, st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_index_maintenance_with_vertex_dynamics(edges, seed):
    """Mixed vertex and edge updates keep the index exact."""
    g = graph_from(edges)
    maintainer = KPIndexMaintainer(
        g.copy(), mode=MaintenanceMode.RANGE, strict=True
    )
    rng = random.Random(seed)
    next_label = MAX_N
    for _ in range(6):
        roll = rng.random()
        vertices = list(maintainer.graph.vertices())
        if roll < 0.3 and vertices:
            anchors = rng.sample(vertices, min(len(vertices), rng.randint(1, 3)))
            maintainer.insert_vertex(next_label, neighbors=anchors)
            next_label += 1
        elif roll < 0.5 and vertices:
            maintainer.delete_vertex(rng.choice(vertices))
        elif roll < 0.75:
            live = list(maintainer.graph.edges())
            if not live:
                continue
            u, v = live[rng.randrange(len(live))]
            maintainer.delete_edge(u, v)
        else:
            if len(vertices) < 2:
                continue
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
    assert maintainer.index.semantically_equal(KPIndex.build(maintainer.graph))
