"""Smoke tests: every example script must run cleanly end to end.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs in-process (imported as a module) with stdout captured, and the
test asserts on the landmarks a reader is told to expect.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_contents():
    names = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "collaboration_analysis",
        "dynamic_social_network",
        "engagement_analysis",
        "parameter_study",
        "quickstart",
    ]


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "(3,0.6)-core" in out
    assert "KP-Index" in out
    assert "index stayed exact" in out


def test_engagement_analysis(capsys):
    out = run_example("engagement_analysis", capsys)
    assert "Fig. 10(a)" in out
    assert "onion layers" in out
    # the within-shell separation the example demonstrates
    assert "check in" in out


def test_collaboration_analysis(capsys):
    out = run_example("collaboration_analysis", capsys)
    assert "DBLP-3" in out and "DBLP-10" in out
    assert "weakest member" in out


def test_dynamic_social_network(capsys):
    out = run_example("dynamic_social_network", capsys)
    assert "Cost of staying fresh" in out
    assert "spot-check passed" in out


def test_parameter_study(capsys):
    out = run_example("parameter_study", capsys)
    assert "Community structure across the (k, p) grid" in out
    assert "Strongest community parameters" in out
