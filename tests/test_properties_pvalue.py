"""Hypothesis cross-check of the float fraction semantics in pvalue.py.

:func:`repro.core.pvalue.fraction_threshold` is defined as the smallest
integer ``a`` with ``float(a / degree) >= p``.  These properties verify
that defining comparison directly and pin it against *exact* rational
arithmetic: the result can only be ``ceil(p * degree)`` computed over
``Fraction``s, or one below it when float rounding pulls ``(t-1)/degree``
up to ``p``.  Degrees run to ``2**20``, far beyond anything the test
graphs exercise but still inside the exactness range (``< 2**26``)
documented in the pvalue module.
"""

from __future__ import annotations

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.pvalue import as_fraction, fraction_threshold, fraction_value

MAX_DEGREE = 2**20

degree_strategy = st.integers(1, MAX_DEGREE)
p_strategy = st.one_of(
    st.floats(0.0, 1.0, allow_nan=False),
    # Exact grid points a/b stress the boundary case where p is itself a
    # representable fraction of a small degree.
    st.builds(
        lambda a, b: min(a, b) / b,
        st.integers(0, 64),
        st.integers(1, 64),
    ),
)


@given(p_strategy, degree_strategy)
@settings(max_examples=400, deadline=None)
def test_threshold_satisfies_its_defining_comparisons(p, degree):
    a = fraction_threshold(p, degree)
    assert 0 <= a <= degree
    # a is large enough ...
    assert a == 0 or fraction_value(a, degree) >= p
    # ... and minimal: one less already fails the float comparison.
    if a > 0:
        assert fraction_value(a - 1, degree) < p


@given(p_strategy, degree_strategy)
@settings(max_examples=400, deadline=None)
def test_threshold_agrees_with_exact_rational_arithmetic(p, degree):
    exact = math.ceil(Fraction(p) * degree) if p > 0.0 else 0  # noqa: KP001 reference fraction oracle
    a = fraction_threshold(p, degree)
    # Mathematically, ceil(p * degree) is the smallest a with the *exact*
    # rational a/degree >= p.  Under the library's float semantics the
    # answer may be one smaller — when (exact-1)/degree rounds up to p —
    # but never anything else.
    assert a in (exact - 1, exact)
    if a == exact - 1:
        assert fraction_value(exact - 1, degree) >= p
        assert Fraction(exact - 1, degree) < Fraction(p)
    elif exact >= 1 and exact - 1 >= 0:
        assert fraction_value(exact - 1, degree) < p


@given(st.integers(0, MAX_DEGREE), degree_strategy)
@settings(max_examples=300, deadline=None)
def test_fraction_value_roundtrips_through_as_fraction(numerator, degree):
    numerator = min(numerator, degree)
    value = fraction_value(numerator, degree)
    recovered = as_fraction(value, degree)
    assert recovered == Fraction(numerator, degree)


@given(p_strategy, degree_strategy)
@settings(max_examples=200, deadline=None)
def test_threshold_is_monotone_in_p(p, degree):
    a = fraction_threshold(p, degree)
    tighter = min(1.0, p + 1 / 64)
    assert fraction_threshold(tighter, degree) >= a
