"""Unit tests for the p-number bounds of Sec. VI.

Includes the regression case showing why the paper's literal grid bounds
are insufficient and the corrected forms are required.
"""

import pytest

from repro.graph.generators import erdos_renyi_gnm
from repro.core.bounds import (
    BoundsCache,
    deletion_pair_bound,
    degree_in,
    fraction_in,
    insertion_support_bound,
    p_hat,
    p_tilde,
    scaled_h_index,
    upper_h_value,
)
from repro.core.decomposition import p_numbers_fixed_k
from repro.kcore.compute import k_core_vertices
from repro.kcore.decomposition import core_decomposition


class TestHValues:
    def test_grid_h_index(self):
        assert scaled_h_index([1.0, 0.8, 0.5], 4) == pytest.approx(0.5)
        assert scaled_h_index([], 5) == 0.0
        assert scaled_h_index([0.1], 0) == 0.0

    def test_upper_h_dominates_grid(self):
        import random

        rng = random.Random(3)
        for _ in range(300):
            values = [rng.random() for _ in range(rng.randint(0, 12))]
            d = rng.randint(1, 15)
            assert upper_h_value(values, d) >= scaled_h_index(values, d)

    def test_upper_h_known_case(self):
        # the cascade example: values [1, 2/3], denominator 2
        assert upper_h_value([1.0, 2 / 3], 2) == pytest.approx(2 / 3)
        assert scaled_h_index([1.0, 2 / 3], 2) == pytest.approx(0.5)

    def test_upper_h_order_insensitive(self):
        assert upper_h_value([0.2, 0.9, 0.5], 3) == upper_h_value(
            [0.9, 0.5, 0.2], 3
        )


class TestSetHelpers:
    def test_degree_and_fraction_in(self, triangle_with_tail):
        members = {0, 1, 2}
        assert degree_in(triangle_with_tail, members, 0) == 2
        assert fraction_in(triangle_with_tail, members, 0) == pytest.approx(2 / 3)


class TestUpperBoundsAreSound:
    def test_cascade_regression(self, cascade_graph):
        """The paper's Lemma 2 grid bound under-estimates on cascades."""
        g = cascade_graph
        kcore = k_core_vertices(g, 2)
        pn = p_numbers_fixed_k(g, 2)
        # vertex 5 has pn = 2/3 but the grid bound says 1/2
        grid = scaled_h_index(
            [fraction_in(g, kcore, x) for x in g.neighbors(5) if x in kcore],
            g.degree(5),
        )
        assert grid < pn[5]
        # the corrected bounds remain sound
        assert p_hat(g, kcore, 5) >= pn[5]
        assert p_tilde(g, kcore, 5) >= pn[5]

    @pytest.mark.parametrize("seed", range(6))
    def test_p_hat_and_p_tilde_dominate_pn(self, seed):
        g = erdos_renyi_gnm(18, 50, seed=seed)
        d = core_decomposition(g).degeneracy
        for k in range(1, d + 1):
            kcore = k_core_vertices(g, k)
            pn = p_numbers_fixed_k(g, k)
            cache = BoundsCache(g, kcore)
            for w in kcore:
                hat = cache.p_hat(w)
                tilde = cache.p_tilde(w)
                assert hat >= pn[w] - 1e-12, (seed, k, w)
                assert tilde >= pn[w] - 1e-12, (seed, k, w)
                # Lemma 3 ordering: p_hat >= p_tilde
                assert hat >= tilde - 1e-12

    def test_cache_matches_direct(self, cascade_graph):
        kcore = k_core_vertices(cascade_graph, 2)
        cache = BoundsCache(cascade_graph, kcore)
        for w in kcore:
            assert cache.p_hat(w) == p_hat(cascade_graph, kcore, w)  # noqa: KP002 exact-double oracle
            assert cache.p_tilde(w) == p_tilde(cascade_graph, kcore, w)  # noqa: KP002 exact-double oracle


class TestLowerBoundsAreSound:
    @pytest.mark.parametrize("seed", range(8))
    def test_insertion_bound(self, seed):
        """After inserting (u,v) with cn(u) < k <= cn(v), the bound must
        not exceed v's new p-number."""
        import random

        rng = random.Random(seed)
        g = erdos_renyi_gnm(16, 44, seed=seed)
        cd = core_decomposition(g)
        vertices = list(g.vertices())
        for _ in range(15):
            u, v = rng.sample(vertices, 2)
            if g.has_edge(u, v):
                continue
            cn_u, cn_v = cd.core_numbers[u], cd.core_numbers[v]
            if cn_u >= cn_v:
                u, v, cn_u, cn_v = v, u, cn_v, cn_u
            for k in range(cn_u + 1, cn_v + 1):
                pn_before = p_numbers_fixed_k(g, k)
                if v not in pn_before:
                    continue
                p1 = pn_before[v]
                core_at_p1 = {w for w, x in pn_before.items() if x >= p1}
                g.add_edge(u, v)
                try:
                    bound = insertion_support_bound(g, core_at_p1, v, p1)
                    pn_after = p_numbers_fixed_k(g, k).get(v, 0.0)
                    assert bound <= pn_after + 1e-12, (seed, u, v, k)
                finally:
                    g.remove_edge(u, v)

    @pytest.mark.parametrize("seed", range(8))
    def test_deletion_bound(self, seed):
        """After deleting (u,v), vertices below the pair bound keep their
        p-numbers (the Thm. 8 guarantee under the corrected bound)."""
        import random

        rng = random.Random(100 + seed)
        g = erdos_renyi_gnm(16, 48, seed=200 + seed)
        cd = core_decomposition(g)
        edges = list(g.edges())
        for u, v in rng.sample(edges, min(10, len(edges))):
            low = min(cd.core_numbers[u], cd.core_numbers[v])
            for k in range(2, low + 1):
                pn_before = p_numbers_fixed_k(g, k)
                if u not in pn_before or v not in pn_before:
                    continue
                p1 = min(pn_before[u], pn_before[v])
                core_at_p1 = {w for w, x in pn_before.items() if x >= p1}
                g.remove_edge(u, v)
                try:
                    bound = deletion_pair_bound(g, core_at_p1, u, v, k, p1)
                    pn_after = p_numbers_fixed_k(g, k)
                    for w, old in pn_before.items():
                        if old < bound:
                            assert pn_after.get(w) == old, (seed, u, v, k, w)
                finally:
                    g.add_edge(u, v)

    def test_deletion_bound_collapsed_witness_is_zero(self, cascade_graph):
        g = cascade_graph.copy()
        pn = p_numbers_fixed_k(g, 2)
        core = {w for w, x in pn.items() if x >= pn[3]}
        g.remove_edge(3, 5)
        # vertex 5 keeps only one member-neighbour: witness collapses
        assert deletion_pair_bound(g, core, 3, 5, 2, pn[3]) == 0.0
