"""Algorithm-level metric assertions: operation counts and pruning.

Two families of regression guards ride on the obs counters:

* **complexity** — the peel operation counters must scale linearly in the
  edge count, pinning the O(m) claim of Algorithm 1 to observable
  numbers (all graphs are seeded, so the counts are deterministic);
* **pruning** — the maintenance theorems (Thms. 2, 6, 7) must actually
  fire on workloads shaped to trigger them, and every recomputed
  ``[p_-, p_+]`` window must respect the Defs. 5-7 bounds.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.decomposition import kp_core_decomposition
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices
from repro.core.maintenance import KPIndexMaintainer
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm
from repro.obs import collecting, set_collector
from repro.obs import names


@pytest.fixture(autouse=True)
def _no_ambient_collector():
    previous = set_collector(None)
    yield
    set_collector(previous)


def _collect_kpcore(n: int, m: int, k: int = 4, p: float = 0.5):
    graph = erdos_renyi_gnm(n, m, seed=11)
    with collecting() as metrics:
        members = kp_core_vertices(graph, k, p)
    return members, metrics.snapshot()


# ----------------------------------------------------------------------
# operation counts scale linearly in m (satellite: complexity regression)
# ----------------------------------------------------------------------
class TestPeelComplexity:
    SMALL = (1500, 4500)
    LARGE = (6000, 18000)  # 4x the edges, same average degree

    @staticmethod
    def _operations(snapshot) -> int:
        """Total per-edge/per-vertex work of one kpCore run."""
        return snapshot.counter(names.KCORE_PEEL_EDGE_SCANS) + snapshot.counter(
            names.KPCORE_THRESHOLDS_TOTAL
        )

    def test_edge_scans_bounded_by_2m(self):
        for n, m in (self.SMALL, self.LARGE):
            _, snapshot = _collect_kpcore(n, m)
            assert snapshot.counter(names.KCORE_PEEL_EDGE_SCANS) <= 2 * m
            assert snapshot.counter(names.KPCORE_THRESHOLDS_TOTAL) == n

    def test_operation_ratio_tracks_edge_ratio(self):
        _, small = _collect_kpcore(*self.SMALL)
        _, large = _collect_kpcore(*self.LARGE)
        ratio = self._operations(large) / self._operations(small)
        edge_ratio = self.LARGE[1] / self.SMALL[1]  # = 4.0
        # Linear in m: the work ratio stays within a constant factor of
        # the edge ratio.  A superlinear regression (say O(m^2)) would
        # push the ratio toward edge_ratio**2 = 16.
        assert edge_ratio / 1.6 <= ratio <= edge_ratio * 1.6

    def test_counters_agree_with_returned_core(self):
        members, snapshot = _collect_kpcore(*self.SMALL)
        n = self.SMALL[0]
        survivors = snapshot.counter(names.KCORE_PEEL_SURVIVORS)
        peeled = snapshot.counter(names.KCORE_PEEL_PEELED)
        assert survivors == len(members)
        assert survivors + peeled == n
        assert snapshot.counter(names.KPCORE_CALLS) == 1
        assert snapshot.spans[names.KPCORE_SPAN].count == 1


class TestDecompositionCounters:
    def test_rounds_and_peels_match_the_output(self):
        graph = erdos_renyi_gnm(200, 700, seed=3)
        with collecting() as metrics:
            decomposition = kp_core_decomposition(graph)
        snapshot = metrics.snapshot()
        assert (
            snapshot.counter(names.DECOMP_ROUNDS) == decomposition.degeneracy
        )
        total_array_entries = sum(
            len(fixed) for fixed in decomposition.arrays.values()
        )
        assert snapshot.counter(names.DECOMP_PEELS) == total_array_entries
        hist = snapshot.histograms[names.DECOMP_ARRAY_SIZE]
        assert hist.count == decomposition.degeneracy
        assert hist.total == total_array_entries
        # every re-key recomputes one threshold; the count is bounded by
        # the total peel-adjacency work, sum over k of 2*m_k
        assert snapshot.counter(names.DECOMP_REKEYS) <= (
            decomposition.degeneracy * 2 * graph.num_edges
        )

    def test_span_tree_has_the_three_phases(self):
        graph = erdos_renyi_gnm(120, 360, seed=9)
        with collecting() as metrics:
            kp_core_decomposition(graph)
        spans = metrics.snapshot().spans
        root = names.DECOMP_SPAN
        for child in (
            names.DECOMP_SPAN_CORE_NUMBERS,
            names.DECOMP_SPAN_SORT,
            names.DECOMP_SPAN_PEEL,
        ):
            assert f"{root}/{child}" in spans
        children_total = sum(
            summary.seconds
            for path, summary in spans.items()
            if path.startswith(f"{root}/")
        )
        assert spans[root].seconds >= children_total


# ----------------------------------------------------------------------
# maintenance pruning: the theorems fire, the windows respect the bounds
# ----------------------------------------------------------------------
class TestMaintenancePruning:
    def test_thm6_fires_and_windows_respect_definition_bounds(self):
        graph = erdos_renyi_gnm(300, 1200, seed=5)
        maintainer = KPIndexMaintainer(graph)
        rng = random.Random(7)
        edges = rng.sample(list(graph.edges()), 20)
        with collecting() as metrics:
            for u, v in edges:
                maintainer.delete_edge(u, v)
            for u, v in edges:
                maintainer.insert_edge(u, v)
        snapshot = metrics.snapshot()

        assert snapshot.counter(names.MAINT_THM6_SKIPS) >= 1
        assert snapshot.counter(names.MAINT_THM3_WINDOWS) >= 1
        assert snapshot.counter(names.MAINT_THM8_WINDOWS) >= 1
        # Theorem 6 skips plus actual re-peels account for every array
        # the k-loop examined, minus the minor-case updates.
        assert snapshot.counter(names.MAINT_ARRAYS_REPEELED) + snapshot.counter(
            names.MAINT_THM6_SKIPS
        ) <= snapshot.counter(names.MAINT_ARRAYS_EXAMINED)

        # Defs. 5-7: windows are real sub-intervals of [0, 1], never
        # inverted — a negative width would mean p_- exceeded p_+.
        width = snapshot.histograms[names.MAINT_WINDOW_WIDTH]
        p_minus = snapshot.histograms[names.MAINT_WINDOW_P_MINUS]
        p_plus = snapshot.histograms[names.MAINT_WINDOW_P_PLUS]
        assert width.count == p_minus.count == p_plus.count
        assert width.minimum >= 0.0
        assert p_minus.minimum >= 0.0
        assert p_plus.maximum <= 1.0
        assert p_minus.maximum <= p_plus.maximum

        # both update spans were recorded, once per edge operation
        assert snapshot.spans[names.MAINT_SPAN_INSERT].count == len(edges)
        assert snapshot.spans[names.MAINT_SPAN_DELETE].count == len(edges)

    def test_thm2_and_thm7_skip_arrays_above_the_touched_cores(self):
        # A dense clique drives the degeneracy to 11 while the ring
        # endpoints stay at core number 2, so the k-range cut (Thm. 2 on
        # insert, Thm. 7 on delete) provably skips the high-k arrays.
        clique = list(combinations(range(12), 2))
        ring = [(100 + i, 100 + (i + 1) % 20) for i in range(20)]
        graph = Graph(clique + ring)
        maintainer = KPIndexMaintainer(graph)
        assert maintainer.index.degeneracy == 11

        with collecting() as metrics:
            maintainer.insert_edge(100, 103)
            maintainer.delete_edge(100, 103)
        snapshot = metrics.snapshot()
        assert snapshot.counter(names.MAINT_THM2_SKIPS) >= 1
        assert snapshot.counter(names.MAINT_THM7_SKIPS) >= 1


# ----------------------------------------------------------------------
# index query touch counts
# ----------------------------------------------------------------------
class TestQueryCounters:
    def test_touched_vertices_equal_answer_sizes(self):
        graph = erdos_renyi_gnm(200, 800, seed=13)
        index = KPIndex.build(graph)
        with collecting() as metrics:
            sizes = [
                len(index.query(k, p))
                for k, p in ((2, 0.3), (3, 0.5), (50, 0.5))
            ]
        snapshot = metrics.snapshot()
        assert snapshot.counter(names.INDEX_QUERIES) == 3
        assert snapshot.counter(names.INDEX_VERTICES_TOUCHED) == sum(sizes)
        answer = snapshot.histograms[names.INDEX_ANSWER_SIZE]
        assert answer.count == 3
        assert answer.maximum == max(sizes)
        # k=50 exceeds the degeneracy: that query is empty
        assert sizes[-1] == 0
        assert snapshot.counter(names.INDEX_EMPTY_QUERIES) >= 1
