"""Hypothesis property tests for the graph substrate."""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.metrics import (
    connected_triplet_count,
    density,
    global_clustering_coefficient,
    triangle_count,
)
from repro.graph.traversal import connected_components
from repro.graph.views import sample_edges, sample_vertices


MAX_N = 14

edges_strategy = st.lists(
    st.tuples(st.integers(0, MAX_N - 1), st.integers(0, MAX_N - 1)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=40,
)


@given(edges_strategy)
@settings(max_examples=100, deadline=None)
def test_handshake_lemma(edges):
    g = Graph(edges)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(edges_strategy)
@settings(max_examples=100, deadline=None)
def test_edges_iterator_covers_each_edge_once(edges):
    g = Graph(edges)
    seen = {frozenset(e) for e in g.edges()}
    assert len(seen) == g.num_edges
    for u, v in g.edges():
        assert g.has_edge(u, v)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_edge_list_round_trip(edges):
    g = Graph(edges)
    buffer = io.StringIO()
    write_edge_list(g, buffer)
    buffer.seek(0)
    again = read_edge_list(buffer)
    # isolated vertices are not representable in an edge list; compare the
    # non-isolated structure
    non_isolated = [v for v in g.vertices() if g.degree(v) > 0]
    assert again == g.induced_subgraph(non_isolated)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_compact_snapshot_is_faithful(edges):
    g = Graph(edges)
    snap = CompactAdjacency(g)
    assert snap.num_edges == g.num_edges
    for v in g.vertices():
        i = snap.index_of(v)
        assert {snap.labels[j] for j in snap.neighbor_slice(i)} == g.neighbors(v)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_components_partition_the_vertex_set(edges):
    g = Graph(edges)
    components = connected_components(g)
    union: set = set()
    for component in components:
        assert not (union & component)
        union |= component
    assert union == set(g.vertices())
    # no edge crosses components
    index_of = {v: i for i, c in enumerate(components) for v in c}
    for u, v in g.edges():
        assert index_of[u] == index_of[v]


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_metric_ranges(edges):
    g = Graph(edges)
    assert 0.0 <= density(g) <= 1.0
    cc = global_clustering_coefficient(g)
    assert 0.0 <= cc <= 1.0
    assert triangle_count(g) * 3 <= max(1, connected_triplet_count(g)) * 1


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_triangles_invariant_under_relabeling(edges):
    g = Graph(edges)
    relabeled = Graph(
        ((f"x{u}", f"x{v}") for u, v in g.edges())
    )
    assert triangle_count(relabeled) == triangle_count(g)


@given(edges_strategy, st.floats(0.1, 1.0), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_sampling_shrinks(edges, ratio, seed):
    g = Graph(edges)
    if g.num_vertices == 0 or g.num_edges == 0:
        return
    vs = sample_vertices(g, ratio, seed=seed)
    es = sample_edges(g, ratio, seed=seed)
    assert vs.num_vertices <= g.num_vertices
    assert es.num_edges <= g.num_edges
    for u, v in es.edges():
        assert g.has_edge(u, v)
