"""Tests for the concurrent query server and its versioned result cache.

Three pillars, mirroring the guarantees in ``docs/serving.md``:

* **Differential soak** — a seeded interleaving of queries and updates
  must return exactly the naive fixpoint answer (as a set) at *every*
  query, across seeds and with the cache on and off.
* **No stale cache** — after any update sequence, every cached entry's
  stored version equals the live ``A_k`` version, and an update that
  touched ``A_k`` always purges its pre-update entries.
* **Concurrency** — reader threads hammering the server while a writer
  applies a journaled update stream see no exceptions and no torn
  answers (every answer equals the index state at some update
  boundary), and the final index equals a from-scratch rebuild.
"""

from __future__ import annotations

import os
import tempfile
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.core.index import KPIndex
from repro.core.naive import naive_kp_core_vertices
from repro.bench.serving import (
    percentile,
    run_differential_probes,
    run_serve_bench,
)
from repro.obs import names
from repro.obs.trace import tracing
from repro.service import (
    DurableMaintainer,
    KPCoreServer,
    QueryCache,
    RWLock,
    WorkloadSpec,
    generate_workload,
    split_workload,
)


def make_server(
    directory: str,
    cache: bool = True,
    cache_size: int = 4096,
    min_answer_size: int = 0,
) -> KPCoreServer:
    durable = DurableMaintainer(
        os.path.join(directory, "state"), checkpoint_every=10_000
    )
    return KPCoreServer(
        durable,
        cache_size=cache_size,
        cache_enabled=cache,
        min_answer_size=min_answer_size,
    )


# ----------------------------------------------------------------------
# workload generator
# ----------------------------------------------------------------------
class TestWorkload:
    def test_spec_parse_round_trip(self):
        spec = WorkloadSpec.parse("ops=10,query=3,vertices=9,kmax=2")
        assert spec.ops == 10 and spec.query == 3.0
        assert spec.vertices == 9 and spec.kmax == 2
        assert WorkloadSpec.parse(spec.to_string()) == spec

    def test_empty_spec_is_default(self):
        assert WorkloadSpec.parse("") == WorkloadSpec()

    def test_bad_spec_items_raise(self):
        for bad in ("ops", "ops=x", "bogus=3", "vertices=1", "kmax=0",
                    "query=-1,insert=0,delete=0", "plevels=0"):
            with pytest.raises(ParameterError):
                WorkloadSpec.parse(bad)

    def test_deterministic_per_seed(self):
        spec = "ops=80,vertices=12,prefill=15"
        assert generate_workload(spec, 3) == generate_workload(spec, 3)
        assert generate_workload(spec, 3) != generate_workload(spec, 4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_updates_always_applicable(self, seed):
        """Inserts target absent pairs, deletes target present edges."""
        ops = generate_workload("ops=150,vertices=10,prefill=25", seed)
        edges: set[tuple[int, int]] = set()
        queries = 0
        for op in ops:
            if op[0] == "query":
                _, k, p = op
                assert 1 <= k and 0.0 <= p <= 1.0
                queries += 1
                continue
            _, u, v = op
            key = (min(u, v), max(u, v))
            assert u != v
            if op[0] == "insert":
                assert key not in edges
                edges.add(key)
            else:
                assert key in edges
                edges.remove(key)
        assert queries > 0

    def test_split_preserves_order(self):
        ops = generate_workload("ops=60,vertices=8,prefill=10", 5)
        queries, updates = split_workload(ops)
        assert len(queries) + len(updates) == len(ops)
        assert [op for op in ops if op[0] != "query"] == updates

    def test_skew_parses_and_round_trips(self):
        spec = WorkloadSpec.parse("ops=10,skew=1.2")
        assert spec.skew == 1.2
        assert WorkloadSpec.parse(spec.to_string()) == spec
        assert WorkloadSpec().skew == 0.0
        with pytest.raises(ParameterError):
            WorkloadSpec.parse("skew=-0.5")

    def test_skew_changes_fingerprint(self):
        assert (
            WorkloadSpec.parse("skew=1.2").fingerprint()
            != WorkloadSpec().fingerprint()
        )

    def test_zipf_deterministic_per_seed(self):
        spec = "ops=120,vertices=12,prefill=15,skew=1.5"
        assert generate_workload(spec, 3) == generate_workload(spec, 3)
        assert generate_workload(spec, 3) != generate_workload(spec, 4)

    def test_zipf_leaves_update_stream_unchanged(self):
        """Query draws use a dedicated RNG: specs differing only in skew
        emit byte-identical insert/delete sequences for a seed."""
        base = "ops=200,vertices=15,prefill=25"
        for seed in (0, 1, 7):
            uniform = generate_workload(base, seed)
            zipf = generate_workload(base + ",skew=1.5", seed)
            strip = lambda ops: [op for op in ops if op[0] != "query"]
            assert strip(uniform) == strip(zipf)
            assert [op[0] for op in uniform] == [op[0] for op in zipf]

    def test_zipf_concentrates_queries(self):
        """Skewed draws pile onto few hot cells; uniform draws do not."""
        from collections import Counter

        base = "ops=2000,query=8,insert=1,delete=1,vertices=20,kmax=6,plevels=10,prefill=30"

        def top3_share(spec: str) -> float:
            queries = [
                (op[1], op[2])
                for op in generate_workload(spec, 13)
                if op[0] == "query"
            ]
            counts = Counter(queries)
            return sum(n for _, n in counts.most_common(3)) / len(queries)

        assert top3_share(base + ",skew=1.5") > 0.40
        assert top3_share(base) < 0.20

    def test_zipf_draws_stay_on_grid(self):
        spec = WorkloadSpec.parse("ops=300,kmax=4,plevels=5,skew=2.0")
        grid = {level / 5 for level in range(6)}
        for op in generate_workload(spec, 2):
            if op[0] == "query":
                assert 1 <= op[1] <= 4
                assert op[2] in grid


# ----------------------------------------------------------------------
# reader-writer lock
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = threading.Event()
        release = threading.Event()

        def hold_read():
            with lock.read_locked():
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=hold_read)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            acquired = []

            def second_reader():
                with lock.read_locked():
                    acquired.append(True)

            second = threading.Thread(target=second_reader)
            second.start()
            second.join(timeout=5)
            assert acquired == [True]  # did not wait for the first reader
        finally:
            release.set()
            thread.join(timeout=5)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        reading = threading.Event()
        release_reader = threading.Event()
        write_done = threading.Event()

        def hold_read():
            with lock.read_locked():
                reading.set()
                release_reader.wait(timeout=5)

        def try_write():
            with lock.write_locked():
                write_done.set()

        reader = threading.Thread(target=hold_read)
        reader.start()
        assert reading.wait(timeout=5)
        writer = threading.Thread(target=try_write)
        writer.start()
        assert not write_done.wait(timeout=0.1)  # blocked by the reader
        release_reader.set()
        assert write_done.wait(timeout=5)
        reader.join(timeout=5)
        writer.join(timeout=5)


# ----------------------------------------------------------------------
# the cache structure itself
# ----------------------------------------------------------------------
class TestQueryCache:
    def test_hit_requires_exact_version(self):
        cache = QueryCache(capacity=8)
        cache.put(2, 0, 1, (1, 2, 3))
        assert cache.get(2, 0, 1) == (1, 2, 3)
        assert cache.get(2, 0, 2) is None  # version moved -> miss+drop
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.invalidations == 1
        assert cache.contents() == {}

    def test_purge_k_drops_only_that_k(self):
        cache = QueryCache(capacity=8)
        cache.put(2, 0, 1, (1,))
        cache.put(2, 3, 1, ())
        cache.put(3, 0, 4, (9,))
        assert cache.purge_k(2) == 2
        assert cache.contents() == {(3, 0): 4}
        assert cache.purge_k(2) == 0

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(1, 0, 0, (1,))
        cache.put(2, 0, 0, (2,))
        assert cache.get(1, 0, 0) is not None  # 1 is now most recent
        cache.put(3, 0, 0, (3,))  # evicts (2, 0)
        assert set(cache.contents()) == {(1, 0), (3, 0)}
        assert cache.stats().evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            QueryCache(capacity=0)
        with pytest.raises(ParameterError):
            QueryCache(capacity=4, min_answer_size=-1)

    def test_admission_threshold_rejects_small_answers(self):
        cache = QueryCache(capacity=8, min_answer_size=2)
        cache.put(2, 0, 1, (7,))  # below threshold: refused
        assert cache.contents() == {}
        assert cache.get(2, 0, 1) is None
        stats = cache.stats()
        assert stats.admission_rejects == 1
        cache.put(2, 0, 1, (7, 8))  # at threshold: admitted
        assert cache.get(2, 0, 1) == (7, 8)
        assert cache.stats().admission_rejects == 1

    def test_small_answers_never_evict_large_ones(self):
        cache = QueryCache(capacity=2, min_answer_size=3)
        cache.put(1, 0, 0, (1, 2, 3))
        cache.put(2, 0, 0, (4, 5, 6, 7))
        for level in range(20):  # a storm of tiny answers
            cache.put(3, level, 0, (9,))
        assert set(cache.contents()) == {(1, 0), (2, 0)}
        assert cache.stats().evictions == 0
        assert cache.stats().admission_rejects == 20

    def test_zero_threshold_restores_admit_everything(self):
        cache = QueryCache(capacity=4, min_answer_size=0)
        cache.put(2, 0, 1, ())  # even the empty answer is admitted
        assert cache.get(2, 0, 1) == ()
        assert cache.stats().admission_rejects == 0


# ----------------------------------------------------------------------
# server basics
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_rejects_bad_parameters_before_cache(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            for k, p in ((0, 0.5), (-1, 0.5), (2, -0.1), (2, 1.5)):
                with pytest.raises(ValueError):
                    server.query(k, p)
                with pytest.raises(ValueError):
                    server.query_many([(2, 0.5), (k, p)])
            # validation failures never touched the cache
            assert server.cache_stats().lookups == 0
            assert server.queries_served == 0

    def test_answers_match_naive(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0),
                 ("insert", 0, 3)]
            )
            graph = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
            for k in (1, 2, 3):
                for p in (0.0, 0.5, 2 / 3, 1.0):
                    expected = naive_kp_core_vertices(graph, k, p)
                    assert set(server.query(k, p)) == expected

    def test_repeat_query_hits_cache(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            first = server.query(2, 0.5)
            second = server.query(2, 0.5)
            assert first == second
            stats = server.cache_stats()
            assert stats.hits == 1 and stats.misses == 1

    def test_answers_are_immutable_stored_tuples(self, tmp_path):
        """query() returns the index's stored tuple: immutable (so no
        caller can poison the cache) and shared across hit and miss."""
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            first = server.query(2, 0.5)
            assert isinstance(first, tuple)
            with pytest.raises((AttributeError, TypeError)):
                first.append("junk")  # type: ignore[attr-defined]
            assert server.query(2, 0.5) is first  # the cached reference

    def test_float_spellings_of_one_level_share_one_entry(self, tmp_path):
        """Regression: keys are level indices, not raw floats — ``0.3``
        and the arithmetic spelling ``0.30000000000000004`` used to be
        two entries and silently halve the hit rate."""
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            p_exact = 0.3
            p_drifted = 0.1 + 0.2  # 0.30000000000000004
            # The premise of the regression: the two spellings really
            # are distinct doubles (that is the bug being pinned).
            assert p_exact != p_drifted  # noqa: KP002 distinctness is the premise
            first = server.query(2, p_exact)
            second = server.query(2, p_drifted)
            assert second is first  # served from the same entry
            stats = server.cache_stats()
            assert stats.hits == 1 and stats.misses == 1
            assert len(server.cache_contents()) == 1

    def test_cache_disabled_serves_correctly(self, tmp_path):
        with make_server(str(tmp_path), cache=False) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            assert set(server.query(2, 2 / 3)) == {0, 1, 2}
            stats = server.cache_stats()
            assert stats.lookups == 0 and stats.capacity == 0
            assert server.cache_contents() == {}

    def test_query_many_matches_single_queries(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0),
                 ("insert", 2, 3), ("insert", 3, 4)]
            )
            pairs = [(1, 0.0), (2, 0.5), (2, 1.0), (9, 0.5)]
            batched = server.query_many(pairs)
            assert [set(a) for a in batched] == [
                set(server.query(k, p)) for k, p in pairs
            ]

    def test_unaffected_k_survives_update(self, tmp_path):
        """The Thm. 2 skip is visible as a cache entry outliving a write."""
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)]
            )
            assert set(server.query(2, 0.5)) == {0, 1, 2}
            before = server.index.version(2)
            # Fresh pendant edge far from the triangle: both endpoints
            # have new core number 1, so Theorem 2 skips A_2 entirely.
            server.insert_edge(10, 11)
            assert server.index.version(2) == before
            assert any(k == 2 for k, _ in server.cache_contents())
            stats = server.cache_stats()
            server.query(2, 0.5)
            assert server.cache_stats().hits == stats.hits + 1

    def test_closed_server_rejects_updates(self, tmp_path):
        server = make_server(str(tmp_path))
        server.apply([("insert", 0, 1)])
        server.close()
        with pytest.raises(Exception):
            server.insert_edge(1, 2)


# ----------------------------------------------------------------------
# differential soak: server vs naive fixpoint at every probe point
# ----------------------------------------------------------------------
SOAK_SPEC = "ops=110,query=6,insert=2,delete=1,vertices=20,kmax=5,plevels=8,prefill=30"


class TestDifferentialSoak:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    def test_soak_matches_naive_everywhere(self, seed, cache):
        result = run_differential_probes(
            spec=SOAK_SPEC, seed=seed, cache=cache, probe_every=1
        )
        assert result["probes"] > 0
        assert result["stale_serves"] == 0
        if cache:
            assert result["cache_stats"]["hit_rate"] > 0

    def test_soak_inline_replay(self, tmp_path):
        """The same invariant, asserted inline (no driver indirection)."""
        mirror = Graph()
        with make_server(str(tmp_path)) as server:
            for op in generate_workload(SOAK_SPEC, seed=9):
                if op[0] == "query":
                    _, k, p = op
                    assert set(server.query(k, p)) == naive_kp_core_vertices(
                        mirror, k, p
                    )
                elif op[0] == "insert":
                    server.insert_edge(op[1], op[2])
                    mirror.add_edge(op[1], op[2])
                else:
                    server.delete_edge(op[1], op[2])
                    mirror.remove_edge(op[1], op[2])
            rebuilt = KPIndex.build(mirror)
            assert server.index.semantically_equal(rebuilt)


# ----------------------------------------------------------------------
# hypothesis: the cache can never hold (or serve) a stale entry
# ----------------------------------------------------------------------
PROBE_PAIRS = [(1, 1.0), (2, 0.5), (2, 1.0), (3, 1 / 3)]

update_sequences = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=20,
)


class TestNoStaleCache:
    @settings(max_examples=20, deadline=None)
    @given(pairs=update_sequences)
    def test_versions_match_after_every_update(self, pairs):
        """After any update, cached versions equal live versions, and
        entries of every affected ``k`` are purged (never served)."""
        mirror = Graph()
        with tempfile.TemporaryDirectory(prefix="repro-stale-") as tmp:
            with make_server(tmp) as server:
                for u, v in pairs:
                    for k, p in PROBE_PAIRS:
                        server.query(k, p)
                    before_versions = dict(server.index.versions())
                    before_entries = server.cache_contents()
                    if mirror.has_edge(u, v):
                        server.delete_edge(u, v)
                        mirror.remove_edge(u, v)
                    else:
                        server.insert_edge(u, v)
                        mirror.add_edge(u, v)
                    live = server.index
                    contents = server.cache_contents()
                    changed = {
                        k
                        for k in set(live.versions())
                        | set(before_versions)
                        if before_versions.get(k, 0) != live.version(k)
                    }
                    for (k, p), version in contents.items():
                        # no stale entry survives the eager purge
                        assert version == live.version(k)
                    for (k, p) in before_entries:
                        if k in changed:
                            # affected k: the pre-update entry is gone
                            assert (k, p) not in contents
                    # and the served answers are exact
                    for k, p in PROBE_PAIRS:
                        assert set(server.query(k, p)) == (
                            naive_kp_core_vertices(mirror, k, p)
                        )


# ----------------------------------------------------------------------
# server-level cache admission
# ----------------------------------------------------------------------
class TestServerAdmission:
    def test_small_answers_served_but_not_cached(self, tmp_path):
        with make_server(str(tmp_path), min_answer_size=3) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0),
                 ("insert", 2, 3)]
            )
            # k=3 answer is empty (< threshold): correct but never cached
            assert server.query(3, 0.5) == ()
            assert server.query(3, 0.5) == ()
            stats = server.cache_stats()
            assert stats.hits == 0 and stats.admission_rejects >= 1
            # the triangle answer (3 vertices) clears the threshold
            big = server.query(2, 0.5)
            assert len(big) == 3
            assert server.query(2, 0.5) is big
            assert server.cache_stats().hits == 1

    def test_default_threshold_is_zero(self, tmp_path):
        """min_answer_size=0 (the default) restores admit-everything."""
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1)])
            assert server.query(5, 1.0) == ()  # empty, still admitted
            server.query(5, 1.0)
            stats = server.cache_stats()
            assert stats.hits == 1 and stats.admission_rejects == 0


# ----------------------------------------------------------------------
# hypothesis: (k, level) keying never serves a wrong-level answer
# ----------------------------------------------------------------------
LEVEL_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (0, 5)]

query_streams = st.lists(
    st.tuples(
        st.integers(1, 4),
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


class TestLevelKeyedCacheSoundness:
    @settings(max_examples=25, deadline=None)
    @given(queries=query_streams)
    def test_level_keying_never_serves_wrong_level(self, queries):
        """Any float stream — grid points, drifted spellings, arbitrary
        reals — must get the exact naive answer even when distinct p's
        collapse onto one cache entry."""
        mirror = Graph(LEVEL_EDGES)
        with tempfile.TemporaryDirectory(prefix="repro-level-") as tmp:
            with make_server(tmp) as server:
                server.apply([("insert", u, v) for u, v in LEVEL_EDGES])
                for k, p in queries:
                    assert set(server.query(k, p)) == (
                        naive_kp_core_vertices(mirror, k, p)
                    ), (k, p)


# ----------------------------------------------------------------------
# lock-hold tail: the first-miss rebuild must not happen under the lock
# ----------------------------------------------------------------------
class TestLockHoldBounds:
    def test_query_lock_hold_bounded_by_answer_size(self, tmp_path):
        """No query's read-lock hold may exceed a bound proportional to
        its answer size — the old cache-hit path rebuilt a list (and the
        miss path peeled the whole level suffix) under the lock, which
        was the entire p99 == max tail in the committed baseline."""
        spec = "ops=150,query=8,insert=1,delete=1,vertices=30,kmax=4,prefill=60"
        with make_server(str(tmp_path)) as server:
            with tracing() as tracer:
                for op in generate_workload(spec, seed=4):
                    if op[0] == "query":
                        server.query(op[1], op[2])
                    elif op[0] == "insert":
                        server.insert_edge(op[1], op[2])
                    else:
                        server.delete_edge(op[1], op[2])
                events = tracer.events()
        query_spans = {
            e.span_id: e
            for e in events
            if e.name == names.TRACE_SERVER_QUERY
        }
        holds = [
            e
            for e in events
            if e.name == names.TRACE_LOCK_READ_HOLD
            and e.parent_id in query_spans
        ]
        assert holds
        for hold in holds:
            size = int(query_spans[hold.parent_id].attrs["answer_size"])
            # Generous constant slack for interpreter noise; the 1e-4
            # s/vertex term is the only allowed size dependence.
            assert hold.dur <= 0.05 + 1e-4 * size, (hold.dur, size)
        # Structural half: a cache hit never runs the answer build.
        build_parents = {
            e.parent_id
            for e in events
            if e.name == names.TRACE_QUERY_ANSWER
        }
        hold_by_query = {h.parent_id: h for h in holds}
        hits = [
            e for e in query_spans.values() if e.attrs.get("cache_hit")
        ]
        assert hits
        for span in hits:
            hold = hold_by_query[span.span_id]
            assert hold.span_id not in build_parents


# ----------------------------------------------------------------------
# concurrency stress: readers vs one journaled writer
# ----------------------------------------------------------------------
class TestConcurrencyStress:
    def test_readers_never_see_torn_answers(self, tmp_path):
        spec = "ops=36,query=0,insert=2,delete=1,vertices=14,kmax=4,prefill=20"
        updates = [
            op for op in generate_workload(spec, seed=11) if op[0] != "query"
        ]
        # Valid answers per probe pair at every write boundary (the
        # initial empty state plus each update prefix).
        mirror = Graph()
        valid: dict[tuple[int, float], set[frozenset]] = {
            pair: set() for pair in PROBE_PAIRS
        }
        for pair in PROBE_PAIRS:
            valid[pair].add(frozenset(naive_kp_core_vertices(mirror, *pair)))
        for op, u, v in updates:
            if op == "insert":
                mirror.add_edge(u, v)
            else:
                mirror.remove_edge(u, v)
            for pair in PROBE_PAIRS:
                valid[pair].add(
                    frozenset(naive_kp_core_vertices(mirror, *pair))
                )

        errors: list[BaseException] = []
        done = threading.Event()

        with make_server(str(tmp_path)) as server:

            def reader(offset: int) -> None:
                iterations = 0
                try:
                    while not done.is_set() and iterations < 400:
                        pair = PROBE_PAIRS[
                            (iterations + offset) % len(PROBE_PAIRS)
                        ]
                        answer = frozenset(server.query(*pair))
                        assert answer in valid[pair], (
                            f"torn answer for {pair}: {sorted(answer)!r}"
                        )
                        if iterations % 7 == 0:
                            batch = server.query_many(PROBE_PAIRS)
                            for probed, got in zip(PROBE_PAIRS, batch):
                                assert frozenset(got) in valid[probed]
                        iterations += 1
                except BaseException as error:
                    errors.append(error)

            threads = [
                threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for i, op in enumerate(updates):
                    server.apply([op])
                    if (i + 1) % 10 == 0:
                        server.checkpoint()
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors, errors
            assert server.index.semantically_equal(KPIndex.build(mirror))
            # the writer's journal really saw every update
            assert server.durable.stats.journaled == len(updates)


# ----------------------------------------------------------------------
# batched writes through the server
# ----------------------------------------------------------------------
class TestBatchedServer:
    def test_apply_batch_matches_sequential_server(self, tmp_path):
        spec = "ops=80,query=0,insert=2,delete=1,vertices=14,kmax=4,prefill=25"
        updates = [
            op for op in generate_workload(spec, seed=6) if op[0] != "query"
        ]
        with make_server(str(tmp_path / "a")) as batched, make_server(
            str(tmp_path / "b")
        ) as sequential:
            for i in range(0, len(updates), 8):
                batched.apply_batch(updates[i : i + 8])
            sequential.apply(updates)
            assert batched.index.semantically_equal(sequential.index)

    def test_apply_batch_purges_only_touched_arrays(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", u, v) for u, v in
                          [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]])
            for k, p in [(1, 1.0), (2, 0.5), (2, 1.0)]:
                server.query(k, p)
            assert server.cache_contents()
            before = dict(server.index.versions())
            # pendant edges between fresh vertices: touches A_1 only
            server.apply_batch([("insert", 10, 11), ("insert", 12, 13)])
            contents = server.cache_contents()
            for (k, level), version in contents.items():
                assert version == server.index.version(k)
            for k in set(server.index.versions()) | set(before):
                if before.get(k, 0) == server.index.version(k):
                    continue
                assert all(key[0] != k for key in contents)  # noqa: KP002 integer k cache keys, not p-values

    def test_batched_soak_matches_naive_everywhere(self):
        result = run_differential_probes(
            spec=SOAK_SPEC + ",batch=8", seed=4, probe_every=1
        )
        assert result["probes"] > 0
        assert result["stale_serves"] == 0

    def test_three_readers_one_batch_writer_no_stale(self, tmp_path):
        # apply_batch is atomic under the write lock, so readers may only
        # observe batch-boundary states — a strictly smaller valid set
        # than the per-update boundaries of the sequential stress test.
        spec = "ops=36,query=0,insert=2,delete=1,vertices=14,kmax=4,prefill=20"
        updates = [
            op for op in generate_workload(spec, seed=11) if op[0] != "query"
        ]
        batch = 4
        mirror = Graph()
        valid: dict[tuple[int, float], set[frozenset]] = {
            pair: set() for pair in PROBE_PAIRS
        }
        for pair in PROBE_PAIRS:
            valid[pair].add(frozenset(naive_kp_core_vertices(mirror, *pair)))
        for i in range(0, len(updates), batch):
            for op, u, v in updates[i : i + batch]:
                if op == "insert":
                    mirror.add_edge(u, v)
                else:
                    mirror.remove_edge(u, v)
            for pair in PROBE_PAIRS:
                valid[pair].add(
                    frozenset(naive_kp_core_vertices(mirror, *pair))
                )

        errors: list[BaseException] = []
        done = threading.Event()

        with make_server(str(tmp_path)) as server:

            def reader(offset: int) -> None:
                iterations = 0
                try:
                    while not done.is_set() and iterations < 400:
                        pair = PROBE_PAIRS[
                            (iterations + offset) % len(PROBE_PAIRS)
                        ]
                        answer = frozenset(server.query(*pair))
                        assert answer in valid[pair], (
                            f"stale/torn answer for {pair}: "
                            f"{sorted(answer)!r} is not any batch-boundary "
                            "state"
                        )
                        iterations += 1
                except BaseException as error:
                    errors.append(error)

            threads = [
                threading.Thread(
                    target=reader, args=(i,), name=f"batch-reader-{i}"
                )
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for i in range(0, len(updates), batch):
                    server.apply_batch(updates[i : i + batch])
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors, errors
            assert server.index.semantically_equal(KPIndex.build(mirror))
            # one journal record per batch, not per update
            assert server.durable.stats.journaled == -(-len(updates) // batch)


class TestWorkloadBatchKey:
    def test_batch_parses_and_round_trips(self):
        spec = WorkloadSpec.parse("ops=50,batch=8")
        assert spec.batch == 8
        assert WorkloadSpec.parse(spec.to_string()) == spec

    def test_batch_default_is_one(self):
        assert WorkloadSpec().batch == 1

    def test_batch_validated(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(batch=0)

    def test_batch_changes_fingerprint_not_the_stream(self):
        plain = WorkloadSpec.parse("ops=60,vertices=12")
        batched = WorkloadSpec.parse("ops=60,vertices=12,batch=8")
        assert plain.fingerprint() != batched.fingerprint()
        # purely an application knob: the generated ops are identical
        assert generate_workload(plain, seed=3) == generate_workload(
            batched, seed=3
        )


# ----------------------------------------------------------------------
# bench drivers
# ----------------------------------------------------------------------
class TestServeBenchDriver:
    def test_percentile(self):
        values = sorted([0.1, 0.2, 0.3, 0.4])
        assert percentile(values, 0.0) == 0.1
        assert percentile(values, 1.0) == 0.4
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ParameterError):
            percentile(values, 1.5)

    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    def test_run_serve_bench_reports(self, tmp_path, cache):
        result = run_serve_bench(
            str(tmp_path / "state"),
            spec="ops=80,vertices=16,kmax=4,prefill=20",
            seed=2,
            threads=2,
            cache=cache,
        )
        assert result["queries"] > 0 and result["updates"] > 0
        assert result["batch"] == 1
        assert result["elapsed_s"] >= 0
        assert result["query_wall_s"] > 0 and result["update_wall_s"] >= 0
        assert result["query_qps"] > 0 and result["ops_per_s"] > 0
        assert "min_answer_size" in result
        assert "qps" not in result  # replaced by query_qps / ops_per_s
        assert set(result["latency_ms"]) == {"p50", "p95", "p99", "max"}
        if cache:
            assert result["cache_stats"]["hits"] > 0
            assert "admission_rejects" in result["cache_stats"]
        else:
            assert result["cache_stats"]["hits"] == 0

    def test_run_serve_bench_batched_write_path(self, tmp_path):
        result = run_serve_bench(
            str(tmp_path / "state"),
            spec="ops=80,vertices=16,kmax=4,prefill=20,batch=8",
            seed=2,
            threads=2,
        )
        assert result["batch"] == 8
        assert result["updates"] > 0 and result["ops_per_s"] > 0
        # the state directory is recoverable and exact after the batches
        durable = DurableMaintainer(
            str(tmp_path / "state"), must_exist=True
        )
        try:
            assert durable.index.semantically_equal(
                KPIndex.build(durable.graph)
            )
        finally:
            durable.close()

    def test_serve_bench_state_survives_for_recovery(self, tmp_path):
        """The bench writes through the durable layer: recovery works."""
        state = str(tmp_path / "state")
        run_serve_bench(
            state,
            spec="ops=40,vertices=12,kmax=3,prefill=12",
            seed=3,
            threads=1,
        )
        durable = DurableMaintainer(state, must_exist=True)
        try:
            assert durable.recovery is not None
            rebuilt = KPIndex.build(durable.graph)
            assert durable.index.semantically_equal(rebuilt)
        finally:
            durable.close()
