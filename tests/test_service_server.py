"""Tests for the concurrent query server and its versioned result cache.

Three pillars, mirroring the guarantees in ``docs/serving.md``:

* **Differential soak** — a seeded interleaving of queries and updates
  must return exactly the naive fixpoint answer (as a set) at *every*
  query, across seeds and with the cache on and off.
* **No stale cache** — after any update sequence, every cached entry's
  stored version equals the live ``A_k`` version, and an update that
  touched ``A_k`` always purges its pre-update entries.
* **Concurrency** — reader threads hammering the server while a writer
  applies a journaled update stream see no exceptions and no torn
  answers (every answer equals the index state at some update
  boundary), and the final index equals a from-scratch rebuild.
"""

from __future__ import annotations

import os
import tempfile
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.core.index import KPIndex
from repro.core.naive import naive_kp_core_vertices
from repro.bench.serving import (
    percentile,
    run_differential_probes,
    run_serve_bench,
)
from repro.service import (
    DurableMaintainer,
    KPCoreServer,
    QueryCache,
    RWLock,
    WorkloadSpec,
    generate_workload,
    split_workload,
)


def make_server(
    directory: str, cache: bool = True, cache_size: int = 4096
) -> KPCoreServer:
    durable = DurableMaintainer(
        os.path.join(directory, "state"), checkpoint_every=10_000
    )
    return KPCoreServer(durable, cache_size=cache_size, cache_enabled=cache)


# ----------------------------------------------------------------------
# workload generator
# ----------------------------------------------------------------------
class TestWorkload:
    def test_spec_parse_round_trip(self):
        spec = WorkloadSpec.parse("ops=10,query=3,vertices=9,kmax=2")
        assert spec.ops == 10 and spec.query == 3.0
        assert spec.vertices == 9 and spec.kmax == 2
        assert WorkloadSpec.parse(spec.to_string()) == spec

    def test_empty_spec_is_default(self):
        assert WorkloadSpec.parse("") == WorkloadSpec()

    def test_bad_spec_items_raise(self):
        for bad in ("ops", "ops=x", "bogus=3", "vertices=1", "kmax=0",
                    "query=-1,insert=0,delete=0", "plevels=0"):
            with pytest.raises(ParameterError):
                WorkloadSpec.parse(bad)

    def test_deterministic_per_seed(self):
        spec = "ops=80,vertices=12,prefill=15"
        assert generate_workload(spec, 3) == generate_workload(spec, 3)
        assert generate_workload(spec, 3) != generate_workload(spec, 4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_updates_always_applicable(self, seed):
        """Inserts target absent pairs, deletes target present edges."""
        ops = generate_workload("ops=150,vertices=10,prefill=25", seed)
        edges: set[tuple[int, int]] = set()
        queries = 0
        for op in ops:
            if op[0] == "query":
                _, k, p = op
                assert 1 <= k and 0.0 <= p <= 1.0
                queries += 1
                continue
            _, u, v = op
            key = (min(u, v), max(u, v))
            assert u != v
            if op[0] == "insert":
                assert key not in edges
                edges.add(key)
            else:
                assert key in edges
                edges.remove(key)
        assert queries > 0

    def test_split_preserves_order(self):
        ops = generate_workload("ops=60,vertices=8,prefill=10", 5)
        queries, updates = split_workload(ops)
        assert len(queries) + len(updates) == len(ops)
        assert [op for op in ops if op[0] != "query"] == updates


# ----------------------------------------------------------------------
# reader-writer lock
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = threading.Event()
        release = threading.Event()

        def hold_read():
            with lock.read_locked():
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=hold_read)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            acquired = []

            def second_reader():
                with lock.read_locked():
                    acquired.append(True)

            second = threading.Thread(target=second_reader)
            second.start()
            second.join(timeout=5)
            assert acquired == [True]  # did not wait for the first reader
        finally:
            release.set()
            thread.join(timeout=5)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        reading = threading.Event()
        release_reader = threading.Event()
        write_done = threading.Event()

        def hold_read():
            with lock.read_locked():
                reading.set()
                release_reader.wait(timeout=5)

        def try_write():
            with lock.write_locked():
                write_done.set()

        reader = threading.Thread(target=hold_read)
        reader.start()
        assert reading.wait(timeout=5)
        writer = threading.Thread(target=try_write)
        writer.start()
        assert not write_done.wait(timeout=0.1)  # blocked by the reader
        release_reader.set()
        assert write_done.wait(timeout=5)
        reader.join(timeout=5)
        writer.join(timeout=5)


# ----------------------------------------------------------------------
# the cache structure itself
# ----------------------------------------------------------------------
class TestQueryCache:
    def test_hit_requires_exact_version(self):
        cache = QueryCache(capacity=8)
        cache.put(2, 0.5, 1, (1, 2, 3))
        assert cache.get(2, 0.5, 1) == (1, 2, 3)
        assert cache.get(2, 0.5, 2) is None  # version moved -> miss+drop
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.invalidations == 1
        assert cache.contents() == {}

    def test_purge_k_drops_only_that_k(self):
        cache = QueryCache(capacity=8)
        cache.put(2, 0.5, 1, (1,))
        cache.put(2, 1.0, 1, ())
        cache.put(3, 0.5, 4, (9,))
        assert cache.purge_k(2) == 2
        assert cache.contents() == {(3, 0.5): 4}
        assert cache.purge_k(2) == 0

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(1, 0.0, 0, (1,))
        cache.put(2, 0.0, 0, (2,))
        assert cache.get(1, 0.0, 0) is not None  # 1 is now most recent
        cache.put(3, 0.0, 0, (3,))  # evicts (2, 0.0)
        assert set(cache.contents()) == {(1, 0.0), (3, 0.0)}
        assert cache.stats().evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            QueryCache(capacity=0)


# ----------------------------------------------------------------------
# server basics
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_rejects_bad_parameters_before_cache(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            for k, p in ((0, 0.5), (-1, 0.5), (2, -0.1), (2, 1.5)):
                with pytest.raises(ValueError):
                    server.query(k, p)
                with pytest.raises(ValueError):
                    server.query_many([(2, 0.5), (k, p)])
            # validation failures never touched the cache
            assert server.cache_stats().lookups == 0
            assert server.queries_served == 0

    def test_answers_match_naive(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0),
                 ("insert", 0, 3)]
            )
            graph = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
            for k in (1, 2, 3):
                for p in (0.0, 0.5, 2 / 3, 1.0):
                    expected = naive_kp_core_vertices(graph, k, p)
                    assert set(server.query(k, p)) == expected

    def test_repeat_query_hits_cache(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            first = server.query(2, 0.5)
            second = server.query(2, 0.5)
            assert first == second
            stats = server.cache_stats()
            assert stats.hits == 1 and stats.misses == 1

    def test_cached_answer_is_a_copy(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            server.query(2, 0.5).append("junk")
            assert "junk" not in server.query(2, 0.5)

    def test_cache_disabled_serves_correctly(self, tmp_path):
        with make_server(str(tmp_path), cache=False) as server:
            server.apply([("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)])
            assert set(server.query(2, 2 / 3)) == {0, 1, 2}
            stats = server.cache_stats()
            assert stats.lookups == 0 and stats.capacity == 0
            assert server.cache_contents() == {}

    def test_query_many_matches_single_queries(self, tmp_path):
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0),
                 ("insert", 2, 3), ("insert", 3, 4)]
            )
            pairs = [(1, 0.0), (2, 0.5), (2, 1.0), (9, 0.5)]
            batched = server.query_many(pairs)
            assert [set(a) for a in batched] == [
                set(server.query(k, p)) for k, p in pairs
            ]

    def test_unaffected_k_survives_update(self, tmp_path):
        """The Thm. 2 skip is visible as a cache entry outliving a write."""
        with make_server(str(tmp_path)) as server:
            server.apply(
                [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)]
            )
            assert set(server.query(2, 0.5)) == {0, 1, 2}
            before = server.index.version(2)
            # Fresh pendant edge far from the triangle: both endpoints
            # have new core number 1, so Theorem 2 skips A_2 entirely.
            server.insert_edge(10, 11)
            assert server.index.version(2) == before
            assert (2, 0.5) in server.cache_contents()
            stats = server.cache_stats()
            server.query(2, 0.5)
            assert server.cache_stats().hits == stats.hits + 1

    def test_closed_server_rejects_updates(self, tmp_path):
        server = make_server(str(tmp_path))
        server.apply([("insert", 0, 1)])
        server.close()
        with pytest.raises(Exception):
            server.insert_edge(1, 2)


# ----------------------------------------------------------------------
# differential soak: server vs naive fixpoint at every probe point
# ----------------------------------------------------------------------
SOAK_SPEC = "ops=110,query=6,insert=2,delete=1,vertices=20,kmax=5,plevels=8,prefill=30"


class TestDifferentialSoak:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    def test_soak_matches_naive_everywhere(self, seed, cache):
        result = run_differential_probes(
            spec=SOAK_SPEC, seed=seed, cache=cache, probe_every=1
        )
        assert result["probes"] > 0
        assert result["stale_serves"] == 0
        if cache:
            assert result["cache_stats"]["hit_rate"] > 0

    def test_soak_inline_replay(self, tmp_path):
        """The same invariant, asserted inline (no driver indirection)."""
        mirror = Graph()
        with make_server(str(tmp_path)) as server:
            for op in generate_workload(SOAK_SPEC, seed=9):
                if op[0] == "query":
                    _, k, p = op
                    assert set(server.query(k, p)) == naive_kp_core_vertices(
                        mirror, k, p
                    )
                elif op[0] == "insert":
                    server.insert_edge(op[1], op[2])
                    mirror.add_edge(op[1], op[2])
                else:
                    server.delete_edge(op[1], op[2])
                    mirror.remove_edge(op[1], op[2])
            rebuilt = KPIndex.build(mirror)
            assert server.index.semantically_equal(rebuilt)


# ----------------------------------------------------------------------
# hypothesis: the cache can never hold (or serve) a stale entry
# ----------------------------------------------------------------------
PROBE_PAIRS = [(1, 1.0), (2, 0.5), (2, 1.0), (3, 1 / 3)]

update_sequences = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=20,
)


class TestNoStaleCache:
    @settings(max_examples=20, deadline=None)
    @given(pairs=update_sequences)
    def test_versions_match_after_every_update(self, pairs):
        """After any update, cached versions equal live versions, and
        entries of every affected ``k`` are purged (never served)."""
        mirror = Graph()
        with tempfile.TemporaryDirectory(prefix="repro-stale-") as tmp:
            with make_server(tmp) as server:
                for u, v in pairs:
                    for k, p in PROBE_PAIRS:
                        server.query(k, p)
                    before_versions = dict(server.index.versions())
                    before_entries = server.cache_contents()
                    if mirror.has_edge(u, v):
                        server.delete_edge(u, v)
                        mirror.remove_edge(u, v)
                    else:
                        server.insert_edge(u, v)
                        mirror.add_edge(u, v)
                    live = server.index
                    contents = server.cache_contents()
                    changed = {
                        k
                        for k in set(live.versions())
                        | set(before_versions)
                        if before_versions.get(k, 0) != live.version(k)
                    }
                    for (k, p), version in contents.items():
                        # no stale entry survives the eager purge
                        assert version == live.version(k)
                    for (k, p) in before_entries:
                        if k in changed:
                            # affected k: the pre-update entry is gone
                            assert (k, p) not in contents
                    # and the served answers are exact
                    for k, p in PROBE_PAIRS:
                        assert set(server.query(k, p)) == (
                            naive_kp_core_vertices(mirror, k, p)
                        )


# ----------------------------------------------------------------------
# concurrency stress: readers vs one journaled writer
# ----------------------------------------------------------------------
class TestConcurrencyStress:
    def test_readers_never_see_torn_answers(self, tmp_path):
        spec = "ops=36,query=0,insert=2,delete=1,vertices=14,kmax=4,prefill=20"
        updates = [
            op for op in generate_workload(spec, seed=11) if op[0] != "query"
        ]
        # Valid answers per probe pair at every write boundary (the
        # initial empty state plus each update prefix).
        mirror = Graph()
        valid: dict[tuple[int, float], set[frozenset]] = {
            pair: set() for pair in PROBE_PAIRS
        }
        for pair in PROBE_PAIRS:
            valid[pair].add(frozenset(naive_kp_core_vertices(mirror, *pair)))
        for op, u, v in updates:
            if op == "insert":
                mirror.add_edge(u, v)
            else:
                mirror.remove_edge(u, v)
            for pair in PROBE_PAIRS:
                valid[pair].add(
                    frozenset(naive_kp_core_vertices(mirror, *pair))
                )

        errors: list[BaseException] = []
        done = threading.Event()

        with make_server(str(tmp_path)) as server:

            def reader(offset: int) -> None:
                iterations = 0
                try:
                    while not done.is_set() and iterations < 400:
                        pair = PROBE_PAIRS[
                            (iterations + offset) % len(PROBE_PAIRS)
                        ]
                        answer = frozenset(server.query(*pair))
                        assert answer in valid[pair], (
                            f"torn answer for {pair}: {sorted(answer)!r}"
                        )
                        if iterations % 7 == 0:
                            batch = server.query_many(PROBE_PAIRS)
                            for probed, got in zip(PROBE_PAIRS, batch):
                                assert frozenset(got) in valid[probed]
                        iterations += 1
                except BaseException as error:
                    errors.append(error)

            threads = [
                threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for i, op in enumerate(updates):
                    server.apply([op])
                    if (i + 1) % 10 == 0:
                        server.checkpoint()
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors, errors
            assert server.index.semantically_equal(KPIndex.build(mirror))
            # the writer's journal really saw every update
            assert server.durable.stats.journaled == len(updates)


# ----------------------------------------------------------------------
# bench drivers
# ----------------------------------------------------------------------
class TestServeBenchDriver:
    def test_percentile(self):
        values = sorted([0.1, 0.2, 0.3, 0.4])
        assert percentile(values, 0.0) == 0.1
        assert percentile(values, 1.0) == 0.4
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ParameterError):
            percentile(values, 1.5)

    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    def test_run_serve_bench_reports(self, tmp_path, cache):
        result = run_serve_bench(
            str(tmp_path / "state"),
            spec="ops=80,vertices=16,kmax=4,prefill=20",
            seed=2,
            threads=2,
            cache=cache,
        )
        assert result["queries"] > 0 and result["updates"] > 0
        assert result["elapsed_s"] >= 0
        assert set(result["latency_ms"]) == {"p50", "p95", "p99", "max"}
        if cache:
            assert result["cache_stats"]["hits"] > 0
        else:
            assert result["cache_stats"]["hits"] == 0

    def test_serve_bench_state_survives_for_recovery(self, tmp_path):
        """The bench writes through the durable layer: recovery works."""
        state = str(tmp_path / "state")
        run_serve_bench(
            state,
            spec="ops=40,vertices=12,kmax=3,prefill=12",
            seed=3,
            threads=1,
        )
        durable = DurableMaintainer(state, must_exist=True)
        try:
            assert durable.recovery is not None
            rebuilt = KPIndex.build(durable.graph)
            assert durable.index.semantically_equal(rebuilt)
        finally:
            durable.close()
