"""Unit tests for the obs subsystem: collector, switch, snapshot, sinks."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    ENV_VAR,
    Instrumentation,
    MetricsSnapshot,
    collecting,
    collection_active,
    get_collector,
    log_snapshot,
    maybe_span,
    refresh_from_env,
    render_report,
    set_collector,
)
from repro.obs.instrumentation import _NULL_SPAN
from repro.obs.names import catalog
from repro.obs.report import counter_rows, histogram_rows, span_rows


@pytest.fixture(autouse=True)
def _no_ambient_collector():
    """Isolate every test from a REPRO_OBS collector installed at import."""
    previous = set_collector(None)
    yield
    set_collector(previous)


# ----------------------------------------------------------------------
# Instrumentation registry
# ----------------------------------------------------------------------
class TestCounters:
    def test_inc_and_add_accumulate(self):
        m = Instrumentation()
        m.inc("ops")
        m.inc("ops", 4)
        m.add("ops", 5)
        assert m.counter("ops") == 10

    def test_missing_counter_defaults_to_zero(self):
        assert Instrumentation().counter("never") == 0

    def test_reset_drops_everything(self):
        m = Instrumentation()
        m.inc("ops")
        m.observe("size", 3.0)
        with m.span("work"):
            pass
        m.reset()
        assert m.snapshot().is_empty()


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        m = Instrumentation()
        for value in (4.0, 1.0, 7.0):
            m.observe("size", value)
        hist = m.snapshot().histograms["size"]
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.minimum == 1.0
        assert hist.maximum == 7.0
        assert hist.mean == 4.0

    def test_empty_histogram_mean_is_zero(self):
        from repro.obs import HistogramSummary

        assert HistogramSummary(0, 0.0, 0.0, 0.0).mean == 0.0


class TestSpans:
    def test_nesting_encodes_paths(self):
        m = Instrumentation()
        with m.span("outer"):
            with m.span("inner"):
                pass
        snapshot = m.snapshot()
        assert set(snapshot.spans) == {"outer", "outer/inner"}
        assert snapshot.spans["outer"].count == 1
        assert m.span_seconds("outer") >= m.span_seconds("outer/inner") >= 0.0

    def test_reentry_accumulates(self):
        m = Instrumentation()
        for _ in range(3):
            with m.span("work"):
                pass
        assert m.snapshot().spans["work"].count == 3

    def test_span_survives_exceptions(self):
        m = Instrumentation()
        with pytest.raises(RuntimeError):
            with m.span("work"):
                raise RuntimeError("boom")
        assert m.snapshot().spans["work"].count == 1
        # the stack unwound: a new span is top-level again
        with m.span("after"):
            pass
        assert "after" in m.snapshot().spans

    def test_span_seconds_absent_path_is_zero(self):
        assert Instrumentation().span_seconds("nope") == 0.0


# ----------------------------------------------------------------------
# the process-wide switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_disabled_by_default_in_tests(self):
        assert get_collector() is None
        assert not collection_active()

    def test_set_collector_returns_previous(self):
        first, second = Instrumentation(), Instrumentation()
        assert set_collector(first) is None
        assert set_collector(second) is first
        assert set_collector(None) is second

    def test_collecting_scopes_and_restores(self):
        outer = Instrumentation()
        set_collector(outer)
        with collecting() as inner:
            assert get_collector() is inner
            assert inner is not outer
        assert get_collector() is outer

    def test_collecting_accepts_existing_collector(self):
        mine = Instrumentation()
        with collecting(mine) as active:
            assert active is mine
            get_collector().inc("ops")
        assert mine.counter("ops") == 1

    def test_refresh_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert refresh_from_env()
        installed = get_collector()
        assert installed is not None
        # still on: the installed collector is kept, not replaced
        assert refresh_from_env()
        assert get_collector() is installed
        monkeypatch.setenv(ENV_VAR, "0")
        assert not refresh_from_env()
        assert get_collector() is None

    def test_maybe_span_is_shared_noop_when_disabled(self):
        assert maybe_span("anything") is _NULL_SPAN
        with maybe_span("anything"):
            pass

    def test_maybe_span_records_when_enabled(self):
        with collecting() as metrics:
            with maybe_span("work"):
                pass
        assert metrics.snapshot().spans["work"].count == 1


# ----------------------------------------------------------------------
# snapshot JSON round-trip
# ----------------------------------------------------------------------
def _populated_snapshot() -> MetricsSnapshot:
    m = Instrumentation()
    m.inc("kcore.peel.calls", 2)
    m.observe("index.answer_size", 5.0)
    m.observe("index.answer_size", 11.0)
    with m.span("kpcore"):
        with m.span("peel"):
            pass
    return m.snapshot()


class TestSnapshotRoundTrip:
    def test_json_round_trip_is_lossless(self):
        snapshot = _populated_snapshot()
        assert MetricsSnapshot.from_json(snapshot.to_json()) == snapshot

    def test_save_and_load(self, tmp_path):
        snapshot = _populated_snapshot()
        target = tmp_path / "metrics.json"
        snapshot.save(str(target))
        assert MetricsSnapshot.load(str(target)) == snapshot
        # file handles work too
        buffer = io.StringIO()
        snapshot.save(buffer)
        assert MetricsSnapshot.from_json(buffer.getvalue()) == snapshot

    def test_json_is_plain_data(self):
        payload = json.loads(_populated_snapshot().to_json())
        assert set(payload) == {"counters", "histograms", "spans"}

    def test_snapshot_is_detached_from_collector(self):
        m = Instrumentation()
        m.inc("ops")
        snapshot = m.snapshot()
        m.inc("ops")
        assert snapshot.counter("ops") == 1
        assert m.counter("ops") == 2


# ----------------------------------------------------------------------
# report and log sinks
# ----------------------------------------------------------------------
class TestReport:
    def test_report_round_trips_through_json(self):
        snapshot = _populated_snapshot()
        reloaded = MetricsSnapshot.from_json(snapshot.to_json())
        assert render_report(reloaded) == render_report(snapshot)

    def test_report_contains_each_metric(self):
        text = render_report(_populated_snapshot(), title="unit")
        assert "unit" in text
        assert "kcore.peel.calls" in text
        assert "index.answer_size" in text
        assert "kpcore" in text

    def test_empty_snapshot_renders_placeholder(self):
        assert "(no metrics collected)" in render_report(MetricsSnapshot())

    def test_child_spans_indent_under_parents(self):
        _, rows = span_rows(_populated_snapshot())
        names = [row[0] for row in rows]
        assert names == ["kpcore", "  peel"]

    def test_rows_are_sorted_by_name(self):
        snapshot = _populated_snapshot()
        for rows_fn in (counter_rows, histogram_rows):
            _, rows = rows_fn(snapshot)
            assert [r[0] for r in rows] == sorted(r[0] for r in rows)


class TestLogSink:
    def test_log_snapshot_emits_one_record_per_metric(self, caplog):
        snapshot = _populated_snapshot()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            emitted = log_snapshot(snapshot)
        expected = (
            len(snapshot.counters)
            + len(snapshot.histograms)
            + len(snapshot.spans)
        )
        assert emitted == expected
        assert len(caplog.records) == expected
        kinds = {r.metric_kind for r in caplog.records}
        assert kinds == {"counter", "histogram", "span"}

    def test_empty_snapshot_logs_nothing(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            assert log_snapshot(MetricsSnapshot()) == 0
        assert not caplog.records


# ----------------------------------------------------------------------
# the names catalog
# ----------------------------------------------------------------------
def test_catalog_names_are_unique_across_kinds():
    kinds = catalog()
    all_names = [n for names in kinds.values() for n in names]
    assert len(all_names) == len(set(all_names))
    assert all(desc for names in kinds.values() for desc in names.values())
