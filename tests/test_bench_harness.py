"""Tests for the benchmark harness (timing, reporting, experiment smoke)."""

import pytest

from repro.bench.reporting import (
    banner,
    format_seconds,
    format_table,
    format_timing,
    print_table,
)
from repro.bench.timing import Timer, Timing, measure
from repro.obs import get_collector, set_collector


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            total = sum(range(2000))
        assert total == 1999000
        assert t.seconds >= 0.0

    def test_measure_returns_last_result_and_best_time(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        timing = measure(fn, repeat=3)
        assert timing.result == 3
        assert timing.seconds >= 0.0

    def test_measure_reports_min_median_and_repeats(self):
        timing = measure(lambda: sum(range(500)), repeat=5)
        assert timing.repeats == 5
        assert timing.seconds <= timing.median_seconds
        assert timing.median_seconds >= 0.0

    def test_single_run_min_equals_median(self):
        timing = measure(lambda: None)
        assert timing.repeats == 1
        assert timing.seconds == timing.median_seconds
        assert timing.metrics is None

    def test_measure_validates_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)

    def test_capture_metrics_accumulates_over_repeats(self):
        def fn():
            collector = get_collector()
            assert collector is not None
            collector.inc("test.calls")

        previous = set_collector(None)
        try:
            timing = measure(fn, repeat=3, capture_metrics=True)
            # the scoped collector was uninstalled again
            assert get_collector() is None
        finally:
            set_collector(previous)
        assert timing.metrics is not None
        assert timing.metrics.counter("test.calls") == timing.repeats == 3

    def test_capture_metrics_restores_previous_collector(self):
        from repro.obs import Instrumentation

        mine = Instrumentation()
        previous = set_collector(mine)
        try:
            measure(lambda: None, capture_metrics=True)
            assert get_collector() is mine
        finally:
            set_collector(previous)


class TestReporting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0042).endswith("ms")
        assert format_seconds(0.0000042).endswith("us")

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("alpha", 1), ("b", 123456)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # fully aligned

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456789,)])
        assert "0.123457" in text

    def test_print_table_with_title(self, capsys):
        print_table(["h"], [(1,)], title="Demo")
        out = capsys.readouterr().out
        assert "=== Demo ===" in out
        assert "h" in out

    def test_banner(self):
        assert banner("X") == "\n=== X ==="

    def test_format_timing_single_run(self):
        assert format_timing(Timing(result=None, seconds=2.5)) == "2.50s"

    def test_format_timing_repeated_run(self):
        text = format_timing(
            Timing(result=None, seconds=0.002, median_seconds=0.003, repeats=5)
        )
        assert text == "2.00ms (median 3.00ms, n=5)"


class TestExperimentSmoke:
    """Cheap smoke checks on the experiment drivers (full runs live in
    benchmarks/)."""

    def test_table2_rows(self):
        from repro.bench.experiments import table2_rows

        headers, rows = table2_rows()
        assert len(rows) == 8
        assert headers[0] == "dataset"
        names = [row[0] for row in rows]
        assert names[0] == "facebook" and names[-1] == "orkut"

    def test_fig6_shape(self):
        from repro.bench.experiments import fig6_rows

        _, rows = fig6_rows()
        by_name = {row[0]: row for row in rows}
        # the fraction constraint bites on the sparse datasets ...
        for name in ("brightkite", "gowalla", "youtube", "pokec", "dblp"):
            assert by_name[name][1] > by_name[name][2] > 0, name
        # ... but barely on the dense ones (paper Fig. 6)
        for name in ("facebook", "orkut"):
            kcore, kpcore = by_name[name][1], by_name[name][2]
            assert kpcore >= 0.7 * kcore, name

    def test_fig7_fig8_shapes(self):
        from repro.bench.experiments import fig7_rows, fig8_rows

        _, cc_rows = fig7_rows()
        for name, cc_k, cc_kp in cc_rows:
            assert cc_kp >= cc_k - 1e-9, name
        _, rho_rows = fig8_rows()
        denser = sum(1 for _, rho_k, rho_kp in rho_rows if rho_kp >= rho_k)
        assert denser >= 6  # paper: "higher on most datasets"

    def test_fig10_series_shapes(self):
        from repro.bench.experiments import fig10_series

        series = fig10_series()
        assert set(series) == {"core_number", "kp_stratum", "onion_layer"}
        core_points = series["core_number"]
        # engagement rises with core number overall
        assert core_points[-1].average > core_points[0].average
        # the kp decomposition is strictly finer than the core one
        assert len(series["kp_stratum"]) > len(core_points)

    def test_fig9_reports(self):
        from repro.bench.experiments import fig9_reports

        reports = fig9_reports()
        assert len(reports) == 2
        for label, report in reports:
            assert label.startswith("DBLP-")
            assert len(report.cascade) >= 1


class TestMetricColumns:
    """``with_metrics`` appends counter columns to the timing figures.

    The dataset registry is monkeypatched to one small seeded graph: the
    point here is the column plumbing, not the full-figure timings the
    benchmarks cover.
    """

    @pytest.fixture(autouse=True)
    def _no_ambient_collector(self):
        # isolate from a REPRO_OBS=1 environment: the "default follows the
        # active collector" test needs a known-off starting state
        previous = set_collector(None)
        yield
        set_collector(previous)

    @pytest.fixture
    def tiny_datasets(self, monkeypatch):
        from repro.bench import experiments
        from repro.graph.generators import erdos_renyi_gnm

        tiny = erdos_renyi_gnm(60, 180, seed=2)
        monkeypatch.setattr(experiments, "load_all", lambda: {"tiny": tiny})
        return experiments

    def test_fig11_appends_peel_counters(self, tiny_datasets):
        headers, rows = tiny_datasets.fig11_rows(k=3, p=0.5, with_metrics=True)
        assert headers[-3:] == ("kp_peeled", "kp_survivors", "query_touched")
        (row,) = rows
        peeled, survivors = row[-3], row[-2]
        assert peeled + survivors == 60

    def test_fig11_without_metrics_keeps_base_columns(self, tiny_datasets):
        headers, _ = tiny_datasets.fig11_rows(k=3, p=0.5, with_metrics=False)
        assert headers[-1] == "speedup"

    def test_fig13_appends_decomposition_counters(self, tiny_datasets):
        headers, rows = tiny_datasets.fig13_rows(with_metrics=True)
        assert headers[-2:] == ("peels", "rekeys")
        (row,) = rows
        assert row[-2] > 0  # every k-core vertex is peeled at least once

    def test_fig15_appends_pruning_counters(self, tiny_datasets):
        headers, rows = tiny_datasets.fig15_rows(batch=5, with_metrics=True)
        assert headers[-3:] == ("thm_skips", "repeeled", "early_stops")
        (row,) = rows
        assert row[-2] >= 0

    def test_default_follows_active_collector(self, tiny_datasets):
        from repro.obs import collecting

        headers_off, _ = tiny_datasets.fig13_rows()
        with collecting():
            headers_on, _ = tiny_datasets.fig13_rows()
        assert "peels" not in headers_off
        assert "peels" in headers_on
