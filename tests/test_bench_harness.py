"""Tests for the benchmark harness (timing, reporting, experiment smoke)."""

import pytest

from repro.bench.reporting import banner, format_seconds, format_table, print_table
from repro.bench.timing import Timer, measure


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            total = sum(range(2000))
        assert total == 1999000
        assert t.seconds >= 0.0

    def test_measure_returns_last_result_and_best_time(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        timing = measure(fn, repeat=3)
        assert timing.result == 3
        assert timing.seconds >= 0.0

    def test_measure_validates_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)


class TestReporting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0042).endswith("ms")
        assert format_seconds(0.0000042).endswith("us")

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("alpha", 1), ("b", 123456)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # fully aligned

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456789,)])
        assert "0.123457" in text

    def test_print_table_with_title(self, capsys):
        print_table(["h"], [(1,)], title="Demo")
        out = capsys.readouterr().out
        assert "=== Demo ===" in out
        assert "h" in out

    def test_banner(self):
        assert banner("X") == "\n=== X ==="


class TestExperimentSmoke:
    """Cheap smoke checks on the experiment drivers (full runs live in
    benchmarks/)."""

    def test_table2_rows(self):
        from repro.bench.experiments import table2_rows

        headers, rows = table2_rows()
        assert len(rows) == 8
        assert headers[0] == "dataset"
        names = [row[0] for row in rows]
        assert names[0] == "facebook" and names[-1] == "orkut"

    def test_fig6_shape(self):
        from repro.bench.experiments import fig6_rows

        _, rows = fig6_rows()
        by_name = {row[0]: row for row in rows}
        # the fraction constraint bites on the sparse datasets ...
        for name in ("brightkite", "gowalla", "youtube", "pokec", "dblp"):
            assert by_name[name][1] > by_name[name][2] > 0, name
        # ... but barely on the dense ones (paper Fig. 6)
        for name in ("facebook", "orkut"):
            kcore, kpcore = by_name[name][1], by_name[name][2]
            assert kpcore >= 0.7 * kcore, name

    def test_fig7_fig8_shapes(self):
        from repro.bench.experiments import fig7_rows, fig8_rows

        _, cc_rows = fig7_rows()
        for name, cc_k, cc_kp in cc_rows:
            assert cc_kp >= cc_k - 1e-9, name
        _, rho_rows = fig8_rows()
        denser = sum(1 for _, rho_k, rho_kp in rho_rows if rho_kp >= rho_k)
        assert denser >= 6  # paper: "higher on most datasets"

    def test_fig10_series_shapes(self):
        from repro.bench.experiments import fig10_series

        series = fig10_series()
        assert set(series) == {"core_number", "kp_stratum", "onion_layer"}
        core_points = series["core_number"]
        # engagement rises with core number overall
        assert core_points[-1].average > core_points[0].average
        # the kp decomposition is strictly finer than the core one
        assert len(series["kp_stratum"]) > len(core_points)

    def test_fig9_reports(self):
        from repro.bench.experiments import fig9_reports

        reports = fig9_reports()
        assert len(reports) == 2
        for label, report in reports:
            assert label.startswith("DBLP-")
            assert len(report.cascade) >= 1
