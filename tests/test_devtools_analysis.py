"""Unit suite for the whole-program analysis layer.

Covers the call-graph builder (module naming, import resolution,
attribute-type inference, call resolution), effect inference (direct
classification plus transitive propagation), the lock-context
propagator (lexical scopes and interprocedural entry contexts), the
report renderers (JSON and SARIF 2.1.0), the ``--select``/``--ignore``
filters, the single-directory-walk contract of the driver, and the
repo-level acceptance gates.
"""

from __future__ import annotations

import ast
import io
import json
import os

import pytest

from repro.devtools.analysis import analyze_files, build_program
from repro.devtools.analysis.contexts import (
    LOCK_EXCLUSIVE,
    LOCK_READ,
    LOCK_WRITE,
    compute_contexts,
)
from repro.devtools.analysis.effects import (
    Effect,
    classify_call,
    compute_effects,
)
from repro.devtools.lint import filter_codes, run
from repro.devtools.reporting import (
    SARIF_VERSION,
    render_json,
    sarif_document,
)
from repro.devtools.violations import RULE_CODES, Violation

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
REPO_SRC = os.path.join(REPO_ROOT, "src")


def write_package(tmp_path, files: dict[str, str]) -> list[str]:
    paths = []
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        package_dir = target.parent
        while package_dir != tmp_path:
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("")
            package_dir = package_dir.parent
        target.write_text(source)
        paths.append(str(target))
    return sorted(paths)


# ----------------------------------------------------------------------
# call graph: a synthetic two-module package
# ----------------------------------------------------------------------
ENGINE_SRC = (
    "class Engine:\n"
    "    def __init__(self):\n"
    "        self.count = 0\n"
    "    def step(self):\n"
    "        self.count += 1\n"
    "        return self.count\n"
    "def make_engine():\n"
    "    return Engine()\n"
)
DRIVER_SRC = (
    "from pkg.engine import Engine, make_engine\n"
    "class Driver:\n"
    "    def __init__(self, engine: Engine):\n"
    "        self._engine = engine\n"
    "    def run(self):\n"
    "        return self._engine.step()\n"
    "def main():\n"
    "    driver = Driver(make_engine())\n"
    "    return driver.run()\n"
    "def fallback(mystery, items):\n"
    "    items.append(1)\n"
    "    return mystery.step()\n"
)


@pytest.fixture()
def two_module_program(tmp_path):
    paths = write_package(
        tmp_path, {"pkg/engine.py": ENGINE_SRC, "pkg/driver.py": DRIVER_SRC}
    )
    return build_program(paths)


class TestCallGraph:
    def test_module_names_follow_package_structure(self, two_module_program):
        # Only the two named files are analyzed; the module names are
        # still derived from the on-disk package structure.
        assert set(two_module_program.modules) == {"pkg.engine", "pkg.driver"}

    def test_functions_are_registered_with_qualnames(self, two_module_program):
        assert "pkg.engine.Engine.step" in two_module_program.functions
        assert "pkg.driver.Driver.run" in two_module_program.functions
        assert "pkg.driver.main" in two_module_program.functions

    def test_annotated_param_infers_attribute_type(self, two_module_program):
        driver_cls = two_module_program.classes["pkg.driver.Driver"]
        assert driver_cls.attr_types["_engine"] == "pkg.engine.Engine"

    def test_self_attr_method_call_resolves_across_modules(self, two_module_program):
        run_info = two_module_program.functions["pkg.driver.Driver.run"]
        targets = [t for site in run_info.calls for t in site.targets]
        assert targets == ["pkg.engine.Engine.step"]

    def test_constructor_and_local_type_resolution(self, two_module_program):
        main_info = two_module_program.functions["pkg.driver.main"]
        targets = {t for site in main_info.calls for t in site.targets}
        assert "pkg.driver.Driver.__init__" in targets
        assert "pkg.engine.make_engine" in targets
        # ``driver`` was assigned ``Driver(...)``, so ``driver.run()``
        # resolves through the local-type table.
        assert "pkg.driver.Driver.run" in targets

    def test_unique_method_fallback_skips_ambient_names(self, two_module_program):
        fallback_info = two_module_program.functions["pkg.driver.fallback"]
        by_raw = {site.raw: site.targets for site in fallback_info.calls}
        # ``step`` is defined by exactly one class -> resolved.
        assert by_raw["mystery.step"] == ("pkg.engine.Engine.step",)
        # ``append`` is an ambient container method -> never resolved.
        assert by_raw["items.append"] == ()

    def test_reverse_edges(self, two_module_program):
        callers = two_module_program.callers()
        names = {caller.qualname for caller, _ in callers["pkg.engine.Engine.step"]}
        assert names == {"pkg.driver.Driver.run", "pkg.driver.fallback"}


# ----------------------------------------------------------------------
# effect inference
# ----------------------------------------------------------------------
def call_node(snippet: str) -> ast.Call:
    node = ast.parse(snippet).body[0].value  # type: ignore[attr-defined]
    assert isinstance(node, ast.Call)
    return node


class TestEffects:
    def test_journal_append_is_journal_and_blocking(self):
        effect = classify_call(call_node("self._journal.append(record)"))
        assert effect & Effect.JOURNAL_APPEND
        assert effect & Effect.BLOCKING_IO

    def test_os_fsync_is_blocking_but_str_replace_is_not(self):
        assert classify_call(call_node("os.fsync(fd)")) & Effect.BLOCKING_IO
        assert classify_call(call_node("name.replace('a', 'b')")) == Effect.NONE

    def test_version_read_and_cache_fill(self):
        assert classify_call(call_node("self.index.version(k)")) & Effect.READS_VERSION
        assert classify_call(call_node("cache.put(tag, 1)")) & Effect.FILLS_CACHE

    def test_array_mutation_requires_an_index_like_root(self):
        assert classify_call(call_node("array.vertices.append(v)")) & Effect.MUTATES_INDEX
        # A local scratch result shares the attribute name but is not
        # live index state.
        assert classify_call(call_node("result.p_numbers.append(v)")) == Effect.NONE

    def test_blocking_propagates_across_modules(self, tmp_path):
        files = {
            "pkg/low.py": "import os\ndef sync(fd):\n    os.fsync(fd)\n",
            "pkg/high.py": (
                "from pkg.low import sync\n"
                "def wrapper(fd):\n"
                "    sync(fd)\n"
            ),
        }
        program = build_program(write_package(tmp_path, files))
        effects = compute_effects(program)
        assert effects.summary_of("pkg.high.wrapper") & Effect.BLOCKING_IO
        assert not effects.summary_of("pkg.low.sync") & Effect.MUTATES_INDEX


# ----------------------------------------------------------------------
# lock contexts
# ----------------------------------------------------------------------
LOCKED_SRC = (
    "import os\n"
    "import threading\n"
    "class RWLock:\n"
    "    def read_locked(self):\n"
    "        return self\n"
    "    def write_locked(self):\n"
    "        return self\n"
    "class Server:\n"
    "    def __init__(self):\n"
    "        self._lock = RWLock()\n"
    "        self._mutex = threading.Lock()\n"
    "    def locked_flush(self, fd):\n"
    "        with self._lock.write_locked():\n"
    "            self._sync(fd)\n"
    "    def reader(self, k):\n"
    "        with self._lock.read_locked():\n"
    "            return self._sync(k)\n"
    "    def exclusive(self, fd):\n"
    "        with self._mutex:\n"
    "            os.fsync(fd)\n"
    "    def deferred(self, fd):\n"
    "        with self._lock.write_locked():\n"
    "            def later():\n"
    "                return os.fsync(fd)\n"
    "        return later\n"
    "    def _sync(self, fd):\n"
    "        return os.fsync(fd)\n"
)


class TestContexts:
    @pytest.fixture()
    def analyzed(self, tmp_path):
        program = build_program(
            write_package(tmp_path, {"pkg/srv.py": LOCKED_SRC})
        )
        return program, compute_contexts(program)

    def _site(self, program, qualname, raw):
        function = program.functions[qualname]
        for site in function.calls:
            if site.raw == raw:
                return site
        raise AssertionError(f"no call {raw!r} in {qualname}")

    def test_lexical_write_scope(self, analyzed):
        program, contexts = analyzed
        site = self._site(program, "pkg.srv.Server.locked_flush", "self._sync")
        assert contexts.at(site.node).locks == frozenset({LOCK_WRITE})

    def test_bare_lock_with_is_exclusive(self, analyzed):
        program, contexts = analyzed
        site = self._site(program, "pkg.srv.Server.exclusive", "os.fsync")
        assert contexts.at(site.node).locks == frozenset({LOCK_EXCLUSIVE})

    def test_nested_def_does_not_inherit_the_scope(self, analyzed):
        program, contexts = analyzed
        site = self._site(program, "pkg.srv.Server.deferred.later", "os.fsync")
        assert contexts.at(site.node).locks == frozenset()

    def test_entry_context_is_the_intersection_over_callers(self, analyzed):
        program, contexts = analyzed
        # _sync is called under write_locked() and under read_locked():
        # the only guarantee on entry is the intersection — nothing.
        assert contexts.entry_locks("pkg.srv.Server._sync") == frozenset()
        # The entry points themselves hold nothing on entry.
        assert contexts.entry_locks("pkg.srv.Server.locked_flush") == frozenset()

    def test_entry_context_propagates_when_all_callers_lock(self, tmp_path):
        source = LOCKED_SRC.replace(
            "    def reader(self, k):\n"
            "        with self._lock.read_locked():\n"
            "            return self._sync(k)\n",
            "",
        )
        program = build_program(write_package(tmp_path, {"pkg/srv.py": source}))
        contexts = compute_contexts(program)
        assert contexts.entry_locks("pkg.srv.Server._sync") == frozenset(
            {LOCK_WRITE}
        )
        assert LOCK_READ not in contexts.entry_locks("pkg.srv.Server._sync")


# ----------------------------------------------------------------------
# report formats
# ----------------------------------------------------------------------
SAMPLE = [
    Violation(path="src/a.py", line=3, col=4, code="KP008", message="m1"),
    Violation(path="src/b.py", line=9, col=0, code="KP012", message="m2"),
]

#: Structural subset of the SARIF 2.1.0 schema: the required properties
#: and types the spec mandates for logs, runs, tools, and results.
SARIF_21_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestReporting:
    def test_sarif_validates_against_the_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        document = sarif_document(SAMPLE)
        jsonschema.validate(document, SARIF_21_SCHEMA)
        assert document["version"] == SARIF_VERSION

    def test_sarif_carries_every_rule_and_result(self):
        document = sarif_document(SAMPLE)
        driver = document["runs"][0]["tool"]["driver"]
        assert [rule["id"] for rule in driver["rules"]] == sorted(RULE_CODES)
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["KP008", "KP012"]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        # SARIF columns are 1-based; the violation's col is 0-based.
        assert region == {"startLine": 3, "startColumn": 5}

    def test_json_envelope(self):
        document = json.loads(render_json(SAMPLE, checked=7))
        assert document["files_checked"] == 7
        assert document["violation_count"] == 2
        assert document["violations"][0]["code"] == "KP008"

    def test_filter_codes_select_then_ignore(self):
        assert [v.code for v in filter_codes(SAMPLE, select=["KP008"])] == ["KP008"]
        assert [v.code for v in filter_codes(SAMPLE, ignore=["kp008"])] == ["KP012"]
        assert filter_codes(SAMPLE, select=["KP008"], ignore=["KP008"]) == []


# ----------------------------------------------------------------------
# driver behaviour
# ----------------------------------------------------------------------
class TestDriver:
    def test_run_walks_the_tree_exactly_once(self, tmp_path, monkeypatch):
        import repro.devtools.lint as lint_module

        (tmp_path / "ok.py").write_text("x = 1\n")
        calls = []
        original = lint_module.iter_python_files

        def counting(paths):
            calls.append(list(paths))
            return original(paths)

        monkeypatch.setattr(lint_module, "iter_python_files", counting)
        assert lint_module.run([str(tmp_path)], out=io.StringIO()) == 0
        assert len(calls) == 1

    def test_run_json_format(self, tmp_path):
        (tmp_path / "dirty.py").write_text("frac = a / degree\n")
        out = io.StringIO()
        assert run([str(tmp_path)], out=out, fmt="json") == 1
        document = json.loads(out.getvalue())
        assert document["violation_count"] == 1
        assert document["violations"][0]["code"] == "KP001"

    def test_run_sarif_format(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        out = io.StringIO()
        assert run([str(tmp_path)], out=out, fmt="sarif") == 0
        document = json.loads(out.getvalue())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"] == []

    def test_run_unknown_format_is_an_error(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert run([str(tmp_path)], out=io.StringIO(), fmt="xml") == 2

    def test_run_select_and_ignore(self, tmp_path):
        (tmp_path / "dirty.py").write_text("frac = pn == a / degree\n")
        out = io.StringIO()
        assert run([str(tmp_path)], out=out, select=["KP002"]) == 1
        assert "KP001" not in out.getvalue()
        assert run([str(tmp_path)], out=io.StringIO(), ignore=["KP001", "KP002"]) == 0

    def test_cli_analysis_and_format_flags(self, tmp_path):
        from repro.cli import main

        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["lint", "--analysis", str(tmp_path)]) == 0
        assert main(["lint", "--format", "json", str(tmp_path)]) == 0
        assert (
            main(["lint", "--select", "KP001", "--ignore", "KP001", str(tmp_path)])
            == 0
        )


# ----------------------------------------------------------------------
# repo-level acceptance gates
# ----------------------------------------------------------------------
def test_repo_analysis_is_clean():
    """The CI regression guard: ``python -m repro lint --analysis src``
    exits 0 — lock/WAL violations fail the build."""
    out = io.StringIO()
    assert run([REPO_SRC], out=out, analysis=True) == 0, out.getvalue()


def test_repo_benchmarks_and_tests_lint_clean():
    out = io.StringIO()
    benchmarks = os.path.join(REPO_ROOT, "benchmarks")
    tests = os.path.join(REPO_ROOT, "tests")
    assert run([benchmarks, tests], out=out) == 0, out.getvalue()


def test_analysis_finds_the_servers_justified_sites():
    """The six durable-write sites in server.py are design decisions,
    suppressed with targeted noqa comments — strip the suppressions and
    the analyzer must still see them (the rule has not gone blind)."""
    server_path = os.path.join(REPO_SRC, "repro", "service", "server.py")
    files = [
        os.path.join(dirpath, filename)
        for dirpath, _, filenames in os.walk(REPO_SRC)
        for filename in filenames
        if filename.endswith(".py")
    ]
    from repro.devtools.analysis import analyze_program, build_program

    program = build_program(files)
    found = [
        v
        for v in analyze_program(program)
        if v.code == "KP012" and v.path == server_path
    ]
    assert len(found) == 6
