"""Unit tests for the fraction/threshold numerics."""

from fractions import Fraction

import pytest

from repro.errors import ParameterError
from repro.core.pvalue import as_fraction, check_p, fraction_threshold, fraction_value


class TestCheckP:
    def test_accepts_bounds(self):
        assert check_p(0.0) == 0.0
        assert check_p(1.0) == 1.0
        assert check_p(0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.0001, 2.0])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ParameterError):
            check_p(bad)


class TestFractionValue:
    def test_simple(self):
        assert fraction_value(1, 2) == 0.5
        assert fraction_value(0, 7) == 0.0

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ParameterError):
            fraction_value(1, 0)


class TestFractionThreshold:
    def test_defining_property_on_grid(self):
        # smallest a with float(a/deg) >= p, for every exact grid p
        for deg in range(1, 60):
            for a in range(0, deg + 1):
                p = a / deg  # noqa: KP001 reference fraction oracle
                t = fraction_threshold(p, deg)
                assert t / deg >= p  # noqa: KP001 reference fraction oracle
                assert t == 0 or (t - 1) / deg < p  # noqa: KP001 reference fraction oracle

    def test_defining_property_on_random_p(self):
        import random

        rng = random.Random(11)
        for _ in range(3000):
            deg = rng.randint(1, 400)
            p = rng.random()
            t = fraction_threshold(p, deg)
            assert 0 <= t <= deg + 1
            assert t > deg or t / deg >= p  # noqa: KP001 reference fraction oracle
            assert t == 0 or (t - 1) / deg < p  # noqa: KP001 reference fraction oracle

    def test_boundaries(self):
        assert fraction_threshold(0.0, 10) == 0
        assert fraction_threshold(1.0, 10) == 10
        assert fraction_threshold(0.5, 0) == 0

    def test_classic_float_traps(self):
        # 0.1 * 10, 0.7 * 10 etc. must not off-by-one
        assert fraction_threshold(0.1, 10) == 1
        assert fraction_threshold(0.7, 10) == 7
        assert fraction_threshold(0.3, 3) == 1
        assert fraction_threshold(2 / 3, 3) == 2

    def test_negative_degree_rejected(self):
        with pytest.raises(ParameterError):
            fraction_threshold(0.5, -1)

    def test_invalid_p_rejected(self):
        with pytest.raises(ParameterError):
            fraction_threshold(1.5, 10)


class TestAsFraction:
    def test_recovers_exact_rationals(self):
        for den in range(1, 200):
            for num in (0, 1, den // 2, den - 1, den):
                stored = num / den
                assert as_fraction(stored, den) == Fraction(num, den)

    def test_requires_positive_denominator(self):
        with pytest.raises(ParameterError):
            as_fraction(0.5, 0)
