"""Tests for the order-based core maintainer and the k-order invariant."""

import random

import pytest

from repro.errors import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm
from repro.kcore.decomposition import core_decomposition
from repro.kcore.maintenance import CoreMaintainer
from repro.kcore.order_maintenance import OrderBasedCoreMaintainer, is_valid_k_order


def assert_exact(maintainer: OrderBasedCoreMaintainer) -> None:
    fresh = core_decomposition(maintainer.graph).core_numbers
    assert maintainer.core_numbers() == fresh
    assert is_valid_k_order(maintainer.graph, maintainer.k_order(), fresh)


class TestKOrderValidity:
    def test_fresh_decomposition_order_is_valid(self):
        g = erdos_renyi_gnm(25, 70, seed=1)
        cd = core_decomposition(g)
        assert is_valid_k_order(g, cd.peel_order, cd.core_numbers)

    def test_rejects_wrong_vertex_multiset(self, triangle):
        cd = core_decomposition(triangle)
        assert not is_valid_k_order(triangle, [0, 1], cd.core_numbers)
        assert not is_valid_k_order(triangle, [0, 1, 1], cd.core_numbers)

    def test_rejects_decreasing_core_numbers(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])  # cn: 2,2,2,1
        cd = core_decomposition(g)
        bad_order = [0, 1, 2, 3]  # vertex 3 (cn=1) after the triangle
        assert not is_valid_k_order(g, bad_order, cd.core_numbers)

    def test_rejects_overloaded_prefix_vertex(self):
        # the pendant vertex (cn=1) placed after the K4 violates the
        # non-decreasing-core-number condition; the fresh peel order passes
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)])
        cd = core_decomposition(g)
        assert is_valid_k_order(g, list(cd.peel_order), cd.core_numbers)
        assert not is_valid_k_order(g, [0, 1, 2, 3, 4], cd.core_numbers)


class TestSingleUpdates:
    def test_promotion(self):
        g = Graph([(0, 1), (1, 2)])
        m = OrderBasedCoreMaintainer(g)
        promoted = m.insert_edge(0, 2)
        assert promoted == {0, 1, 2}
        assert_exact(m)

    def test_no_change_insertion_keeps_order_valid(self, two_triangles_bridge):
        m = OrderBasedCoreMaintainer(two_triangles_bridge.copy())
        m.insert_edge(0, 4)  # cross edge between the triangles, no cn change
        assert_exact(m)

    def test_demotion(self, triangle):
        m = OrderBasedCoreMaintainer(triangle.copy())
        demoted = m.delete_edge(0, 1)
        assert demoted == {0, 1, 2}
        assert_exact(m)

    def test_new_vertices(self):
        m = OrderBasedCoreMaintainer(Graph())
        m.insert_edge("a", "b")
        assert m.core_number("a") == 1
        assert_exact(m)

    def test_vertex_dynamics(self, triangle):
        m = OrderBasedCoreMaintainer(triangle.copy())
        m.insert_vertex(9, neighbors=[0, 1, 2])
        assert m.core_number(9) == 3
        assert_exact(m)
        m.delete_vertex(9)
        assert not m.graph.has_vertex(9)
        assert_exact(m)

    def test_error_paths(self, triangle):
        m = OrderBasedCoreMaintainer(triangle.copy())
        with pytest.raises(EdgeExistsError):
            m.insert_edge(0, 1)
        with pytest.raises(SelfLoopError):
            m.insert_edge(1, 1)
        with pytest.raises(EdgeNotFoundError):
            m.delete_edge(0, 9)

    def test_degeneracy_property(self, triangle):
        m = OrderBasedCoreMaintainer(triangle.copy())
        assert m.degeneracy == 2


class TestRandomizedStreams:
    @pytest.mark.parametrize("seed", range(8))
    def test_exactness_and_order_invariant(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 20)
        m_edges = rng.randint(n, min(55, n * (n - 1) // 2))
        g = erdos_renyi_gnm(n, m_edges, seed=seed)
        m = OrderBasedCoreMaintainer(g.copy())
        edges = list(g.edges())
        for _ in range(40):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                m.delete_edge(u, v)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or m.graph.has_edge(u, v):
                    continue
                m.insert_edge(u, v)
                edges.append((u, v))
            assert_exact(m)

    def test_agrees_with_traversal_maintainer(self):
        g = barabasi_albert(30, 3, seed=9)
        order_based = OrderBasedCoreMaintainer(g.copy())
        traversal = CoreMaintainer(g.copy())
        rng = random.Random(9)
        edges = list(g.edges())
        for _ in range(30):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                a = order_based.delete_edge(u, v)
                b = traversal.delete_edge(u, v)
            else:
                u, v = rng.randrange(30), rng.randrange(30)
                if u == v or order_based.graph.has_edge(u, v):
                    continue
                a = order_based.insert_edge(u, v)
                b = traversal.insert_edge(u, v)
                edges.append((u, v))
            assert a == b  # identical changed sets
            assert order_based.core_numbers() == traversal.core_numbers()


class TestIndexBackend:
    def test_kp_index_maintainer_with_order_backend(self):
        from repro.core import KPIndex, KPIndexMaintainer

        g = erdos_renyi_gnm(14, 36, seed=11)
        m = KPIndexMaintainer(g.copy(), strict=True, core_backend="order")
        rng = random.Random(11)
        edges = list(g.edges())
        for _ in range(20):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                m.delete_edge(u, v)
            else:
                u, v = rng.randrange(14), rng.randrange(14)
                if u == v or m.graph.has_edge(u, v):
                    continue
                m.insert_edge(u, v)
                edges.append((u, v))
            assert m.index.semantically_equal(KPIndex.build(m.graph))

    def test_unknown_backend_rejected(self, triangle):
        from repro.errors import ParameterError
        from repro.core import KPIndexMaintainer

        with pytest.raises(ParameterError):
            KPIndexMaintainer(triangle.copy(), core_backend="quantum")


class TestLargeLabelRegression:
    def test_walk_trigger_with_uninterned_labels(self):
        """Regression: the forward walk must recognize its trigger vertex
        by value, not identity (CPython interns only small ints)."""
        base = 10_000  # far above the small-int cache
        # K4 on big labels plus a level-2 vertex wired to three of them
        g = Graph(
            [
                (base + 0, base + 1), (base + 0, base + 2), (base + 0, base + 3),
                (base + 1, base + 2), (base + 1, base + 3), (base + 2, base + 3),
                (base + 9, base + 0), (base + 9, base + 1),
            ]
        )
        m = OrderBasedCoreMaintainer(g)
        assert m.core_number(base + 9) == 2
        promoted = m.insert_edge(int(f"{base + 9}"), base + 2)
        assert promoted == {base + 9}
        assert_exact(m)

    def test_long_stream_on_large_labels(self):
        g = erdos_renyi_gnm(40, 140, seed=21)
        relabeled = Graph(((u + 5000, v + 5000) for u, v in g.edges()))
        m = OrderBasedCoreMaintainer(relabeled.copy())
        t = CoreMaintainer(relabeled.copy())
        rng = random.Random(21)
        edges = list(relabeled.edges())
        for _ in range(60):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                assert m.delete_edge(u, v) == t.delete_edge(u, v)
            else:
                u = rng.randrange(5000, 5040)
                v = rng.randrange(5000, 5040)
                if u == v or m.graph.has_edge(u, v):
                    continue
                assert m.insert_edge(u, v) == t.insert_edge(u, v)
                edges.append((u, v))
        assert_exact(m)
