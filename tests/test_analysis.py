"""Tests for the effectiveness analyses (Figs. 6-10 logic)."""

import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm, planted_partition
from repro.analysis.casestudy import case_study, departure_cascade
from repro.analysis.comparison import compare_cores, comparison_table
from repro.analysis.engagement import (
    engagement_by_core_number,
    engagement_by_kp_stratum,
    engagement_by_onion_layer,
    stratum_spread,
)
from repro.core.decomposition import kp_core_decomposition
from repro.core.kpcore import kp_core_vertices
from repro.kcore.compute import k_core_vertices


class TestComparison:
    def test_compare_cores_counts(self, cascade_graph):
        c = compare_cores(cascade_graph, 2, 2 / 3, name="cascade")
        assert c.kcore_vertices == 3  # the triangle {3, 5, 6}
        assert c.kpcore_vertices == 3
        assert c.size_ratio == pytest.approx(1.0)
        trimming = compare_cores(cascade_graph, 2, 0.7)
        assert trimming.kpcore_vertices == 0

    def test_empty_kp_core_ratio_is_inf(self, cascade_graph):
        c = compare_cores(cascade_graph, 2, 0.9)
        assert c.kpcore_vertices == 0
        assert c.size_ratio == float("inf")

    def test_kp_core_never_less_clustered_on_community_graph(self):
        g = planted_partition(3, 12, 0.8, 0.03, seed=1)
        c = compare_cores(g, 3, 0.6)
        assert c.kpcore_clustering >= c.kcore_clustering - 1e-9

    def test_comparison_table_names(self):
        graphs = {
            "a": erdos_renyi_gnm(15, 40, seed=1),
            "b": erdos_renyi_gnm(15, 40, seed=2),
        }
        rows = comparison_table(graphs, 2, 0.5)
        assert [c.name for c in rows] == ["a", "b"]


class TestEngagement:
    @pytest.fixture
    def labelled(self):
        g = planted_partition(2, 10, 0.8, 0.05, seed=2)
        decomposition = kp_core_decomposition(g)
        activity = {v: 10 * decomposition.core_numbers[v] + 1 for v in g.vertices()}
        return g, decomposition, activity

    def test_core_number_series(self, labelled):
        g, decomposition, activity = labelled
        points = engagement_by_core_number(g, activity, decomposition)
        xs = [p.x for p in points]
        assert xs == sorted(xs)
        assert sum(p.count for p in points) == g.num_vertices
        # averages recover the planted monotone signal
        averages = [p.average for p in points]
        assert averages == sorted(averages)

    def test_kp_stratum_series_positions(self, labelled):
        g, decomposition, activity = labelled
        points = engagement_by_kp_stratum(g, activity, decomposition)
        assert sum(p.count for p in points) == sum(
            1 for v in g.vertices() if decomposition.core_numbers[v] >= 1
        )
        for point in points:
            # x = k + pn - 0.5 with pn in (0, 1]
            assert point.x > 0.5

    def test_onion_series(self, labelled):
        g, _, activity = labelled
        points = engagement_by_onion_layer(g, activity)
        assert sum(p.count for p in points) == g.num_vertices

    def test_stratum_spread(self):
        from repro.analysis.engagement import EngagementPoint

        points = [
            EngagementPoint(1.0, 10.0, 5),
            EngagementPoint(2.0, 40.0, 5),
        ]
        assert stratum_spread(points) == pytest.approx(4.0)
        assert stratum_spread([]) == 0.0


def gateway_graph() -> Graph:
    """K4 {a,b,c,d} plus a gateway ``e`` with three inside and three
    outside neighbours — the Fig. 9 situation where the minimum-fraction
    member leaves and is trimmed from the (k,p)-core."""
    g = Graph()
    clique = ["a", "b", "c", "d"]
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            g.add_edge(u, v)
    for w in ("a", "b", "c"):
        g.add_edge("e", w)
    for i in range(3):
        g.add_edge("e", f"out{i}")
    return g


class TestCaseStudy:
    def test_report_structure(self, cascade_graph):
        report = case_study(cascade_graph, 2, 2 / 3)
        assert report.members == {3, 5, 6}
        assert report.kp_members == {3, 5, 6}
        assert report.min_fraction_vertex == 3
        assert "component of 3" in report.summary()

    def test_gateway_is_trimmed(self):
        g = gateway_graph()
        report = case_study(g, 3, 0.6)
        assert report.members == {"a", "b", "c", "d", "e"}
        assert report.kp_members == {"a", "b", "c", "d"}
        assert report.trimmed == {"e"}
        assert report.min_fraction_vertex == "e"
        assert report.fractions["e"] == pytest.approx(0.5)

    def test_cascade_mechanics(self, cascade_graph):
        # removing vertex 3 from the triangle collapses 5 and 6 too
        steps = departure_cascade(
            cascade_graph, [3, 5, 6], leaver=3, k=2, p=0.5
        )
        assert {s.vertex for s in steps} == {3, 5, 6}
        assert steps[0].vertex == 3

    def test_cascade_requires_member_leaver(self, cascade_graph):
        with pytest.raises(ParameterError):
            departure_cascade(cascade_graph, [3, 5, 6], leaver=99, k=2, p=0.5)

    def test_empty_k_core_raises(self, triangle):
        with pytest.raises(ParameterError):
            case_study(triangle, 5, 0.5)

    def test_component_rank_out_of_range(self, triangle):
        with pytest.raises(ParameterError):
            case_study(triangle, 2, 0.5, component_rank=3)

    def test_fractions_match_definition(self, cascade_graph):
        report = case_study(cascade_graph, 2, 0.5)
        core = k_core_vertices(cascade_graph, 2)
        for v, frac in report.fractions.items():
            inside = sum(
                1 for w in cascade_graph.neighbors(v) if w in report.members
            )
            assert frac == pytest.approx(inside / cascade_graph.degree(v))  # noqa: KP001,KP002 exact-double fraction oracle
        assert report.members <= core

    def test_kp_members_consistent_with_direct(self):
        g = planted_partition(2, 12, 0.7, 0.05, seed=3)
        report = case_study(g, 3, 0.5)
        direct = kp_core_vertices(g, 3, 0.5)
        assert report.kp_members == direct & report.members
