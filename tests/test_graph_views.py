"""Unit tests for vertex/edge sampling (Figs. 14/16 substrate)."""

import pytest

from repro.errors import ParameterError
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.views import sample_edges, sample_ratios, sample_vertices


@pytest.fixture
def base():
    return erdos_renyi_gnm(100, 400, seed=3)


class TestVertexSampling:
    def test_full_ratio_returns_copy(self, base):
        sampled = sample_vertices(base, 1.0)
        assert sampled == base
        sampled.add_edge(998, 999)
        assert not base.has_vertex(998)

    def test_ratio_controls_vertex_count(self, base):
        sampled = sample_vertices(base, 0.4, seed=1)
        assert sampled.num_vertices == 40

    def test_result_is_induced(self, base):
        sampled = sample_vertices(base, 0.5, seed=2)
        kept = set(sampled.vertices())
        for u, v in sampled.edges():
            assert base.has_edge(u, v)
        # every base edge between kept vertices must be present
        for u, v in base.edges():
            if u in kept and v in kept:
                assert sampled.has_edge(u, v)

    def test_deterministic_per_seed(self, base):
        a = sample_vertices(base, 0.3, seed=7)
        b = sample_vertices(base, 0.3, seed=7)
        c = sample_vertices(base, 0.3, seed=8)
        assert a == b
        assert a != c

    def test_invalid_ratio_raises(self, base):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ParameterError):
                sample_vertices(base, bad)


class TestEdgeSampling:
    def test_ratio_controls_edge_count(self, base):
        sampled = sample_edges(base, 0.25, seed=4)
        assert sampled.num_edges == 100

    def test_sampled_edges_exist_in_base(self, base):
        sampled = sample_edges(base, 0.5, seed=5)
        for u, v in sampled.edges():
            assert base.has_edge(u, v)

    def test_isolated_vertices_dropped(self, base):
        sampled = sample_edges(base, 0.1, seed=6)
        assert all(sampled.degree(v) > 0 for v in sampled.vertices())

    def test_invalid_ratio_raises(self, base):
        with pytest.raises(ParameterError):
            sample_edges(base, 0.0)


def test_paper_sampling_grid():
    assert tuple(sample_ratios) == (0.2, 0.4, 0.6, 0.8, 1.0)
