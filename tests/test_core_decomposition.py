"""Unit tests for Algorithm 2 (kpCoreDecom) and p-numbers."""

import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi_gnm
from repro.core.decomposition import kp_core_decomposition, p_numbers_fixed_k
from repro.core.kpcore import kp_core_vertices
from repro.core.naive import naive_p_numbers_fixed_k
from repro.kcore.decomposition import core_decomposition


class TestKnownGraphs:
    def test_k1_p_numbers_are_one(self, figure1_like_graph):
        # For k = 1 every non-isolated vertex keeps all its neighbours in
        # the 1-core, so the (1,p)-core equals it for every p (Example 3).
        pn = p_numbers_fixed_k(figure1_like_graph, 1)
        assert set(pn.values()) == {1.0}
        assert set(pn) == set(figure1_like_graph.vertices())

    def test_cycle_k2(self):
        pn = p_numbers_fixed_k(cycle_graph(8), 2)
        assert set(pn.values()) == {1.0}

    def test_complete_graph(self):
        g = complete_graph(5)
        for k in range(1, 5):
            pn = p_numbers_fixed_k(g, k)
            assert set(pn.values()) == {1.0}

    def test_cascade_graph_inherited_levels(self, cascade_graph):
        # vertices 5 and 6 inherit 3's fraction 2/3 as their p-number,
        # even though 2/3 is not a multiple of 1/deg for them
        pn = p_numbers_fixed_k(cascade_graph, 2)
        assert pn[3] == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle
        assert pn[5] == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle
        assert pn[6] == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle

    def test_k_beyond_degeneracy_is_empty(self, triangle):
        assert p_numbers_fixed_k(triangle, 5) == {}  # noqa: KP002 exact-double oracle

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            p_numbers_fixed_k(triangle, 0)


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed, random_graph_factory):
        g = random_graph_factory(seed, n_range=(5, 14))
        d = core_decomposition(g).degeneracy
        for k in range(1, d + 1):
            assert p_numbers_fixed_k(g, k) == naive_p_numbers_fixed_k(g, k)  # noqa: KP002 exact-double oracle


class TestFullDecomposition:
    def test_covers_every_k(self):
        g = erdos_renyi_gnm(25, 80, seed=2)
        decomposition = kp_core_decomposition(g)
        assert set(decomposition.arrays) == set(
            range(1, decomposition.degeneracy + 1)
        )
        for k, fixed in decomposition.arrays.items():
            assert fixed.k == k
            assert len(fixed.order) == len(fixed.p_numbers)

    def test_array_membership_is_the_k_core(self):
        g = erdos_renyi_gnm(25, 80, seed=3)
        decomposition = kp_core_decomposition(g)
        cd = core_decomposition(g)
        for k, fixed in decomposition.arrays.items():
            assert set(fixed.order) == cd.k_core_vertices(k)

    def test_p_numbers_non_decreasing_along_order(self):
        g = erdos_renyi_gnm(25, 80, seed=4)
        decomposition = kp_core_decomposition(g)
        for fixed in decomposition.arrays.values():
            pns = list(fixed.p_numbers)
            assert pns == sorted(pns)

    def test_p_number_defines_membership(self):
        # v in (k,p)-core  <=>  pn(v,k) >= p, for p at every distinct level
        g = erdos_renyi_gnm(18, 50, seed=5)
        decomposition = kp_core_decomposition(g)
        for k, fixed in decomposition.arrays.items():
            pn = fixed.pn_map()
            for level in sorted(set(fixed.p_numbers)):
                expected = {v for v, value in pn.items() if value >= level}
                assert kp_core_vertices(g, k, level) == expected

    def test_p_number_accessor(self, triangle):
        decomposition = kp_core_decomposition(triangle)
        assert decomposition.p_number(0, 2) == 1.0  # noqa: KP002 exact-double oracle
        with pytest.raises(KeyError):
            decomposition.p_number(0, 5)
        with pytest.raises(KeyError):
            decomposition.p_number(99, 1)

    def test_core_numbers_exposed(self, triangle_with_tail):
        decomposition = kp_core_decomposition(triangle_with_tail)
        assert decomposition.core_numbers[3] == 1
        assert decomposition.core_numbers[0] == 2

    def test_empty_graph(self):
        decomposition = kp_core_decomposition(Graph())
        assert decomposition.degeneracy == 0
        assert decomposition.arrays == {}
