"""Executable-documentation tests.

The README quickstart and the docstring examples are promises to users;
these tests execute them so they cannot silently rot.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro
import repro.graph.adjacency
import repro.kcore.maintenance
import repro.bench.timing

README = Path(__file__).resolve().parent.parent / "README.md"


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.graph.adjacency,
        repro.kcore.maintenance,
        repro.bench.timing,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples actually exist


def readme_code_blocks() -> list[str]:
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(readme_code_blocks()) >= 1


def test_readme_quickstart_block_runs():
    block = readme_code_blocks()[0]
    namespace: dict = {}
    exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    # the block builds a maintainer and queries it; spot-check the claims
    # stated in the inline comments
    assert sorted(namespace["kp_core_vertices"](namespace["g"], k=2, p=2 / 3))
    index = namespace["index"]
    assert sorted(index.query(k=2, p=2 / 3)) == [0, 1, 2]
    assert index.p_number(0, k=2) == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle
    maintainer = namespace["maintainer"]
    assert sorted(maintainer.query(k=2, p=1.0)) == [0, 1, 2]
