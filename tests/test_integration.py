"""End-to-end integration tests across the whole pipeline.

These exercise the flows a downstream user would run: load a dataset,
decompose it, build the index, query it, mutate the graph through the
maintainer, and read the analyses — asserting cross-module agreement at
every step.
"""

import random

import pytest

from repro import (
    Graph,
    KPIndex,
    KPIndexMaintainer,
    core_decomposition,
    kp_core_vertices,
    read_edge_list,
    write_edge_list,
)
from repro.analysis.comparison import compare_cores
from repro.core.maintenance import MaintenanceMode
from repro.datasets import load, simulate_checkins
from repro.datasets.dblp import generate_corpus


class TestDatasetPipeline:
    def test_brightkite_full_pipeline(self):
        g = load("brightkite")
        cd = core_decomposition(g)
        index = KPIndex.build(g)
        index.validate()
        assert index.degeneracy == cd.degeneracy
        # index answers agree with direct computation on a parameter grid
        for k in (2, 5, 10):
            for p in (0.3, 0.6, 0.9):
                assert set(index.query(k, p)) == kp_core_vertices(g, k, p)

    def test_comparison_consistent_with_index(self):
        g = load("youtube")
        index = KPIndex.build(g)
        c = compare_cores(g, 10, 0.6)
        assert c.kpcore_vertices == len(index.query(10, 0.6))

    def test_checkin_analysis_runs_on_fresh_decomposition(self):
        g = load("brightkite")
        counts = simulate_checkins(g)
        assert len(counts) == g.num_vertices


class TestDynamicPipeline:
    def test_maintained_index_serves_queries_through_updates(self):
        g = load("brightkite").copy()
        maintainer = KPIndexMaintainer(g, mode=MaintenanceMode.RANGE)
        rng = random.Random(99)
        edges = rng.sample(list(maintainer.graph.edges()), 15)
        for u, v in edges:
            maintainer.delete_edge(u, v)
        for u, v in edges:
            maintainer.insert_edge(u, v)
        fresh = KPIndex.build(maintainer.graph)
        assert maintainer.index.semantically_equal(fresh)
        for k in (2, 5, 10):
            assert set(maintainer.query(k, 0.6)) == kp_core_vertices(
                maintainer.graph, k, 0.6
            )

    def test_growing_graph_from_scratch(self):
        maintainer = KPIndexMaintainer(Graph(), strict=True)
        rng = random.Random(5)
        for _ in range(60):
            u, v = rng.randrange(12), rng.randrange(12)
            if u == v or maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
        assert maintainer.index.semantically_equal(
            KPIndex.build(maintainer.graph)
        )

    def test_shrinking_graph_to_empty(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        maintainer = KPIndexMaintainer(g, strict=True)
        for u, v in list(g.edges()):
            maintainer.delete_edge(u, v)
        assert maintainer.index.query(1, 0.0) == []
        assert maintainer.index.degeneracy == 0


class TestPersistenceRoundTrips:
    def test_edge_list_then_index_round_trip(self, tmp_path):
        g = load("facebook")
        path = tmp_path / "facebook.txt"
        write_edge_list(g, path)
        again = read_edge_list(path, int_vertices=False)
        # labels come back as strings; sizes and index structure agree
        assert again.num_vertices == g.num_vertices
        assert again.num_edges == g.num_edges
        a = KPIndex.build(g).space_stats()
        b = KPIndex.build(again).space_stats()
        assert a == b

    def test_index_serialization_survives_queries(self, tmp_path):
        import json

        g = load("brightkite")
        index = KPIndex.build(g)
        payload = json.dumps(index.to_dict())
        restored = KPIndex.from_dict(json.loads(payload))
        for k in (2, 5, 10):
            assert restored.query(k, 0.6) == index.query(k, 0.6)


class TestDblpPipeline:
    def test_corpus_to_case_study(self):
        from repro.analysis.casestudy import case_study

        corpus = generate_corpus(
            num_authors=300, num_papers=900, num_fields=6, seed=3,
            num_labs=2, lab_size=14, papers_per_lab=4,
        )
        g = corpus.graph(1)
        cd = core_decomposition(g)
        k = min(5, cd.degeneracy)
        if k >= 1:
            report = case_study(g, k, 0.4)
            assert report.members
            assert report.cascade
