"""Unit tests for graph metrics, cross-checked against networkx."""

import math

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi_gnm, star_graph
from repro.graph.metrics import (
    average_degree,
    connected_triplet_count,
    degree_histogram,
    density,
    gini_coefficient,
    global_clustering_coefficient,
    max_degree,
    summarize,
    triangle_count,
)


def to_nx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestBasicStats:
    def test_density_known_values(self):
        assert density(complete_graph(5)) == 1.0
        assert density(cycle_graph(4)) == pytest.approx(4 / 6)
        assert density(Graph()) == 0.0
        single = Graph()
        single.add_vertex(0)
        assert density(single) == 0.0

    def test_average_and_max_degree(self):
        g = star_graph(4)
        assert average_degree(g) == pytest.approx(8 / 5)
        assert max_degree(g) == 4
        assert average_degree(Graph()) == 0.0
        assert max_degree(Graph()) == 0

    def test_degree_histogram(self):
        g = star_graph(3)
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_summarize_row(self, triangle):
        row = summarize(triangle).as_row("tri")
        assert row == ("tri", 3, 3, 2.0, 2)


class TestTriangles:
    def test_complete_graph_triangles(self):
        assert triangle_count(complete_graph(5)) == 10  # C(5,3)

    def test_triangle_free(self):
        assert triangle_count(cycle_graph(5)) == 0
        assert triangle_count(star_graph(6)) == 0

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(6):
            g = erdos_renyi_gnm(30, 90, seed=seed)
            expected = sum(nx.triangles(to_nx(g)).values()) // 3
            assert triangle_count(g) == expected

    def test_triplets(self):
        assert connected_triplet_count(star_graph(4)) == 6  # C(4,2)
        assert connected_triplet_count(complete_graph(4)) == 12


class TestClustering:
    def test_complete_graph_is_one(self):
        assert global_clustering_coefficient(complete_graph(6)) == 1.0

    def test_triangle_free_is_zero(self):
        assert global_clustering_coefficient(cycle_graph(6)) == 0.0

    def test_no_triplets_is_zero(self):
        assert global_clustering_coefficient(Graph([(0, 1)])) == 0.0

    def test_matches_networkx_transitivity(self):
        for seed in range(6):
            g = erdos_renyi_gnm(25, 70, seed=100 + seed)
            assert global_clustering_coefficient(g) == pytest.approx(
                nx.transitivity(to_nx(g))
            )


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0.0] * 9 + [100.0]) == pytest.approx(0.9)

    def test_empty_is_nan(self):
        assert math.isnan(gini_coefficient([]))

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0
