"""Differential soak and unit tests for batched maintenance.

The contract under test: for every engine, every maintenance mode, and
every grouping of a valid update stream into batches,
:meth:`KPIndexMaintainer.apply_batch` leaves the index semantically equal
to (a) applying the same stream edge-by-edge and (b) a from-scratch
rebuild — while re-peeling each affected ``A_k`` at most once per batch
and bumping its version exactly once.  Batches of one must be
*behaviourally identical* to the single-edge path, version bumps
included, and insert+delete cancellations must leave the index
byte-identical (no spurious bumps, no ghost vertices).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    ParameterError,
    SelfLoopError,
)
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm
from repro.core.index import KPIndex
from repro.core.maintenance import (
    KPIndexMaintainer,
    MaintenanceMode,
    coalesce_updates,
)

ALL_ENGINES = ("heap", "bucket", "flat", "flat-numpy")
BATCH_SIZES = (1, 2, 16)


@pytest.fixture(params=[MaintenanceMode.RANGE, MaintenanceMode.FULL_K])
def mode(request):
    return request.param


def _index_bytes(index: KPIndex) -> dict[int, tuple]:
    return {
        k: (tuple(a.vertices), tuple(a.p_numbers))
        for k, a in index.arrays().items()
    }


def _random_stream(seed: int, n: int, steps: int, graph: Graph) -> list:
    """A valid mixed stream against ``graph``'s state (simulated)."""
    rng = random.Random(seed)
    present = {frozenset(e) for e in graph.edges()}
    ops = []
    for _ in range(steps):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = frozenset((u, v))
        if key in present:
            ops.append(("delete", u, v))
            present.discard(key)
        else:
            ops.append(("insert", u, v))
            present.add(key)
    return ops


def _apply_batched(maintainer, ops, size, **kwargs):
    for i in range(0, len(ops), size):
        maintainer.apply_batch(ops[i : i + size], **kwargs)


class TestDifferentialSoak:
    """Batched vs sequential vs from-scratch, across every engine."""

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_engines_and_batch_sizes_agree(self, engine, size, mode):
        g = erdos_renyi_gnm(16, 40, seed=11)
        ops = _random_stream(11, 16, 40, g)
        batched = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        sequential = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        _apply_batched(batched, ops, size, engine=engine)
        for op, u, v in ops:
            if op == "insert":
                sequential.insert_edge(u, v)
            else:
                sequential.delete_edge(u, v)
        assert batched.index.semantically_equal(sequential.index)
        fresh = KPIndex.build(batched.graph)
        assert batched.index.semantically_equal(fresh)

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_soak(self, seed, mode):
        rng = random.Random(seed)
        n = rng.randint(6, 18)
        m = rng.randint(n, min(48, n * (n - 1) // 2))
        g = erdos_renyi_gnm(n, m, seed=seed)
        ops = _random_stream(seed, n, 50, g)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        size = rng.choice(BATCH_SIZES)
        _apply_batched(maintainer, ops, size)
        assert maintainer.index.semantically_equal(
            KPIndex.build(maintainer.graph)
        )

    def test_workers_parity(self, mode):
        g = erdos_renyi_gnm(18, 50, seed=13)
        ops = _random_stream(13, 18, 40, g)
        serial = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        parallel = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        _apply_batched(serial, ops, 16, workers=1)
        _apply_batched(parallel, ops, 16, workers=2)
        assert serial.index.semantically_equal(parallel.index)
        assert _index_bytes(serial.index) == _index_bytes(parallel.index)

    @given(st.integers(0, 10_000), st.sampled_from(BATCH_SIZES))
    @settings(max_examples=30, deadline=None)
    def test_property_batched_equals_sequential(self, seed, size):
        g = erdos_renyi_gnm(10, 20, seed=seed % 97)
        ops = _random_stream(seed, 10, 30, g)
        batched = KPIndexMaintainer(g.copy(), strict=True)
        sequential = KPIndexMaintainer(g.copy(), strict=True)
        _apply_batched(batched, ops, size)
        for op, u, v in ops:
            if op == "insert":
                sequential.insert_edge(u, v)
            else:
                sequential.delete_edge(u, v)
        assert batched.index.semantically_equal(sequential.index)


class TestSingletonParity:
    """A batch of one must be the single-edge path, bumps included."""

    def test_batch_of_one_matches_single_edge_exactly(self, mode):
        g = erdos_renyi_gnm(14, 36, seed=21)
        ops = _random_stream(21, 14, 30, g)
        batched = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        single = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        for op, u, v in ops:
            batched.apply_batch([(op, u, v)])
            if op == "insert":
                single.insert_edge(u, v)
            else:
                single.delete_edge(u, v)
            # identical content AND identical version counters: the
            # delegation must not invent or lose a single bump.
            assert _index_bytes(batched.index) == _index_bytes(single.index)
            assert batched.index.versions() == single.index.versions()

    def test_singleton_counts_as_insert_or_delete(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        maintainer = KPIndexMaintainer(g, strict=True)
        report = maintainer.apply_batch([("insert", 0, 3)])
        assert report.applied == 1
        assert maintainer.stats.insertions == 1
        report = maintainer.apply_batch([("delete", 0, 3)])
        assert report.applied == 1
        assert maintainer.stats.deletions == 1
        assert maintainer.stats.batches == 2


class TestCancellation:
    """Insert+delete pairs inside one batch must annihilate completely."""

    def test_cancelling_pair_is_byte_identical(self, mode):
        g = erdos_renyi_gnm(12, 30, seed=5)
        u, v = next(
            (a, b)
            for a in range(12)
            for b in range(a + 1, 12)
            if not g.has_edge(a, b)
        )
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        before_bytes = _index_bytes(maintainer.index)
        before_versions = maintainer.index.versions()
        report = maintainer.apply_batch([("insert", u, v), ("delete", u, v)])
        assert report.applied == 0
        assert report.cancelled_pairs == 1
        assert _index_bytes(maintainer.index) == before_bytes
        assert maintainer.index.versions() == before_versions

    def test_cancelled_insert_never_creates_vertices(self, mode):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        maintainer.apply_batch([("insert", 98, 99), ("delete", 98, 99)])
        assert not maintainer.graph.has_vertex(98)
        assert not maintainer.graph.has_vertex(99)

    def test_delete_then_reinsert_cancels_on_a1_path(self, mode):
        # The A_1 bookkeeping must also see the *net* batch: deleting a
        # pendant edge and re-inserting it in one batch is a no-op.
        g = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        before_bytes = _index_bytes(maintainer.index)
        before_versions = maintainer.index.versions()
        report = maintainer.apply_batch(
            [("delete", 0, 3), ("insert", 0, 3)]
        )
        assert report.applied == 0
        assert _index_bytes(maintainer.index) == before_bytes
        assert maintainer.index.versions() == before_versions

    def test_mixed_batch_with_cancellations(self, mode):
        g = erdos_renyi_gnm(12, 28, seed=9)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        edge = next(iter(g.edges()))
        a, b = next(
            (x, y)
            for x in range(12)
            for y in range(x + 1, 12)
            if not g.has_edge(x, y)
        )
        ops = [
            ("insert", a, b),
            ("delete", edge[0], edge[1]),
            ("insert", edge[0], edge[1]),
        ]
        report = maintainer.apply_batch(ops)
        assert report.cancelled_pairs == 1
        assert report.applied == 1
        assert maintainer.index.semantically_equal(
            KPIndex.build(maintainer.graph)
        )


class TestCoalesce:
    def test_cancellation_and_order(self, triangle):
        ops, cancelled = coalesce_updates(
            triangle,
            [("insert", 0, 3), ("insert", 1, 3), ("delete", 0, 3)],
        )
        assert ops == [("insert", 1, 3)]
        assert cancelled == 1

    def test_net_ops_keep_first_touch_order(self, triangle):
        ops, cancelled = coalesce_updates(
            triangle,
            [("delete", 0, 1), ("insert", 4, 5), ("delete", 1, 2)],
        )
        assert ops == [("delete", 0, 1), ("insert", 4, 5), ("delete", 1, 2)]
        assert cancelled == 0

    def test_validates_whole_sequence_upfront(self, triangle):
        with pytest.raises(EdgeExistsError):
            coalesce_updates(triangle, [("insert", 0, 1)])
        with pytest.raises(EdgeNotFoundError):
            coalesce_updates(triangle, [("delete", 0, 9)])
        with pytest.raises(SelfLoopError):
            coalesce_updates(triangle, [("insert", 4, 4)])
        with pytest.raises(ParameterError):
            coalesce_updates(triangle, [("upsert", 0, 3)])

    def test_simulated_presence_allows_reuse(self, triangle):
        # insert then delete then insert again of the same absent edge
        # is valid as a sequence and nets to one insert.
        ops, cancelled = coalesce_updates(
            triangle,
            [("insert", 0, 3), ("delete", 0, 3), ("insert", 0, 3)],
        )
        assert ops == [("insert", 0, 3)]
        assert cancelled == 1

    def test_apply_batch_invalid_is_all_or_nothing(self, mode):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        before_bytes = _index_bytes(maintainer.index)
        before_versions = maintainer.index.versions()
        with pytest.raises(EdgeExistsError):
            # the first op is valid; the second is not — nothing applies
            maintainer.apply_batch([("insert", 0, 3), ("insert", 0, 1)])
        assert not maintainer.graph.has_edge(0, 3)
        assert not maintainer.graph.has_vertex(3)
        assert _index_bytes(maintainer.index) == before_bytes
        assert maintainer.index.versions() == before_versions
        assert maintainer.stats.batches == 0

    def test_bad_engine_or_workers_rejected_before_mutation(self, triangle):
        maintainer = KPIndexMaintainer(triangle, strict=True)
        with pytest.raises(ParameterError):
            maintainer.apply_batch([("insert", 0, 3)], engine="nope")
        with pytest.raises(ParameterError):
            maintainer.apply_batch([("insert", 0, 3)], workers=0)
        assert not triangle.has_edge(0, 3)


class TestBatchReport:
    def test_empty_batch_is_a_noop(self, triangle):
        maintainer = KPIndexMaintainer(triangle, strict=True)
        report = maintainer.apply_batch([])
        assert report.applied == 0
        assert report.arrays_repeeled == 0
        assert maintainer.stats.batches == 1

    def test_report_counts_move(self, mode):
        g = erdos_renyi_gnm(14, 36, seed=17)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        ops = _random_stream(17, 14, 16, g)
        report = maintainer.apply_batch(ops)
        assert report.applied == len(ops) - 2 * report.cancelled_pairs
        assert report.applied > 1  # multi-edge batch takes the batch path
        assert report.arrays_repeeled >= 0
        assert (
            maintainer.stats.batch_cancelled_pairs == report.cancelled_pairs
        )
        assert maintainer.index.semantically_equal(
            KPIndex.build(maintainer.graph)
        )
